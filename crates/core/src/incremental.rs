//! Incremental update (§6 "Incremental Update").
//!
//! "When a day of new transactions (events) are added to the event
//! database, we could create a new sequence group and precompute the
//! corresponding inverted indices for that day … it is necessary to devise
//! methods to incrementally update the precomputed inverted indices."
//!
//! Two pieces implement that:
//!
//! * [`extend_index`] — appends new sequences to an existing inverted
//!   index without rescanning the old ones (sids must continue the old
//!   range, which holds when a batch of events forms new clusters — e.g.
//!   a new day under day-level clustering).
//! * [`extend_groups`] — extends a [`SequenceGroups`] with the sequences
//!   formed by rows appended after `from_row`, verifying the new events do
//!   **not** touch existing clusters (if they do, the caller must rebuild —
//!   the paper's "may also invalidate the cached sequence groups … of the
//!   same week" caveat).

use std::collections::BTreeMap;

use solap_eventdb::{
    build_sequence_groups, Error, EventDb, LevelValue, Result, RowId, SeqQuerySpec, Sequence,
    SequenceGroups,
};
use solap_index::InvertedIndex;
use solap_pattern::{MatchPred, Matcher, PatternTemplate};

/// Appends sequences to an inverted index in place-by-copy: the returned
/// index contains the old lists plus entries for `new_sequences`. New sids
/// must be strictly greater than every sid already indexed (checked).
pub fn extend_index(
    db: &EventDb,
    base: &InvertedIndex,
    new_sequences: &[Sequence],
    template: &PatternTemplate,
) -> Result<InvertedIndex> {
    debug_assert_eq!(base.sig, template.signature());
    let max_old = base
        .lists
        .values()
        .flat_map(|s| s.iter())
        .max()
        .unwrap_or(0);
    if let Some(bad) = new_sequences
        .iter()
        .find(|s| !base.lists.is_empty() && s.sid <= max_old)
    {
        return Err(Error::InvalidOperation(format!(
            "incremental extend requires fresh sids; sid {} is not greater than {}",
            bad.sid, max_old
        )));
    }
    let trivial = MatchPred::True;
    let matcher = Matcher::new(db, template, &trivial);
    let mut out = base.clone();
    for seq in new_sequences {
        matcher.for_each_unique_pattern(seq, |pattern| {
            out.add(pattern, seq.sid);
        })?;
    }
    Ok(out)
}

/// Extends `old` (built before `from_row` rows existed) with the sequences
/// formed by rows `from_row..`, returning the extended groups **and the
/// sids of the newly added sequences**. Fails with
/// [`Error::ClusterInvalidated`] if a new event lands in an existing
/// cluster — the batch then straddles old sequences and a full rebuild is
/// required (the engine's store path catches exactly that variant and
/// falls back to rebuilding on the next query).
///
/// Use the returned sid list to find the new sequences — when a batch
/// lands in a group that is not last in traversal order, *all* sids after
/// it are renumbered to keep the contiguous-per-group invariant, so
/// "sid ≥ old total" does **not** identify the new sequences.
pub fn extend_groups(
    db: &EventDb,
    spec: &SeqQuerySpec,
    old: &SequenceGroups,
    from_row: RowId,
) -> Result<(SequenceGroups, Vec<solap_eventdb::Sid>)> {
    // Cluster keys present in the old groups.
    let mut old_clusters: BTreeMap<&[LevelValue], ()> = BTreeMap::new();
    for seq in old.iter_sequences() {
        old_clusters.insert(&seq.cluster_key, ());
    }
    // Run steps 1–4 over the new rows only, by augmenting the filter with
    // an implicit row bound (we scan manually instead of re-filtering).
    let mut new_cluster_rows: BTreeMap<Vec<LevelValue>, Vec<RowId>> = BTreeMap::new();
    for row in from_row..db.len() as RowId {
        if !spec.filter.eval(db, row)? {
            continue;
        }
        let mut key = Vec::with_capacity(spec.cluster_by.len());
        for al in &spec.cluster_by {
            key.push(db.value_at_level(row, al.attr, al.level)?);
        }
        if old_clusters.contains_key(key.as_slice()) {
            return Err(Error::ClusterInvalidated {
                cluster: format!("{key:?}"),
            });
        }
        new_cluster_rows.entry(key).or_default().push(row);
    }
    let sort_keys: Vec<(u32, bool)> = spec
        .sequence_by
        .iter()
        .map(|k| (k.attr, k.ascending))
        .collect();
    let mut next_sid = old.total_sequences as u32;
    // Group new sequences and merge into a copy of the old structure.
    let mut result = old.clone();
    let mut appended: BTreeMap<Vec<LevelValue>, Vec<Sequence>> = BTreeMap::new();
    for (ckey, mut rows) in new_cluster_rows {
        if !sort_keys.is_empty() {
            rows.sort_unstable_by(|&a, &b| db.cmp_rows(a, b, &sort_keys));
        }
        let first = rows[0];
        let mut gkey = Vec::with_capacity(spec.group_by.len());
        for al in &spec.group_by {
            gkey.push(db.value_at_level(first, al.attr, al.level)?);
        }
        appended.entry(gkey).or_default().push(Sequence {
            sid: 0, // assigned below in deterministic order
            cluster_key: ckey,
            rows,
        });
    }
    // Tag new sequences with provisional sids past the old range so they
    // can be recognised after the lookup rebuild renumbers everything.
    let first_provisional = next_sid;
    for (gkey, mut seqs) in appended {
        for s in &mut seqs {
            s.sid = next_sid;
            next_sid += 1;
        }
        match result.groups.iter_mut().find(|g| g.key == gkey) {
            Some(g) => g.sequences.extend(seqs),
            None => result.groups.push(solap_eventdb::SequenceGroup {
                key: gkey,
                sequences: seqs,
            }),
        }
    }
    let provisional_new: Vec<solap_eventdb::Sid> = (first_provisional..next_sid).collect();
    // Rebuild the sid lookup; this may renumber, so translate the
    // provisional new sids to their final values by position.
    let (rebuilt, mapping) = rebuild_lookup(result);
    let new_sids: Vec<solap_eventdb::Sid> = provisional_new
        .iter()
        .map(|p| mapping.get(p).copied().unwrap_or(*p))
        .collect();
    Ok((rebuilt, new_sids))
}

/// Recomputes the sid lookup of a hand-assembled [`SequenceGroups`]. The
/// engine's lookup assumes contiguous per-group sid ranges, which no longer
/// holds after appends — so this reassembles the groups into a fresh,
/// contiguous numbering **only when needed**, returning the structure (with
/// `sequence(sid)` valid for all sids) plus the old-sid → new-sid mapping
/// of any renumbering performed (empty when numbering was already
/// contiguous).
fn rebuild_lookup(
    mut groups: SequenceGroups,
) -> (
    SequenceGroups,
    BTreeMap<solap_eventdb::Sid, solap_eventdb::Sid>,
) {
    // Check contiguity; if violated, renumber deterministically.
    let mut expected = 0u32;
    let mut contiguous = true;
    for g in &groups.groups {
        for s in &g.sequences {
            if s.sid != expected {
                contiguous = false;
            }
            expected += 1;
        }
    }
    let mut mapping = BTreeMap::new();
    if !contiguous {
        let mut sid = 0u32;
        for g in &mut groups.groups {
            for s in &mut g.sequences {
                if s.sid != sid {
                    mapping.insert(s.sid, sid);
                }
                s.sid = sid;
                sid += 1;
            }
        }
    }
    // Reassemble through the canonical path to refresh offsets.
    let global_dims = groups.global_dims.clone();
    let gs = std::mem::take(&mut groups.groups);
    let mut offsets = Vec::with_capacity(gs.len());
    let mut total = 0u32;
    for g in &gs {
        offsets.push(total);
        total += g.sequences.len() as u32;
    }
    (
        SequenceGroups::from_parts(global_dims, gs, total as usize, offsets),
        mapping,
    )
}

/// Verifies an incremental extension against a from-scratch rebuild —
/// exposed so integration tests and the harness can assert equivalence.
pub fn rebuild_reference(db: &EventDb, spec: &SeqQuerySpec) -> Result<SequenceGroups> {
    build_sequence_groups(db, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{AttrLevel, ColumnType, EventDbBuilder, Pred, SortKey, Value};
    use solap_index::{build_index, SetBackend};
    use solap_pattern::PatternKind;

    fn db_with_days(days: &[&[(&str, i64)]]) -> EventDb {
        // (item, day) pairs; cluster by day.
        let mut db = EventDbBuilder::new()
            .dimension("day", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("item", ColumnType::Str)
            .build()
            .unwrap();
        for day in days {
            for (i, (item, d)) in day.iter().enumerate() {
                db.push_row(&[Value::Int(*d), Value::Int(i as i64), Value::from(*item)])
                    .unwrap();
            }
        }
        db
    }

    fn spec() -> SeqQuerySpec {
        SeqQuerySpec {
            filter: Pred::True,
            cluster_by: vec![AttrLevel::new(0, 0)],
            sequence_by: vec![SortKey {
                attr: 1,
                ascending: true,
            }],
            group_by: vec![],
        }
    }

    fn template() -> PatternTemplate {
        PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 2, 0), ("Y", 2, 0)],
        )
        .unwrap()
    }

    #[test]
    fn extend_groups_matches_rebuild() {
        let day1: &[(&str, i64)] = &[("a", 1), ("b", 1), ("c", 1)];
        let mut db = db_with_days(&[day1]);
        let old = build_sequence_groups(&db, &spec()).unwrap();
        let from_row = db.len() as u32;
        for (i, item) in ["b", "c", "a"].iter().enumerate() {
            db.push_row(&[Value::Int(2), Value::Int(i as i64), Value::from(*item)])
                .unwrap();
        }
        let (extended, new_sids) = extend_groups(&db, &spec(), &old, from_row).unwrap();
        assert_eq!(new_sids.len(), 1);
        let rebuilt = rebuild_reference(&db, &spec()).unwrap();
        assert_eq!(extended.total_sequences, rebuilt.total_sequences);
        // Same sequences per cluster key (sid numbering may differ).
        let flat = |g: &SequenceGroups| -> Vec<(Vec<u64>, Vec<u32>)> {
            let mut v: Vec<_> = g
                .iter_sequences()
                .map(|s| (s.cluster_key.clone(), s.rows.clone()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(flat(&extended), flat(&rebuilt));
        // sid lookup works for every sid.
        for s in extended.iter_sequences() {
            assert_eq!(extended.sequence(s.sid).unwrap().rows, s.rows);
        }
    }

    #[test]
    fn extend_groups_rejects_straddling_batches() {
        let day1: &[(&str, i64)] = &[("a", 1), ("b", 1)];
        let mut db = db_with_days(&[day1]);
        let old = build_sequence_groups(&db, &spec()).unwrap();
        let from_row = db.len() as u32;
        // New event lands in day 1's existing cluster.
        db.push_row(&[Value::Int(1), Value::Int(9), Value::from("c")])
            .unwrap();
        let err = extend_groups(&db, &spec(), &old, from_row).unwrap_err();
        let Error::ClusterInvalidated { cluster } = err else {
            panic!("expected ClusterInvalidated, got {err:?}");
        };
        assert!(cluster.contains('1'), "cluster key rendered: {cluster}");
    }

    #[test]
    fn extend_index_matches_full_rebuild() {
        let day1: &[(&str, i64)] = &[("a", 1), ("b", 1), ("a", 1)];
        let mut db = db_with_days(&[day1]);
        let old_groups = build_sequence_groups(&db, &spec()).unwrap();
        let t = template();
        let (old_index, _) =
            build_index(&db, old_groups.iter_sequences(), &t, SetBackend::List).unwrap();
        let from_row = db.len() as u32;
        for (i, item) in ["b", "a"].iter().enumerate() {
            db.push_row(&[Value::Int(2), Value::Int(i as i64), Value::from(*item)])
                .unwrap();
        }
        let (extended_groups, new_sids) =
            extend_groups(&db, &spec(), &old_groups, from_row).unwrap();
        let new_seqs: Vec<Sequence> = new_sids
            .iter()
            .map(|&sid| extended_groups.sequence(sid).unwrap().clone())
            .collect();
        assert_eq!(new_seqs.len(), 1);
        let extended = extend_index(&db, &old_index, &new_seqs, &t).unwrap();
        let (rebuilt, _) =
            build_index(&db, extended_groups.iter_sequences(), &t, SetBackend::List).unwrap();
        assert_eq!(extended.list_count(), rebuilt.list_count());
        for (k, v) in &rebuilt.lists {
            assert_eq!(extended.lists[k].to_vec(), v.to_vec(), "pattern {k:?}");
        }
    }

    #[test]
    fn new_sids_are_correct_even_when_renumbering() {
        // Group by day parity so the new batch lands in a group that is
        // NOT last in traversal order, forcing a renumber.
        let mut db = EventDbBuilder::new()
            .dimension("day", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("item", ColumnType::Str)
            .build()
            .unwrap();
        for day in 0..3i64 {
            for pos in 0..2i64 {
                db.push_row(&[Value::Int(day), Value::Int(pos), Value::from("x")])
                    .unwrap();
            }
        }
        db.attach_int_level(0, "parity", |d| format!("p{}", d % 2))
            .unwrap();
        let spec = SeqQuerySpec {
            filter: Pred::True,
            cluster_by: vec![AttrLevel::new(0, 0)],
            sequence_by: vec![SortKey {
                attr: 1,
                ascending: true,
            }],
            group_by: vec![AttrLevel::new(0, 1)],
        };
        let old = build_sequence_groups(&db, &spec).unwrap();
        assert_eq!(old.groups.len(), 2);
        let from_row = db.len() as u32;
        db.add_int_mapping(0, 4, "p0").unwrap();
        for pos in 0..2i64 {
            db.push_row(&[Value::Int(4), Value::Int(pos), Value::from("y")])
                .unwrap();
        }
        let (ext, new_sids) = extend_groups(&db, &spec, &old, from_row).unwrap();
        assert_eq!(new_sids.len(), 1);
        // The reported new sequence really is the `y` one.
        let s = ext.sequence(new_sids[0]).unwrap();
        assert_eq!(db.value(s.rows[0], 2), Value::from("y"));
        // And the whole structure matches a rebuild.
        let rebuilt = rebuild_reference(&db, &spec).unwrap();
        let flat = |g: &SequenceGroups| -> Vec<(Vec<u64>, Vec<u32>)> {
            let mut v: Vec<_> = g
                .iter_sequences()
                .map(|s| (s.cluster_key.clone(), s.rows.clone()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(flat(&ext), flat(&rebuilt));
        for s in ext.iter_sequences() {
            assert_eq!(
                ext.sequence(s.sid).unwrap().rows,
                s.rows,
                "lookup consistent"
            );
        }
    }

    #[test]
    fn extend_index_rejects_stale_sids() {
        let day1: &[(&str, i64)] = &[("a", 1), ("b", 1)];
        let db = db_with_days(&[day1]);
        let groups = build_sequence_groups(&db, &spec()).unwrap();
        let t = template();
        let (index, _) = build_index(&db, groups.iter_sequences(), &t, SetBackend::List).unwrap();
        let stale = groups.iter_sequences().next().unwrap().clone();
        assert!(extend_index(&db, &index, &[stale], &t).is_err());
    }
}
