//! Iceberg S-cuboids (§6 "Performance"): drop low-support cells.
//!
//! "Many S-cuboid cells are often sparsely distributed within the S-cuboid
//! space … introducing an iceberg condition (i.e., a minimum support
//! threshold) to filter out cells with low-support count would increase
//! both S-OLAP performance and usability as well as reduce space."
//!
//! The threshold applies to COUNT cuboids; other aggregates pass through
//! unchanged (their supports are not counts).

use crate::cuboid::SCuboid;

/// Applies the iceberg condition in place: cells with `COUNT < min_support`
/// are removed. Returns the number of cells dropped.
pub fn apply_min_support(cuboid: &mut SCuboid, min_support: u64) -> usize {
    let before = cuboid.cells.len();
    cuboid.cells.retain(|_, v| match v.as_count() {
        Some(c) => c >= min_support,
        None => true,
    });
    before - cuboid.cells.len()
}

/// Suggests a minimum support that keeps roughly the top `fraction` of the
/// cuboid's probability mass (a pragmatic answer to the paper's "how to
/// determine the minimum support threshold is … always an interesting but
/// difficult question"): the largest threshold `t` such that cells with
/// count ≥ `t` still cover at least `fraction` of the total count.
pub fn suggest_min_support(cuboid: &SCuboid, fraction: f64) -> u64 {
    let mut counts: Vec<u64> = cuboid.cells.values().filter_map(|v| v.as_count()).collect();
    if counts.is_empty() {
        return 0;
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = counts.iter().sum();
    let target = (total as f64 * fraction.clamp(0.0, 1.0)).ceil() as u64;
    let mut acc = 0u64;
    let mut threshold = 0u64;
    for &c in &counts {
        acc += c;
        threshold = c;
        if acc >= target {
            break;
        }
    }
    threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuboid::CellKey;
    use solap_pattern::{AggFunc, AggValue};

    fn cuboid(counts: &[u64]) -> SCuboid {
        let mut c = SCuboid::new(vec![], vec![], AggFunc::Count);
        for (i, &n) in counts.iter().enumerate() {
            c.cells.insert(
                CellKey {
                    global: vec![],
                    pattern: vec![i as u64],
                },
                AggValue::Count(n),
            );
        }
        c
    }

    #[test]
    fn filters_below_threshold() {
        let mut c = cuboid(&[1, 5, 10, 2]);
        let dropped = apply_min_support(&mut c, 5);
        assert_eq!(dropped, 2);
        assert_eq!(c.len(), 2);
        assert!(c.get(&[], &[2]).is_some());
        assert!(c.get(&[], &[0]).is_none());
    }

    #[test]
    fn non_count_values_survive() {
        let mut c = cuboid(&[]);
        c.cells.insert(
            CellKey {
                global: vec![],
                pattern: vec![0],
            },
            AggValue::Float(0.5),
        );
        assert_eq!(apply_min_support(&mut c, 100), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn suggestion_covers_mass() {
        let c = cuboid(&[100, 50, 10, 5, 1]);
        // Top 100+50 = 150 of 166 ≈ 90%; suggesting 0.9 keeps threshold 50.
        assert_eq!(suggest_min_support(&c, 0.9), 50);
        assert_eq!(suggest_min_support(&c, 1.0), 1);
        assert_eq!(suggest_min_support(&cuboid(&[]), 0.5), 0);
    }
}
