//! The S-OLAP operations (§3.3).
//!
//! Six pattern operations — APPEND, PREPEND, DE-TAIL, DE-HEAD,
//! PATTERN-ROLL-UP and PATTERN-DRILL-DOWN — modify the grouping pattern
//! and/or the abstraction levels of its dimensions, transforming one
//! S-cuboid specification into another; the classical operations (roll-up,
//! drill-down, slice, dice) manipulate the global dimensions. Each operation
//! is a pure function `spec → spec`; execution (and the inverted-index fast
//! paths) happens in [`crate::engine::Engine`].

use solap_eventdb::{AttrId, Error, EventDb, LevelValue, Result};
use solap_pattern::PatternDim;

use crate::spec::SCuboidSpec;

/// An S-OLAP navigation operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// APPEND: add a pattern symbol at the end of the template. Reusing an
    /// existing symbol name repeats that dimension (as in Q2's third `X`);
    /// a new name introduces a new pattern dimension.
    Append {
        /// Symbol name (existing to repeat a dimension, fresh to add one).
        symbol: String,
        /// Attribute bound when the symbol is new.
        attr: AttrId,
        /// Abstraction level bound when the symbol is new.
        level: usize,
    },
    /// PREPEND: add a pattern symbol at the front of the template.
    Prepend {
        /// Symbol name.
        symbol: String,
        /// Attribute bound when the symbol is new.
        attr: AttrId,
        /// Abstraction level bound when the symbol is new.
        level: usize,
    },
    /// DE-TAIL: remove the last symbol.
    DeTail,
    /// DE-HEAD: remove the first symbol.
    DeHead,
    /// P-ROLL-UP: move a pattern dimension one level up its hierarchy.
    PRollUp {
        /// The pattern dimension's symbol name.
        dim: String,
    },
    /// P-DRILL-DOWN: move a pattern dimension one level down.
    PDrillDown {
        /// The pattern dimension's symbol name.
        dim: String,
    },
    /// Classical roll-up on a global dimension.
    RollUp {
        /// The global dimension's attribute.
        attr: AttrId,
    },
    /// Classical drill-down on a global dimension.
    DrillDown {
        /// The global dimension's attribute.
        attr: AttrId,
    },
    /// Slice: fix a global dimension to one value.
    SliceGlobal {
        /// Index into `SEQUENCE GROUP BY`.
        dim: usize,
        /// The fixed value (at the dimension's current level).
        value: LevelValue,
    },
    /// Slice: fix a pattern dimension to one value.
    SlicePattern {
        /// The pattern dimension's symbol name.
        dim: String,
        /// The fixed value (at the dimension's current level).
        value: LevelValue,
    },
    /// Dice: several simultaneous slices.
    Dice {
        /// Global slices as `(group-by index, value)`.
        global: Vec<(usize, LevelValue)>,
        /// Pattern slices as `(symbol name, value)`.
        pattern: Vec<(String, LevelValue)>,
    },
    /// Sets (or clears) the iceberg minimum support (§6 extension).
    SetMinSupport(Option<u64>),
}

impl Op {
    /// A short display name for histories and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Append { .. } => "APPEND",
            Op::Prepend { .. } => "PREPEND",
            Op::DeTail => "DE-TAIL",
            Op::DeHead => "DE-HEAD",
            Op::PRollUp { .. } => "P-ROLL-UP",
            Op::PDrillDown { .. } => "P-DRILL-DOWN",
            Op::RollUp { .. } => "ROLL-UP",
            Op::DrillDown { .. } => "DRILL-DOWN",
            Op::SliceGlobal { .. } => "SLICE",
            Op::SlicePattern { .. } => "SLICE-PATTERN",
            Op::Dice { .. } => "DICE",
            Op::SetMinSupport(_) => "MIN-SUPPORT",
        }
    }

    /// Whether the operation moves *up* the lattice (toward coarser
    /// cuboids). The planner prioritizes the pre-operation spec as a
    /// reuse candidate for such ops: its materialized cuboid is one step
    /// finer than the target, the ideal roll-up source.
    pub fn coarsens(&self) -> bool {
        matches!(
            self,
            Op::DeTail | Op::DeHead | Op::PRollUp { .. } | Op::RollUp { .. }
        )
    }
}

fn dim_index(spec: &SCuboidSpec, name: &str) -> Result<usize> {
    spec.template
        .dims
        .iter()
        .position(|d| d.name == name)
        .ok_or_else(|| Error::InvalidOperation(format!("no pattern dimension named `{name}`")))
}

fn push_symbol(
    spec: &mut SCuboidSpec,
    symbol: &str,
    attr: AttrId,
    level: usize,
    front: bool,
) -> Result<()> {
    let dim_idx = match spec.template.dims.iter().position(|d| d.name == symbol) {
        Some(i) => {
            let d = &spec.template.dims[i];
            if d.attr != attr || d.level != level {
                return Err(Error::InvalidOperation(format!(
                    "symbol `{symbol}` is already bound to a different attribute or level"
                )));
            }
            i
        }
        None => {
            spec.template.dims.push(PatternDim {
                name: symbol.to_owned(),
                attr,
                level,
            });
            spec.template.dims.len() - 1
        }
    };
    if front {
        spec.template.symbols.insert(0, dim_idx);
        // Placeholder positions all shift up by one.
        spec.mpred = spec.mpred.remap_positions(&|pos| Some(pos + 1));
    } else {
        spec.template.symbols.push(dim_idx);
    }
    Ok(())
}

/// Removes a symbol occurrence; drops its dimension if now unreferenced,
/// compacting dimension indices and the pattern slice.
fn drop_symbol(spec: &mut SCuboidSpec, front: bool) -> Result<()> {
    if spec.template.m() <= 1 {
        return Err(Error::InvalidOperation(
            "cannot remove the last remaining pattern symbol".into(),
        ));
    }
    let removed_dim = if front {
        let d = spec.template.symbols.remove(0);
        spec.mpred = spec.mpred.remap_positions(&|pos| pos.checked_sub(1));
        d
    } else {
        let d = spec.template.symbols.pop().expect("non-empty");
        let m = spec.template.m();
        spec.mpred = spec.mpred.remap_positions(&|pos| (pos < m).then_some(pos));
        d
    };
    if !spec.template.symbols.contains(&removed_dim) {
        spec.template.dims.remove(removed_dim);
        for s in &mut spec.template.symbols {
            if *s > removed_dim {
                *s -= 1;
            }
        }
        let old_slice = std::mem::take(&mut spec.pattern_slice);
        for (d, v) in old_slice {
            match d.cmp(&removed_dim) {
                std::cmp::Ordering::Less => {
                    spec.pattern_slice.insert(d, v);
                }
                std::cmp::Ordering::Equal => {}
                std::cmp::Ordering::Greater => {
                    spec.pattern_slice.insert(d - 1, v);
                }
            }
        }
    }
    Ok(())
}

/// Applies an operation to a specification, producing the transformed
/// specification. Pure — no query is executed.
pub fn apply(db: &EventDb, spec: &SCuboidSpec, op: &Op) -> Result<SCuboidSpec> {
    let mut out = spec.clone();
    match op {
        Op::Append {
            symbol,
            attr,
            level,
        } => push_symbol(&mut out, symbol, *attr, *level, false)?,
        Op::Prepend {
            symbol,
            attr,
            level,
        } => push_symbol(&mut out, symbol, *attr, *level, true)?,
        Op::DeTail => drop_symbol(&mut out, false)?,
        Op::DeHead => drop_symbol(&mut out, true)?,
        Op::PRollUp { dim } => {
            let i = dim_index(&out, dim)?;
            let d = &mut out.template.dims[i];
            if d.level + 1 >= db.level_count(d.attr) {
                return Err(Error::InvalidOperation(format!(
                    "`{dim}` is already at the top abstraction level"
                )));
            }
            d.level += 1;
            let new_level = d.level;
            let attr = d.attr;
            // A slice finer than the new level survives by mapping its
            // value up to the new level; coarser slices are untouched.
            if let Some((slice_level, v)) = out.pattern_slice.remove(&i) {
                if slice_level >= new_level {
                    out.pattern_slice.insert(i, (slice_level, v));
                } else {
                    let coarse = db.map_up(attr, slice_level, v, new_level)?;
                    out.pattern_slice.insert(i, (new_level, coarse));
                }
            }
        }
        Op::PDrillDown { dim } => {
            let i = dim_index(&out, dim)?;
            let d = &mut out.template.dims[i];
            if d.level == 0 {
                return Err(Error::InvalidOperation(format!(
                    "`{dim}` is already at the base abstraction level"
                )));
            }
            d.level -= 1;
            // A slice set at the coarser level survives as-is: §5.1's Qb
            // slices (Assortment, Legwear) at the category level, drills Y
            // down to raw pages, and reports only Legwear's children.
        }
        Op::RollUp { attr } => {
            let i = out
                .seq
                .group_by
                .iter()
                .position(|al| al.attr == *attr)
                .ok_or_else(|| {
                    Error::InvalidOperation("attribute is not a global dimension".into())
                })?;
            let al = &mut out.seq.group_by[i];
            if al.level + 1 >= db.level_count(al.attr) {
                return Err(Error::InvalidOperation(
                    "global dimension is already at the top abstraction level".into(),
                ));
            }
            let old_level = al.level;
            al.level += 1;
            let (attr, new_level) = (al.attr, al.level);
            if let Some(v) = out.global_slice.remove(&i) {
                let coarse = db.map_up(attr, old_level, v, new_level)?;
                out.global_slice.insert(i, coarse);
            }
        }
        Op::DrillDown { attr } => {
            let i = out
                .seq
                .group_by
                .iter()
                .position(|al| al.attr == *attr)
                .ok_or_else(|| {
                    Error::InvalidOperation("attribute is not a global dimension".into())
                })?;
            let al = &mut out.seq.group_by[i];
            if al.level == 0 {
                return Err(Error::InvalidOperation(
                    "global dimension is already at the base abstraction level".into(),
                ));
            }
            al.level -= 1;
            out.global_slice.remove(&i);
        }
        Op::SliceGlobal { dim, value } => {
            if *dim >= out.seq.group_by.len() {
                return Err(Error::InvalidOperation(format!(
                    "no global dimension #{dim}"
                )));
            }
            out.global_slice.insert(*dim, *value);
        }
        Op::SlicePattern { dim, value } => {
            let i = dim_index(&out, dim)?;
            let level = out.template.dims[i].level;
            out.pattern_slice.insert(i, (level, *value));
        }
        Op::Dice { global, pattern } => {
            for &(g, v) in global {
                if g >= out.seq.group_by.len() {
                    return Err(Error::InvalidOperation(format!("no global dimension #{g}")));
                }
                out.global_slice.insert(g, v);
            }
            for (name, v) in pattern {
                let i = dim_index(&out, name)?;
                let level = out.template.dims[i].level;
                out.pattern_slice.insert(i, (level, *v));
            }
        }
        Op::SetMinSupport(ms) => out.min_support = *ms,
    }
    out.validate(db)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{AttrLevel, CmpOp, ColumnType, EventDbBuilder, SortKey, Value};
    use solap_pattern::{MatchPred, PatternKind, PatternTemplate};

    fn db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .build()
            .unwrap();
        db.push_row(&[Value::Int(0), Value::from("Pentagon"), Value::from("in")])
            .unwrap();
        db.push_row(&[Value::Int(0), Value::from("Wheaton"), Value::from("out")])
            .unwrap();
        db.set_base_level_name(1, "station");
        db.attach_str_level(1, "district", |_| "D10".into())
            .unwrap();
        db
    }

    fn base_spec(db: &EventDb) -> SCuboidSpec {
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 1, 0), ("Y", 1, 0)],
        )
        .unwrap();
        let action = db.attr("action").unwrap();
        SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 0,
                ascending: true,
            }],
        )
        .with_group_by(vec![AttrLevel::new(1, 0)])
        .with_mpred(
            MatchPred::cmp(0, action, CmpOp::Eq, "in").and(MatchPred::cmp(
                1,
                action,
                CmpOp::Eq,
                "out",
            )),
        )
    }

    #[test]
    fn append_existing_and_new_symbols() {
        let db = db();
        let s = base_spec(&db);
        // Q1 → Q2 shape: append Y, X, then a new Z.
        let s = apply(
            &db,
            &s,
            &Op::Append {
                symbol: "Y".into(),
                attr: 1,
                level: 0,
            },
        )
        .unwrap();
        let s = apply(
            &db,
            &s,
            &Op::Append {
                symbol: "X".into(),
                attr: 1,
                level: 0,
            },
        )
        .unwrap();
        let s = apply(
            &db,
            &s,
            &Op::Append {
                symbol: "Z".into(),
                attr: 1,
                level: 0,
            },
        )
        .unwrap();
        assert_eq!(s.template.render_head(), "SUBSTRING (X, Y, Y, X, Z)");
        assert_eq!(s.template.n(), 3);
        // Conflicting rebind is rejected.
        let err = apply(
            &db,
            &s,
            &Op::Append {
                symbol: "X".into(),
                attr: 1,
                level: 1,
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn de_tail_then_de_head_restores_structure() {
        let db = db();
        let s0 = base_spec(&db);
        let s1 = apply(
            &db,
            &s0,
            &Op::Append {
                symbol: "Z".into(),
                attr: 1,
                level: 0,
            },
        )
        .unwrap();
        let s2 = apply(&db, &s1, &Op::DeTail).unwrap();
        assert_eq!(s2.template.signature(), s0.template.signature());
        assert_eq!(
            s2.fingerprint(),
            s0.fingerprint(),
            "APPEND∘DE-TAIL = identity"
        );
        // DE-HEAD drops X and shifts the predicate.
        let s3 = apply(&db, &s0, &Op::DeHead).unwrap();
        assert_eq!(s3.template.render_head(), "SUBSTRING (Y)");
        assert_eq!(s3.mpred.max_pos(), Some(0));
        // Removing the final symbol fails.
        assert!(apply(&db, &s3, &Op::DeHead).is_err());
        assert!(apply(&db, &s3, &Op::DeTail).is_err());
    }

    #[test]
    fn de_tail_drops_predicate_on_removed_position() {
        let db = db();
        let s = base_spec(&db);
        let s = apply(&db, &s, &Op::DeTail).unwrap();
        // The y1 conjunct referenced position 1, which no longer exists.
        assert_eq!(s.mpred.max_pos(), Some(0));
        assert_eq!(s.template.m(), 1);
        assert_eq!(s.template.n(), 1);
    }

    #[test]
    fn prepend_shifts_predicate_positions() {
        let db = db();
        let s = base_spec(&db);
        let s = apply(
            &db,
            &s,
            &Op::Prepend {
                symbol: "Z".into(),
                attr: 1,
                level: 0,
            },
        )
        .unwrap();
        assert_eq!(s.template.render_head(), "SUBSTRING (Z, X, Y)");
        assert_eq!(s.mpred.max_pos(), Some(2));
        // Prepending an existing symbol keeps n constant.
        let s2 = apply(
            &db,
            &s,
            &Op::Prepend {
                symbol: "Y".into(),
                attr: 1,
                level: 0,
            },
        )
        .unwrap();
        assert_eq!(s2.template.render_head(), "SUBSTRING (Y, Z, X, Y)");
        assert_eq!(s2.template.n(), 3);
    }

    #[test]
    fn p_roll_up_and_drill_down() {
        let db = db();
        let s = base_spec(&db);
        let s = apply(&db, &s, &Op::PRollUp { dim: "Y".into() }).unwrap();
        assert_eq!(s.template.dims[1].level, 1);
        // Rolling past the top fails.
        assert!(apply(&db, &s, &Op::PRollUp { dim: "Y".into() }).is_err());
        let s = apply(&db, &s, &Op::PDrillDown { dim: "Y".into() }).unwrap();
        assert_eq!(s.template.dims[1].level, 0);
        assert!(apply(&db, &s, &Op::PDrillDown { dim: "Y".into() }).is_err());
        assert!(apply(&db, &s, &Op::PRollUp { dim: "Q".into() }).is_err());
    }

    #[test]
    fn p_roll_up_maps_slice_value_up() {
        let db = db();
        let pentagon = db.parse_level_value(1, 0, "Pentagon").unwrap();
        let s = base_spec(&db);
        let s = apply(
            &db,
            &s,
            &Op::SlicePattern {
                dim: "X".into(),
                value: pentagon,
            },
        )
        .unwrap();
        let s = apply(&db, &s, &Op::PRollUp { dim: "X".into() }).unwrap();
        let d10 = db.parse_level_value(1, 1, "D10").unwrap();
        assert_eq!(s.pattern_slice.get(&0), Some(&(1, d10)));
        // Drill-down keeps the (now coarse) slice: the Qb-of-§5.1 pattern.
        let s = apply(&db, &s, &Op::PDrillDown { dim: "X".into() }).unwrap();
        assert_eq!(s.pattern_slice.get(&0), Some(&(1, d10)));
        assert_eq!(s.template.dims[0].level, 0);
    }

    #[test]
    fn global_roll_up_drill_down_and_slice() {
        let db = db();
        let s = base_spec(&db);
        let s = apply(&db, &s, &Op::RollUp { attr: 1 }).unwrap();
        assert_eq!(s.seq.group_by[0].level, 1);
        assert!(apply(&db, &s, &Op::RollUp { attr: 1 }).is_err());
        let s = apply(&db, &s, &Op::DrillDown { attr: 1 }).unwrap();
        assert_eq!(s.seq.group_by[0].level, 0);
        assert!(apply(&db, &s, &Op::DrillDown { attr: 1 }).is_err());
        assert!(apply(&db, &s, &Op::RollUp { attr: 0 }).is_err());
        let s = apply(&db, &s, &Op::SliceGlobal { dim: 0, value: 7 }).unwrap();
        assert_eq!(s.global_slice.get(&0), Some(&7));
        assert!(apply(&db, &s, &Op::SliceGlobal { dim: 3, value: 7 }).is_err());
    }

    #[test]
    fn dice_and_min_support() {
        let db = db();
        let s = base_spec(&db);
        let s = apply(
            &db,
            &s,
            &Op::Dice {
                global: vec![(0, 9)],
                pattern: vec![("X".into(), 0), ("Y".into(), 1)],
            },
        )
        .unwrap();
        assert_eq!(s.global_slice.len(), 1);
        assert_eq!(s.pattern_slice.len(), 2);
        let s = apply(&db, &s, &Op::SetMinSupport(Some(10))).unwrap();
        assert_eq!(s.min_support, Some(10));
        let s = apply(&db, &s, &Op::SetMinSupport(None)).unwrap();
        assert_eq!(s.min_support, None);
    }

    #[test]
    fn de_tail_compacts_pattern_slice_indices() {
        let db = db();
        let s = base_spec(&db);
        // (X, Y, Z) with slices on X and Z.
        let s = apply(
            &db,
            &s,
            &Op::Append {
                symbol: "Z".into(),
                attr: 1,
                level: 0,
            },
        )
        .unwrap();
        let s = apply(
            &db,
            &s,
            &Op::SlicePattern {
                dim: "X".into(),
                value: 3,
            },
        )
        .unwrap();
        let s = apply(
            &db,
            &s,
            &Op::SlicePattern {
                dim: "Z".into(),
                value: 5,
            },
        )
        .unwrap();
        // Dropping Z must remove its slice but keep X's.
        let s = apply(&db, &s, &Op::DeTail).unwrap();
        assert_eq!(s.pattern_slice.len(), 1);
        assert_eq!(s.pattern_slice.get(&0), Some(&(0, 3)));
        // Dropping the head X: dimension indices compact, Y's slice would
        // move from 1 → 0 (no slice on Y here, so empty).
        let s = apply(&db, &s, &Op::DeHead).unwrap();
        assert!(s.pattern_slice.is_empty());
    }

    #[test]
    fn op_names() {
        assert_eq!(Op::DeTail.name(), "DE-TAIL");
        assert_eq!(Op::PRollUp { dim: "X".into() }.name(), "P-ROLL-UP");
    }
}
