//! The sequence cuboid: the tabulated result of an S-OLAP query.

use std::collections::HashMap;

use solap_eventdb::{AttrLevel, EventDb, LevelValue};
use solap_pattern::{AggFunc, AggValue, PatternDim};

/// A cell key: global-dimension values followed by pattern-dimension values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey {
    /// Values of the global dimensions.
    pub global: Vec<LevelValue>,
    /// Values of the pattern dimensions.
    pub pattern: Vec<LevelValue>,
}

/// A computed S-cuboid: a `(q + n)`-dimensional view with `q` global
/// dimensions and `n` pattern dimensions (Figure 4's shaded result).
///
/// Cells with no assigned sequences are omitted (S-cuboid spaces are sparse
/// — §6 notes "many S-cuboid cells are often sparsely distributed").
#[derive(Debug, Clone)]
pub struct SCuboid {
    /// The global dimensions.
    pub global_dims: Vec<AttrLevel>,
    /// The pattern dimensions.
    pub pattern_dims: Vec<PatternDim>,
    /// The aggregate function computed.
    pub agg: AggFunc,
    /// The non-empty cells.
    pub cells: HashMap<CellKey, AggValue>,
}

impl SCuboid {
    /// An empty cuboid shell.
    pub fn new(global_dims: Vec<AttrLevel>, pattern_dims: Vec<PatternDim>, agg: AggFunc) -> Self {
        SCuboid {
            global_dims,
            pattern_dims,
            agg,
            cells: HashMap::new(),
        }
    }

    /// Number of non-empty cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the cuboid has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The value of a cell, if non-empty.
    pub fn get(&self, global: &[LevelValue], pattern: &[LevelValue]) -> Option<&AggValue> {
        self.cells.get(&CellKey {
            global: global.to_vec(),
            pattern: pattern.to_vec(),
        })
    }

    /// Cells in deterministic (key-sorted) order.
    pub fn iter_sorted(&self) -> Vec<(&CellKey, &AggValue)> {
        let mut v: Vec<_> = self.cells.iter().collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// The `k` largest cells by aggregate value, ties broken by key.
    pub fn top_k(&self, k: usize) -> Vec<(&CellKey, &AggValue)> {
        let mut v: Vec<_> = self.cells.iter().collect();
        v.sort_by(|a, b| {
            b.1.as_f64()
                .partial_cmp(&a.1.as_f64())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        });
        v.truncate(k);
        v
    }

    /// Sum of cell counts (only meaningful for COUNT cuboids).
    pub fn total_count(&self) -> u64 {
        self.cells.values().filter_map(AggValue::as_count).sum()
    }

    /// Renders a cell key human-readably, e.g.
    /// `[2007-12-25, regular | Pentagon, Wheaton]`.
    pub fn render_key(&self, db: &EventDb, key: &CellKey) -> String {
        let globals: Vec<String> = key
            .global
            .iter()
            .zip(&self.global_dims)
            .map(|(&v, al)| db.render_level(al.attr, al.level, v))
            .collect();
        let patterns: Vec<String> = key
            .pattern
            .iter()
            .zip(&self.pattern_dims)
            .map(|(&v, d)| db.render_level(d.attr, d.level, v))
            .collect();
        if globals.is_empty() {
            format!("({})", patterns.join(", "))
        } else {
            format!("[{} | {}]", globals.join(", "), patterns.join(", "))
        }
    }

    /// Tabulates the cuboid in the style of Figure 2, largest-first when
    /// `by_count`, else key order; at most `limit` rows.
    pub fn tabulate(&self, db: &EventDb, limit: usize, by_count: bool) -> String {
        let header: Vec<String> = self
            .global_dims
            .iter()
            .map(|al| {
                format!(
                    "{}:{}",
                    db.schema().column(al.attr).name,
                    db.level_name(al.attr, al.level)
                )
            })
            .chain(self.pattern_dims.iter().map(|d| {
                format!("{}({}:{})", d.name, db.schema().column(d.attr).name, {
                    db.level_name(d.attr, d.level)
                })
            }))
            .collect();
        let mut out = String::new();
        out.push_str(&header.join(" | "));
        out.push_str(" | value\n");
        let rows = if by_count {
            self.top_k(limit)
        } else {
            let mut v = self.iter_sorted();
            v.truncate(limit);
            v
        };
        for (key, value) in rows {
            let cols: Vec<String> = key
                .global
                .iter()
                .zip(&self.global_dims)
                .map(|(&v, al)| db.render_level(al.attr, al.level, v))
                .chain(
                    key.pattern
                        .iter()
                        .zip(&self.pattern_dims)
                        .map(|(&v, d)| db.render_level(d.attr, d.level, v)),
                )
                .collect();
            out.push_str(&cols.join(" | "));
            out.push_str(&format!(" | {value}\n"));
        }
        if self.len() > limit {
            out.push_str(&format!("… ({} more cells)\n", self.len() - limit));
        }
        out
    }

    /// Approximate heap bytes (cuboid-repository weight).
    pub fn heap_bytes(&self) -> usize {
        self.cells
            .keys()
            .map(|k| (k.global.len() + k.pattern.len()) * 8 + 64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{ColumnType, EventDbBuilder, Value};
    use solap_pattern::{PatternKind, PatternTemplate};

    fn fixture() -> (EventDb, SCuboid) {
        let mut db = EventDbBuilder::new()
            .dimension("location", ColumnType::Str)
            .build()
            .unwrap();
        for s in ["Pentagon", "Wheaton", "Glenmont"] {
            db.push_row(&[Value::from(s)]).unwrap();
        }
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 0, 0), ("Y", 0, 0)],
        )
        .unwrap();
        let mut c = SCuboid::new(vec![], t.dims.clone(), AggFunc::Count);
        let key = |p: &[u64]| CellKey {
            global: vec![],
            pattern: p.to_vec(),
        };
        c.cells.insert(key(&[0, 1]), AggValue::Count(7));
        c.cells.insert(key(&[1, 0]), AggValue::Count(3));
        c.cells.insert(key(&[2, 0]), AggValue::Count(9));
        (db, c)
    }

    #[test]
    fn get_and_len() {
        let (_, c) = fixture();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.get(&[], &[0, 1]), Some(&AggValue::Count(7)));
        assert_eq!(c.get(&[], &[0, 2]), None);
        assert_eq!(c.total_count(), 19);
    }

    #[test]
    fn top_k_orders_by_value() {
        let (_, c) = fixture();
        let top = c.top_k(2);
        assert_eq!(top[0].1.as_f64(), 9.0);
        assert_eq!(top[1].1.as_f64(), 7.0);
        assert_eq!(c.top_k(100).len(), 3);
    }

    #[test]
    fn iter_sorted_is_key_ordered() {
        let (_, c) = fixture();
        let keys: Vec<_> = c.iter_sorted().iter().map(|(k, _)| (*k).clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn render_and_tabulate() {
        let (db, c) = fixture();
        let (key, _) = c.top_k(1)[0];
        assert_eq!(c.render_key(&db, key), "(Glenmont, Pentagon)");
        let table = c.tabulate(&db, 2, true);
        assert!(table.contains("X(location:location)"), "{table}");
        assert!(table.contains("Glenmont | Pentagon | 9"), "{table}");
        assert!(table.contains("1 more cells"), "{table}");
        assert!(c.heap_bytes() > 0);
    }
}
