//! Interactive navigation sessions.
//!
//! OLAP's power is iterative exploration: a user poses a query, studies the
//! cuboid, applies an operation, and repeats. A [`Session`] holds the
//! current specification, executes operations through the engine (so every
//! fast path and cache is exploited), and keeps the history so `back()`
//! can retrace steps — the Qa → Qb → Qc explorations of §5 are sessions.

use std::sync::Arc;

use solap_eventdb::Result;

use crate::cuboid::SCuboid;
use crate::engine::{Engine, QueryOutput};
use crate::ops::Op;
use crate::spec::SCuboidSpec;
use crate::stats::ExecStats;

/// One step of a session's history.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// The operation that produced this step (`None` for the initial
    /// query).
    pub op: Option<String>,
    /// The specification at this step.
    pub spec: SCuboidSpec,
    /// The statistics of its execution.
    pub stats: ExecStats,
}

/// An interactive S-OLAP exploration session.
pub struct Session<'e> {
    engine: &'e Engine,
    current: SCuboidSpec,
    cuboid: Arc<SCuboid>,
    history: Vec<HistoryEntry>,
}

impl<'e> Session<'e> {
    /// Starts a session by executing the initial query.
    pub fn start(engine: &'e Engine, spec: SCuboidSpec) -> Result<Self> {
        let out = engine.execute(&spec)?;
        let history = vec![HistoryEntry {
            op: None,
            spec: spec.clone(),
            stats: out.stats.clone(),
        }];
        Ok(Session {
            engine,
            current: spec,
            cuboid: out.cuboid,
            history,
        })
    }

    /// The current specification.
    pub fn spec(&self) -> &SCuboidSpec {
        &self.current
    }

    /// The current cuboid.
    pub fn cuboid(&self) -> &Arc<SCuboid> {
        &self.cuboid
    }

    /// The engine backing this session.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// The history, oldest first.
    pub fn history(&self) -> &[HistoryEntry] {
        &self.history
    }

    /// Applies an operation, navigating to a new S-cuboid.
    pub fn apply(&mut self, op: Op) -> Result<QueryOutput> {
        let (spec, out) = self.engine.execute_op(&self.current, &op)?;
        self.history.push(HistoryEntry {
            op: Some(op.name().to_owned()),
            spec: spec.clone(),
            stats: out.stats.clone(),
        });
        self.current = spec;
        self.cuboid = Arc::clone(&out.cuboid);
        Ok(out)
    }

    /// Replaces the whole specification (a fresh query within the session).
    pub fn query(&mut self, spec: SCuboidSpec) -> Result<QueryOutput> {
        let out = self.engine.execute(&spec)?;
        self.history.push(HistoryEntry {
            op: Some("QUERY".to_owned()),
            spec: spec.clone(),
            stats: out.stats.clone(),
        });
        self.current = spec;
        self.cuboid = Arc::clone(&out.cuboid);
        Ok(out)
    }

    /// Steps back to the previous specification (re-executing it — usually
    /// a cuboid-repository hit). Returns `false` at the start of history.
    pub fn back(&mut self) -> Result<bool> {
        if self.history.len() < 2 {
            return Ok(false);
        }
        self.history.pop();
        let spec = self.history.last().expect("non-empty").spec.clone();
        let out = self.engine.execute(&spec)?;
        self.current = spec;
        self.cuboid = Arc::clone(&out.cuboid);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use solap_eventdb::{AttrLevel, CmpOp, ColumnType, EventDbBuilder, SortKey, Value};
    use solap_pattern::{MatchPred, PatternKind, PatternTemplate};

    fn engine() -> Engine {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .build()
            .unwrap();
        let seqs: [&[&str]; 2] = [
            &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
            &["Glenmont", "Pentagon"],
        ];
        for (sid, stations) in seqs.iter().enumerate() {
            for (i, st) in stations.iter().enumerate() {
                let action = if i % 2 == 0 { "in" } else { "out" };
                db.push_row(&[
                    Value::Int(sid as i64),
                    Value::Int(i as i64),
                    Value::from(*st),
                    Value::from(action),
                ])
                .unwrap();
            }
        }
        Engine::with_config(db, EngineConfig::default())
    }

    fn initial(db: &solap_eventdb::EventDb) -> SCuboidSpec {
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 2, 0), ("Y", 2, 0)],
        )
        .unwrap();
        let action = db.attr("action").unwrap();
        SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 1,
                ascending: true,
            }],
        )
        .with_mpred(
            MatchPred::cmp(0, action, CmpOp::Eq, "in").and(MatchPred::cmp(
                1,
                action,
                CmpOp::Eq,
                "out",
            )),
        )
    }

    #[test]
    fn navigate_append_and_back() {
        let e = engine();
        let mut s = Session::start(&e, initial(e.db())).unwrap();
        assert_eq!(s.history().len(), 1);
        let before = s.spec().fingerprint();
        s.apply(Op::Append {
            symbol: "Y".into(),
            attr: 2,
            level: 0,
        })
        .unwrap();
        assert_eq!(s.spec().template.m(), 3);
        assert_eq!(s.history().len(), 2);
        assert_eq!(s.history()[1].op.as_deref(), Some("APPEND"));
        assert!(s.back().unwrap());
        assert_eq!(s.spec().fingerprint(), before);
        assert!(!s.back().unwrap(), "cannot step before the initial query");
    }

    #[test]
    fn fresh_query_resets_spec() {
        let e = engine();
        let mut s = Session::start(&e, initial(e.db())).unwrap();
        let mut other = initial(e.db());
        other.mpred = MatchPred::True;
        let out = s.query(other.clone()).unwrap();
        assert_eq!(s.spec().fingerprint(), other.fingerprint());
        assert!(out.cuboid.len() >= s.history()[0].spec.template.n());
    }

    #[test]
    fn cuboid_follows_operations() {
        let e = engine();
        let mut s = Session::start(&e, initial(e.db())).unwrap();
        let n_before = s.cuboid().len();
        s.apply(Op::SetMinSupport(Some(1_000_000))).unwrap();
        assert_eq!(s.cuboid().len(), 0);
        s.back().unwrap();
        assert_eq!(s.cuboid().len(), n_before);
    }
}
