//! Interactive navigation sessions.
//!
//! OLAP's power is iterative exploration: a user poses a query, studies the
//! cuboid, applies an operation, and repeats. A [`Session`] holds the
//! current specification, executes operations through the engine (so every
//! fast path and cache is exploited), and keeps the history so `back()`
//! can retrace steps — the Qa → Qb → Qc explorations of §5 are sessions.
//!
//! Sessions are the unit of **concurrent serving**: they share one
//! [`Engine`] through an [`Arc`] while carrying their own
//! [`EngineConfig`] override (strategy, worker count, limits and — most
//! importantly — the [`CancelToken`](solap_eventdb::CancelToken) that lets
//! a server abort this session's in-flight query when its client
//! disconnects, without disturbing other sessions). The REPL, the `--eval`
//! script mode and every server connection each own exactly one session.

use std::sync::Arc;

use solap_eventdb::{Error, Result};

use crate::cuboid::SCuboid;
use crate::engine::{Engine, EngineConfig, QueryOutput};
use crate::ops::Op;
use crate::spec::SCuboidSpec;
use crate::stats::ExecStats;

/// One step of a session's history.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// The operation that produced this step (`None` for a fresh query).
    pub op: Option<String>,
    /// The specification at this step.
    pub spec: SCuboidSpec,
    /// The statistics of its execution.
    pub stats: ExecStats,
}

/// An interactive S-OLAP exploration session over a shared engine.
pub struct Session {
    engine: Arc<Engine>,
    /// Per-session execution configuration, seeded from the engine's
    /// defaults at session creation. Queries and operations issued through
    /// this session run under it via [`Engine::execute_configured`].
    config: EngineConfig,
    current: Option<SCuboidSpec>,
    cuboid: Option<Arc<SCuboid>>,
    history: Vec<HistoryEntry>,
}

impl Session {
    /// Opens a session on a shared engine with no current query yet. The
    /// session's configuration starts as a copy of the engine's, with a
    /// fresh per-session [`CancelToken`](solap_eventdb::CancelToken) so
    /// cancelling this session never aborts another's queries.
    pub fn new(engine: Arc<Engine>) -> Self {
        let mut config = engine.config().clone();
        config.cancel = solap_eventdb::CancelToken::new();
        Session {
            engine,
            config,
            current: None,
            cuboid: None,
            history: Vec::new(),
        }
    }

    /// Opens a session and executes an initial query.
    pub fn start(engine: Arc<Engine>, spec: SCuboidSpec) -> Result<Self> {
        let mut s = Session::new(engine);
        s.query(spec)?;
        Ok(s)
    }

    /// The current specification, if a query has run.
    pub fn spec(&self) -> Option<&SCuboidSpec> {
        self.current.as_ref()
    }

    /// The current cuboid, if a query has run.
    pub fn cuboid(&self) -> Option<&Arc<SCuboid>> {
        self.cuboid.as_ref()
    }

    /// The engine backing this session.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// A clone of the shared engine handle.
    pub fn engine_arc(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// The session's execution configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable access to the session's execution configuration — the
    /// session-scoped replacement for `Engine::config_mut` pokes: strategy,
    /// threads, timeout and budget changed here affect this session only.
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// The history, oldest first.
    pub fn history(&self) -> &[HistoryEntry] {
        &self.history
    }

    /// The current spec, or a typed error for surfaces that need one.
    fn require_current(&self) -> Result<&SCuboidSpec> {
        self.current
            .as_ref()
            .ok_or_else(|| Error::InvalidOperation("no current query — run one first".into()))
    }

    /// Applies an operation, navigating to a new S-cuboid.
    pub fn apply(&mut self, op: Op) -> Result<QueryOutput> {
        let prev = self.require_current()?.clone();
        let (spec, out) = self
            .engine
            .execute_op_configured(&prev, &op, &self.config)?;
        self.history.push(HistoryEntry {
            op: Some(op.name().to_owned()),
            spec: spec.clone(),
            stats: out.stats.clone(),
        });
        self.current = Some(spec);
        self.cuboid = Some(Arc::clone(&out.cuboid));
        Ok(out)
    }

    /// Executes a fresh query within the session (replacing the current
    /// specification).
    pub fn query(&mut self, spec: SCuboidSpec) -> Result<QueryOutput> {
        let out = self.engine.execute_configured(&spec, &self.config)?;
        self.history.push(HistoryEntry {
            op: if self.history.is_empty() {
                None
            } else {
                Some("QUERY".to_owned())
            },
            spec: spec.clone(),
            stats: out.stats.clone(),
        });
        self.current = Some(spec);
        self.cuboid = Some(Arc::clone(&out.cuboid));
        Ok(out)
    }

    /// Re-executes the current specification (usually a cuboid-repository
    /// hit) — the `.show` surface.
    pub fn reexecute(&mut self) -> Result<QueryOutput> {
        let spec = self.require_current()?.clone();
        let out = self.engine.execute_configured(&spec, &self.config)?;
        self.cuboid = Some(Arc::clone(&out.cuboid));
        Ok(out)
    }

    /// Builds the structured execution plan for `spec` under this
    /// session's configuration, without executing it. Rendering (text or
    /// JSON) is the dispatch layer's job.
    pub fn explain(&self, spec: &SCuboidSpec) -> Result<crate::plan::PlanReport> {
        self.engine.explain_configured(spec, &self.config)
    }

    /// Steps back to the previous specification (re-executing it — usually
    /// a cuboid-repository hit). Returns `false` at the start of history.
    pub fn back(&mut self) -> Result<bool> {
        if self.history.len() < 2 {
            return Ok(false);
        }
        self.history.pop();
        let spec = self.history.last().expect("non-empty").spec.clone();
        let out = self.engine.execute_configured(&spec, &self.config)?;
        self.current = Some(spec);
        self.cuboid = Some(Arc::clone(&out.cuboid));
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{AttrLevel, CmpOp, ColumnType, EventDbBuilder, SortKey, Value};
    use solap_pattern::{MatchPred, PatternKind, PatternTemplate};

    fn engine() -> Arc<Engine> {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .build()
            .unwrap();
        let seqs: [&[&str]; 2] = [
            &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
            &["Glenmont", "Pentagon"],
        ];
        for (sid, stations) in seqs.iter().enumerate() {
            for (i, st) in stations.iter().enumerate() {
                let action = if i % 2 == 0 { "in" } else { "out" };
                db.push_row(&[
                    Value::Int(sid as i64),
                    Value::Int(i as i64),
                    Value::from(*st),
                    Value::from(action),
                ])
                .unwrap();
            }
        }
        Arc::new(Engine::builder(db).build())
    }

    fn initial(db: &solap_eventdb::EventDb) -> SCuboidSpec {
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 2, 0), ("Y", 2, 0)],
        )
        .unwrap();
        let action = db.attr("action").unwrap();
        SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 1,
                ascending: true,
            }],
        )
        .with_mpred(
            MatchPred::cmp(0, action, CmpOp::Eq, "in").and(MatchPred::cmp(
                1,
                action,
                CmpOp::Eq,
                "out",
            )),
        )
    }

    #[test]
    fn navigate_append_and_back() {
        let e = engine();
        let spec = initial(&e.db());
        let mut s = Session::start(e, spec).unwrap();
        assert_eq!(s.history().len(), 1);
        let before = s.spec().unwrap().fingerprint();
        s.apply(Op::Append {
            symbol: "Y".into(),
            attr: 2,
            level: 0,
        })
        .unwrap();
        assert_eq!(s.spec().unwrap().template.m(), 3);
        assert_eq!(s.history().len(), 2);
        assert_eq!(s.history()[1].op.as_deref(), Some("APPEND"));
        assert!(s.back().unwrap());
        assert_eq!(s.spec().unwrap().fingerprint(), before);
        assert!(!s.back().unwrap(), "cannot step before the initial query");
    }

    #[test]
    fn fresh_query_resets_spec() {
        let e = engine();
        let spec = initial(&e.db());
        let mut s = Session::start(e, spec).unwrap();
        let mut other = initial(&s.engine().db());
        other.mpred = MatchPred::True;
        let out = s.query(other.clone()).unwrap();
        assert_eq!(s.spec().unwrap().fingerprint(), other.fingerprint());
        assert!(out.cuboid.len() >= s.history()[0].spec.template.n());
        assert_eq!(s.history()[1].op.as_deref(), Some("QUERY"));
    }

    #[test]
    fn cuboid_follows_operations() {
        let e = engine();
        let spec = initial(&e.db());
        let mut s = Session::start(e, spec).unwrap();
        let n_before = s.cuboid().unwrap().len();
        s.apply(Op::SetMinSupport(Some(1_000_000))).unwrap();
        assert_eq!(s.cuboid().unwrap().len(), 0);
        s.back().unwrap();
        assert_eq!(s.cuboid().unwrap().len(), n_before);
    }

    #[test]
    fn empty_session_reports_typed_errors() {
        let e = engine();
        let mut s = Session::new(e);
        assert!(s.spec().is_none() && s.cuboid().is_none());
        let err = s.apply(Op::DeTail).unwrap_err();
        assert_eq!(err.code(), "invalid_operation");
        assert_eq!(s.reexecute().unwrap_err().code(), "invalid_operation");
        assert!(!s.back().unwrap());
    }

    #[test]
    fn sessions_share_an_engine_but_not_config() {
        let e = engine();
        let spec = initial(&e.db());
        let mut a = Session::new(Arc::clone(&e));
        let mut b = Session::new(Arc::clone(&e));
        a.config_mut().strategy = crate::engine::Strategy::CounterBased;
        // The shared cuboid repository would otherwise answer A's repeat
        // of B's query outright; bypass it so the strategy override shows.
        a.config_mut().use_cuboid_repo = false;
        b.config_mut().strategy = crate::engine::Strategy::InvertedIndex;
        // Per-session cancel tokens are independent: cancelling A's leaves
        // B runnable.
        a.config().cancel.cancel();
        let err = a.query(spec.clone()).unwrap_err();
        assert_eq!(err.code(), "cancelled");
        let out_b = b.query(spec.clone()).unwrap();
        assert_eq!(out_b.stats.strategy, "II");
        a.config().cancel.reset();
        let out_a = a.query(spec).unwrap();
        assert_eq!(out_a.stats.strategy, "CB");
        assert_eq!(out_a.cuboid.cells, out_b.cuboid.cells);
    }
}
