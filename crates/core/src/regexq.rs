//! Regex-template S-cuboids — the counting surface for the §3.2 extension.
//!
//! The paper sketches extending pattern templates to regular expressions;
//! `solap-pattern::regex` implements the template model and matcher, and
//! this module runs COUNT cuboids over sequence groups with them
//! (counter-based strategy; regex templates have no inverted-index
//! equivalent in the paper and none is invented here).

use solap_eventdb::{EventDb, QueryGovernor, Result, SequenceGroups};
use solap_pattern::{AggValue, CellRestriction, RegexMatcher, RegexTemplate};

use crate::cuboid::{CellKey, SCuboid};
use crate::stats::ScanMeter;

/// Computes the COUNT S-cuboid of a regex template over sequence groups
/// (global dimensions come from the groups; every group is scanned).
pub fn regex_cuboid(
    db: &EventDb,
    groups: &SequenceGroups,
    template: &RegexTemplate,
    restriction: CellRestriction,
    meter: &mut ScanMeter,
) -> Result<SCuboid> {
    regex_cuboid_governed(
        db,
        groups,
        template,
        restriction,
        meter,
        &QueryGovernor::unbounded(),
    )
}

/// [`regex_cuboid`] under a [`QueryGovernor`]: the backtracking walk ticks
/// per node (regex templates are the paper's explosive-match-count case)
/// and each new cell is charged against the budget.
pub fn regex_cuboid_governed(
    db: &EventDb,
    groups: &SequenceGroups,
    template: &RegexTemplate,
    restriction: CellRestriction,
    meter: &mut ScanMeter,
    gov: &QueryGovernor,
) -> Result<SCuboid> {
    let matcher = RegexMatcher::new(db, template).with_governor(gov);
    let mut cuboid = SCuboid::new(
        groups.global_dims.clone(),
        template.dims.clone(),
        solap_pattern::AggFunc::Count,
    );
    for group in &groups.groups {
        gov.check_now()?;
        let mut counts: std::collections::HashMap<Vec<u64>, u64> = std::collections::HashMap::new();
        for seq in &group.sequences {
            meter.touch(seq.sid);
            for (cell, c) in matcher.count_cells(seq, restriction)? {
                match counts.entry(cell) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        gov.charge_cells(1)?;
                        e.insert(c);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => *e.get_mut() += c,
                }
            }
        }
        for (cell, c) in counts {
            cuboid.cells.insert(
                CellKey {
                    global: group.key.clone(),
                    pattern: cell,
                },
                AggValue::Count(c),
            );
        }
    }
    Ok(cuboid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{
        build_sequence_groups, AttrLevel, ColumnType, EventDbBuilder, Pred, SeqQuerySpec, SortKey,
        Value,
    };
    use solap_pattern::{PatternDim, RegexElem};

    fn db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("station", ColumnType::Str)
            .build()
            .unwrap();
        let seqs: [&[&str]; 3] = [
            &["P", "W", "Q", "W", "P"],
            &["P", "W", "W", "P"],
            &["W", "P"],
        ];
        for (sid, stations) in seqs.iter().enumerate() {
            for (i, st) in stations.iter().enumerate() {
                db.push_row(&[
                    Value::Int(sid as i64),
                    Value::Int(i as i64),
                    Value::from(*st),
                ])
                .unwrap();
            }
        }
        db
    }

    fn groups(db: &EventDb) -> SequenceGroups {
        build_sequence_groups(
            db,
            &SeqQuerySpec {
                filter: Pred::True,
                cluster_by: vec![AttrLevel::new(0, 0)],
                sequence_by: vec![SortKey {
                    attr: 1,
                    ascending: true,
                }],
                group_by: vec![],
            },
        )
        .unwrap()
    }

    #[test]
    fn round_trip_with_layovers_cuboid() {
        let db = db();
        let g = groups(&db);
        // (X, Y, .*, Y, X): round trips allowing intermediate activity.
        let t = RegexTemplate::new(
            vec![
                PatternDim {
                    name: "X".into(),
                    attr: 2,
                    level: 0,
                },
                PatternDim {
                    name: "Y".into(),
                    attr: 2,
                    level: 0,
                },
            ],
            vec![
                RegexElem::One(0),
                RegexElem::One(1),
                RegexElem::Gap,
                RegexElem::One(1),
                RegexElem::One(0),
            ],
        )
        .unwrap();
        let mut meter = ScanMeter::new();
        let c = regex_cuboid(
            &db,
            &g,
            &t,
            CellRestriction::LeftMaximalityMatchedGo,
            &mut meter,
        )
        .unwrap();
        let p = db.parse_level_value(2, 0, "P").unwrap();
        let w = db.parse_level_value(2, 0, "W").unwrap();
        assert_eq!(c.get(&[], &[p, w]).and_then(|v| v.as_count()), Some(2));
        assert_eq!(meter.count(), 3, "regex cuboids scan every sequence");
    }
}
