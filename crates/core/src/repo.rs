//! The Cuboid Repository (Figure 6): an LRU cache of computed S-cuboids.
//!
//! "Given an S-cuboid query, the S-OLAP Engine searches a Cuboid Repository
//! to see if such an S-cuboid has been previously computed and stored …
//! (If storage space is limited, the Cuboid Repository could be implemented
//! as a cache with an appropriate replacement policy such as LRU.)"
//!
//! DE-HEAD and DE-TAIL lean on this cache: applying APPEND then DE-TAIL
//! restores the previous query, whose cuboid is returned outright.

use std::sync::Arc;

use parking_lot::Mutex;

use solap_eventdb::lru::LruCache;

use crate::cuboid::SCuboid;

/// Cache key: spec fingerprint + database version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    spec: u64,
    db_version: u64,
}

/// A thread-safe LRU repository of computed cuboids.
pub struct CuboidRepo {
    inner: Mutex<LruCache<Key, Arc<SCuboid>>>,
}

impl CuboidRepo {
    /// Creates a repository bounded by entry count and approximate bytes.
    pub fn new(capacity: usize, max_bytes: usize) -> Self {
        CuboidRepo {
            inner: Mutex::ranked(
                parking_lot::rank::CORE_CUBOID_REPO,
                "core.cuboid_repo",
                LruCache::with_weight(capacity, max_bytes, |c| c.heap_bytes()),
            ),
        }
    }

    /// Fetches a cached cuboid.
    pub fn get(&self, spec_fp: u64, db_version: u64) -> Option<Arc<SCuboid>> {
        self.inner
            .lock()
            .get(&Key {
                spec: spec_fp,
                db_version,
            })
            .cloned()
    }

    /// Stores a computed cuboid.
    pub fn insert(&self, spec_fp: u64, db_version: u64, cuboid: Arc<SCuboid>) {
        self.inner.lock().insert(
            Key {
                spec: spec_fp,
                db_version,
            },
            cuboid,
        );
    }

    /// Number of cached cuboids.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Approximate bytes cached (the "0.3MB of cuboids" of §5.1).
    pub fn total_bytes(&self) -> usize {
        self.inner.lock().weight()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        self.inner.lock().stats()
    }

    /// Drops everything.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

impl Default for CuboidRepo {
    fn default() -> Self {
        CuboidRepo::new(128, 256 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_pattern::AggFunc;

    fn cuboid() -> Arc<SCuboid> {
        Arc::new(SCuboid::new(vec![], vec![], AggFunc::Count))
    }

    #[test]
    fn roundtrip_and_version_separation() {
        let repo = CuboidRepo::default();
        repo.insert(1, 10, cuboid());
        assert!(repo.get(1, 10).is_some());
        assert!(repo.get(1, 11).is_none(), "new db version misses");
        assert!(repo.get(2, 10).is_none(), "different spec misses");
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.stats(), (1, 2));
        repo.clear();
        assert!(repo.is_empty());
    }
}
