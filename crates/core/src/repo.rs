//! The Cuboid Repository (Figure 6): a bounded cache of computed S-cuboids.
//!
//! "Given an S-cuboid query, the S-OLAP Engine searches a Cuboid Repository
//! to see if such an S-cuboid has been previously computed and stored …
//! (If storage space is limited, the Cuboid Repository could be implemented
//! as a cache with an appropriate replacement policy such as LRU.)"
//!
//! The paper leaves the replacement policy open; this implementation offers
//! two. [`RetentionPolicy::Lru`] is the paper's parenthetical. The default
//! [`RetentionPolicy::BenefitPerByte`] keeps the cuboids whose loss would
//! hurt most per byte of heap they occupy: the victim minimizes
//! `rebuild_nanos × (1 + hits) / bytes` — cost-to-rebuild (measured when
//! the cuboid was constructed) times observed demand, per byte — with ties
//! broken toward the least recently used. DE-HEAD and DE-TAIL lean on this
//! cache, and the planner's ancestor-reuse path probes it without touching
//! recency ([`CuboidRepo::peek`]) so that costing alternatives never
//! perturbs what it is costing.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cuboid::SCuboid;

/// Cache key: spec fingerprint + database version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    spec: u64,
    db_version: u64,
}

/// Which cuboid the repository sacrifices when over budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetentionPolicy {
    /// Evict the least recently used entry (the paper's suggestion).
    Lru,
    /// Evict the entry with the least `rebuild cost × (1 + hits)` per
    /// byte, i.e. keep what is expensive to lose and cheap to hold.
    #[default]
    BenefitPerByte,
}

impl RetentionPolicy {
    /// Parses a policy name: `"lru"` or `"benefit"` (benefit-per-byte).
    pub fn parse(s: &str) -> Option<RetentionPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "lru" => Some(RetentionPolicy::Lru),
            "benefit" | "benefit-per-byte" | "bpb" => Some(RetentionPolicy::BenefitPerByte),
            _ => None,
        }
    }

    /// Reads `SOLAP_REPO_POLICY` (`lru` | `benefit`), defaulting to
    /// benefit-per-byte.
    pub fn from_env() -> RetentionPolicy {
        std::env::var("SOLAP_REPO_POLICY")
            .ok()
            .and_then(|s| RetentionPolicy::parse(&s))
            .unwrap_or_default()
    }

    /// The policy's display name.
    pub fn name(&self) -> &'static str {
        match self {
            RetentionPolicy::Lru => "lru",
            RetentionPolicy::BenefitPerByte => "benefit-per-byte",
        }
    }
}

/// A point-in-time snapshot of the repository's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepoStats {
    /// Cuboids currently cached.
    pub entries: usize,
    /// Approximate heap bytes cached.
    pub bytes: usize,
    /// Lookups that found their cuboid.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries sacrificed by the retention policy.
    pub evictions: u64,
    /// The active retention policy.
    pub policy: RetentionPolicy,
}

impl RepoStats {
    /// Hit fraction in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached cuboid plus the bookkeeping the retention policy scores.
struct Entry {
    cuboid: Arc<SCuboid>,
    bytes: usize,
    build_nanos: u64,
    hits: u64,
    tick: u64,
}

impl Entry {
    /// Benefit-per-byte retention score: higher is more worth keeping.
    fn score(&self) -> f64 {
        (self.build_nanos.saturating_add(1) as f64) * (1 + self.hits) as f64
            / self.bytes.max(1) as f64
    }
}

struct Inner {
    map: HashMap<Key, Entry>,
    tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe bounded repository of computed cuboids.
pub struct CuboidRepo {
    inner: Mutex<Inner>,
    capacity: usize,
    max_bytes: usize,
    policy: RetentionPolicy,
}

impl CuboidRepo {
    /// Creates a repository bounded by entry count and approximate bytes,
    /// evicting under `policy`. A zero capacity is clamped to one.
    pub fn new(capacity: usize, max_bytes: usize, policy: RetentionPolicy) -> Self {
        CuboidRepo {
            inner: Mutex::ranked(
                parking_lot::rank::CORE_CUBOID_REPO,
                "core.cuboid_repo",
                Inner {
                    map: HashMap::new(),
                    tick: 0,
                    bytes: 0,
                    hits: 0,
                    misses: 0,
                    evictions: 0,
                },
            ),
            capacity: capacity.max(1),
            max_bytes,
            policy,
        }
    }

    /// Fetches a cached cuboid, refreshing its recency and demand counters.
    pub fn get(&self, spec_fp: u64, db_version: u64) -> Option<Arc<SCuboid>> {
        let key = Key {
            spec: spec_fp,
            db_version,
        };
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(e) => {
                e.tick = tick;
                e.hits += 1;
                let c = Arc::clone(&e.cuboid);
                inner.hits += 1;
                Some(c)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inspects a cached cuboid without touching recency, demand or
    /// hit/miss counters — the planner costs alternatives through this so
    /// EXPLAIN and rejected candidates leave no trace.
    pub fn peek(&self, spec_fp: u64, db_version: u64) -> Option<Arc<SCuboid>> {
        let inner = self.inner.lock();
        inner
            .map
            .get(&Key {
                spec: spec_fp,
                db_version,
            })
            .map(|e| Arc::clone(&e.cuboid))
    }

    /// Whether a cuboid is cached, without touching any counters.
    pub fn contains(&self, spec_fp: u64, db_version: u64) -> bool {
        self.inner.lock().map.contains_key(&Key {
            spec: spec_fp,
            db_version,
        })
    }

    /// Stores a computed cuboid along with what it cost to build (the
    /// benefit-per-byte policy's rebuild-cost input), then evicts until
    /// back under budget. A single entry larger than `max_bytes` is kept —
    /// matching the LRU cache's contract elsewhere in the engine.
    pub fn insert(&self, spec_fp: u64, db_version: u64, cuboid: Arc<SCuboid>, build_nanos: u64) {
        let key = Key {
            spec: spec_fp,
            db_version,
        };
        let bytes = cuboid.heap_bytes();
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            key,
            Entry {
                cuboid,
                bytes,
                build_nanos,
                hits: 0,
                tick,
            },
        ) {
            inner.bytes = inner.bytes.saturating_sub(old.bytes);
        }
        inner.bytes += bytes;
        while inner.map.len() > self.capacity
            || (inner.bytes > self.max_bytes && inner.map.len() > 1)
        {
            let victim = match self.policy {
                RetentionPolicy::Lru => inner.map.iter().min_by_key(|(_, e)| e.tick),
                RetentionPolicy::BenefitPerByte => inner.map.iter().min_by(|(_, a), (_, b)| {
                    a.score()
                        .partial_cmp(&b.score())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.tick.cmp(&b.tick))
                }),
            }
            .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(e) = inner.map.remove(&victim) {
                inner.bytes = inner.bytes.saturating_sub(e.bytes);
                inner.evictions += 1;
            }
        }
    }

    /// Number of cached cuboids.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().map.is_empty()
    }

    /// Approximate bytes cached (the "0.3MB of cuboids" of §5.1).
    pub fn total_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// The active retention policy.
    pub fn policy(&self) -> RetentionPolicy {
        self.policy
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RepoStats {
        let inner = self.inner.lock();
        RepoStats {
            entries: inner.map.len(),
            bytes: inner.bytes,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            policy: self.policy,
        }
    }

    /// Drops every entry (counters survive).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.bytes = 0;
    }
}

impl Default for CuboidRepo {
    fn default() -> Self {
        CuboidRepo::new(128, 256 << 20, RetentionPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cuboid::CellKey;
    use solap_pattern::{AggFunc, AggValue};

    fn cuboid() -> Arc<SCuboid> {
        Arc::new(SCuboid::new(vec![], vec![], AggFunc::Count))
    }

    fn sized(cells: u64) -> Arc<SCuboid> {
        let mut c = SCuboid::new(vec![], vec![], AggFunc::Count);
        for i in 0..cells {
            c.cells.insert(
                CellKey {
                    global: vec![],
                    pattern: vec![i],
                },
                AggValue::Count(1),
            );
        }
        Arc::new(c)
    }

    #[test]
    fn roundtrip_and_version_separation() {
        let repo = CuboidRepo::default();
        repo.insert(1, 10, sized(2), 5_000);
        assert!(repo.get(1, 10).is_some());
        assert!(repo.get(1, 11).is_none(), "new db version misses");
        assert!(repo.get(2, 10).is_none(), "different spec misses");
        assert_eq!(repo.len(), 1);
        let stats = repo.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (1, 1, 2));
        assert!(stats.bytes > 0);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-9);
        repo.clear();
        assert!(repo.is_empty());
    }

    #[test]
    fn peek_and_contains_leave_no_trace() {
        let repo = CuboidRepo::default();
        repo.insert(1, 10, cuboid(), 5_000);
        assert!(repo.peek(1, 10).is_some());
        assert!(repo.peek(9, 10).is_none());
        assert!(repo.contains(1, 10));
        assert!(!repo.contains(9, 10));
        let stats = repo.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }

    #[test]
    fn lru_policy_evicts_least_recent() {
        let repo = CuboidRepo::new(2, usize::MAX, RetentionPolicy::Lru);
        repo.insert(1, 0, cuboid(), 1);
        repo.insert(2, 0, cuboid(), 1);
        assert!(repo.get(1, 0).is_some()); // refresh 1 → victim is 2
        repo.insert(3, 0, cuboid(), 1);
        assert!(repo.contains(1, 0));
        assert!(!repo.contains(2, 0));
        assert!(repo.contains(3, 0));
        assert_eq!(repo.stats().evictions, 1);
    }

    #[test]
    fn benefit_policy_keeps_expensive_hot_entries() {
        let repo = CuboidRepo::new(2, usize::MAX, RetentionPolicy::BenefitPerByte);
        // Entry 1: expensive to rebuild and frequently hit, but stale.
        repo.insert(1, 0, sized(4), 1_000_000);
        for _ in 0..5 {
            assert!(repo.get(1, 0).is_some());
        }
        // Entry 2: cheap, unloved, recently used. LRU would keep it.
        repo.insert(2, 0, sized(4), 10);
        repo.insert(3, 0, sized(4), 10);
        assert!(repo.contains(1, 0), "high-benefit entry survives");
        assert!(!repo.contains(2, 0), "cheap cold entry is the victim");
        assert!(repo.contains(3, 0));
        assert_eq!(repo.stats().policy, RetentionPolicy::BenefitPerByte);
    }

    #[test]
    fn byte_budget_keeps_one_oversized_entry() {
        let repo = CuboidRepo::new(8, 1, RetentionPolicy::BenefitPerByte);
        repo.insert(1, 0, sized(4), 1);
        assert_eq!(repo.len(), 1, "single oversized entry is kept");
        repo.insert(2, 0, sized(4), 1);
        assert_eq!(repo.len(), 1, "second entry forces eviction to budget");
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(RetentionPolicy::parse("lru"), Some(RetentionPolicy::Lru));
        assert_eq!(
            RetentionPolicy::parse(" Benefit "),
            Some(RetentionPolicy::BenefitPerByte)
        );
        assert_eq!(RetentionPolicy::parse("fifo"), None);
        assert_eq!(RetentionPolicy::Lru.name(), "lru");
        assert_eq!(RetentionPolicy::BenefitPerByte.name(), "benefit-per-byte");
    }
}
