//! Deprecated façade over the index-materialization advisor, which now
//! lives in [`crate::plan`] (the §4.2.2 "which indices to materialize"
//! open problem is a planning question, and the planner owns the cost
//! model it should share).
//!
//! The old free-function pair multiplied arity with every new input
//! (`advise`, then `advise_with_backend`, next `advise_with_stats`, …);
//! the replacement is one entry point, [`Planner::advise`], taking a
//! [`PlanContext`] that future inputs extend instead. These shims are kept
//! for one release so downstream code migrates on its own schedule.

use solap_eventdb::{EventDb, Result, SequenceGroups};
use solap_index::SetBackend;

use crate::plan::Planner;
pub use crate::plan::{apply_advice, Advice, Candidate, PlanContext, WorkloadQuery};

/// Recommends which generic indices to precompute within `byte_budget`.
#[deprecated(since = "0.10.0", note = "use `plan::Planner::advise(&PlanContext)`")]
pub fn advise(
    db: &EventDb,
    groups: &SequenceGroups,
    workload: &[WorkloadQuery],
    byte_budget: usize,
    sample: usize,
) -> Result<Advice> {
    Planner::advise(&PlanContext {
        db,
        groups,
        workload,
        byte_budget,
        sample,
        backend: SetBackend::default(),
    })
}

/// [`advise`] with an explicit sid-set encoding for the size estimates.
#[deprecated(since = "0.10.0", note = "use `plan::Planner::advise(&PlanContext)`")]
pub fn advise_with_backend(
    db: &EventDb,
    groups: &SequenceGroups,
    workload: &[WorkloadQuery],
    byte_budget: usize,
    sample: usize,
    backend: SetBackend,
) -> Result<Advice> {
    Planner::advise(&PlanContext {
        db,
        groups,
        workload,
        byte_budget,
        sample,
        backend,
    })
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::spec::SCuboidSpec;
    use solap_eventdb::{AttrLevel, SortKey};
    use solap_pattern::{PatternKind, PatternTemplate};

    fn db() -> EventDb {
        solap_datagen_shim::synthetic(40, 10.0, 400)
    }

    /// A tiny local generator to avoid a dev-dependency cycle with
    /// solap-datagen (which depends on eventdb only, but keeping core's
    /// dev-deps lean matters for build times).
    mod solap_datagen_shim {
        use solap_eventdb::{ColumnType, EventDb, EventDbBuilder, Value};

        pub fn synthetic(i: usize, l: f64, d: usize) -> EventDb {
            let mut db = EventDbBuilder::new()
                .dimension("seq-id", ColumnType::Int)
                .dimension("pos", ColumnType::Int)
                .dimension("symbol", ColumnType::Str)
                .build()
                .unwrap();
            let mut state = 123456789u64;
            let mut rand = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as usize
            };
            for sid in 0..d {
                let len = 1 + rand() % (2 * l as usize);
                for pos in 0..len {
                    let sym = rand() % i;
                    db.push_row(&[
                        Value::Int(sid as i64),
                        Value::Int(pos as i64),
                        Value::Str(format!("s{sym:02}")),
                    ])
                    .unwrap();
                }
            }
            db.set_base_level_name(2, "symbol");
            db.attach_str_level(2, "group", |name| format!("g{}", &name[1..2]))
                .unwrap();
            db
        }
    }

    fn spec(_db: &EventDb, syms: &[&str], level: usize) -> SCuboidSpec {
        let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
        for &s in syms {
            if !bindings.iter().any(|(n, _, _)| *n == s) {
                bindings.push((s, 2, level));
            }
        }
        let t = PatternTemplate::new(PatternKind::Substring, syms, &bindings).unwrap();
        SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 1,
                ascending: true,
            }],
        )
    }

    fn groups(db: &EventDb, s: &SCuboidSpec) -> SequenceGroups {
        solap_eventdb::build_sequence_groups(db, &s.seq).unwrap()
    }

    #[test]
    fn advises_within_budget() {
        let db = db();
        let workload = vec![
            WorkloadQuery {
                spec: spec(&db, &["X", "Y"], 0),
                frequency: 10.0,
            },
            WorkloadQuery {
                spec: spec(&db, &["X", "Y", "Z"], 0),
                frequency: 2.0,
            },
            WorkloadQuery {
                spec: spec(&db, &["X", "Y"], 1),
                frequency: 1.0,
            },
        ];
        let g = groups(&db, &workload[0].spec);
        let advice = advise(&db, &g, &workload, 64 << 20, 50).unwrap();
        assert!(!advice.chosen.is_empty());
        assert!(advice.total_bytes <= 64 << 20);
        // The heavily used base-level lane must be covered.
        assert!(
            advice.chosen.iter().any(|c| c.level == 0 && c.m >= 2),
            "{advice:?}"
        );
        // Every candidate has a sane size estimate.
        for c in advice.chosen.iter().chain(&advice.rejected) {
            assert!(c.estimated_bytes > 0);
        }
    }

    #[test]
    fn tight_budget_prefers_benefit_per_byte() {
        let db = db();
        let workload = vec![WorkloadQuery {
            spec: spec(&db, &["X", "Y", "Z"], 0),
            frequency: 1.0,
        }];
        let g = groups(&db, &workload[0].spec);
        let generous = advise(&db, &g, &workload, usize::MAX, 50).unwrap();
        // Unlimited budget: both L2 and L3 lanes end up covered (L3 pick
        // subsumes L2 or both chosen, depending on marginal order).
        assert!(generous.chosen.iter().any(|c| c.m >= 2));
        let l2_size = generous
            .chosen
            .iter()
            .chain(&generous.rejected)
            .find(|c| c.m == 2)
            .unwrap()
            .estimated_bytes;
        let tight = advise(&db, &g, &workload, l2_size, 50).unwrap();
        assert!(tight.total_bytes <= l2_size);
        for c in &tight.chosen {
            assert_eq!(c.m, 2, "only the small index fits");
        }
    }

    #[test]
    fn zero_budget_chooses_nothing() {
        let db = db();
        let workload = vec![WorkloadQuery {
            spec: spec(&db, &["X", "Y"], 0),
            frequency: 1.0,
        }];
        let g = groups(&db, &workload[0].spec);
        let advice = advise(&db, &g, &workload, 0, 50).unwrap();
        assert!(advice.chosen.is_empty());
        assert!(!advice.rejected.is_empty());
    }

    #[test]
    fn shim_and_plan_context_agree() {
        let db = db();
        let workload = vec![WorkloadQuery {
            spec: spec(&db, &["X", "Y"], 0),
            frequency: 1.0,
        }];
        let g = groups(&db, &workload[0].spec);
        let via_shim =
            advise_with_backend(&db, &g, &workload, 64 << 20, 50, SetBackend::default()).unwrap();
        let via_ctx = crate::plan::Planner::advise(&PlanContext {
            db: &db,
            groups: &g,
            workload: &workload,
            byte_budget: 64 << 20,
            sample: 50,
            backend: SetBackend::default(),
        })
        .unwrap();
        assert_eq!(via_shim.chosen, via_ctx.chosen);
        assert_eq!(via_shim.total_bytes, via_ctx.total_bytes);
    }

    #[test]
    fn applied_advice_makes_first_query_buildfree() {
        let db = db();
        let workload = vec![WorkloadQuery {
            spec: spec(&db, &["X", "Y"], 0),
            frequency: 1.0,
        }];
        let engine = Engine::new(db);
        let g = engine.sequence_groups(&workload[0].spec).unwrap();
        let advice = advise(&engine.db(), &g, &workload, usize::MAX, 50).unwrap();
        let built = apply_advice(&engine, &workload, &advice).unwrap();
        assert!(built > 0);
        let out = engine.execute(&workload[0].spec).unwrap();
        assert_eq!(out.stats.indices_built, 0, "precomputed index serves QA1");
        assert_eq!(out.stats.sequences_scanned, 0);
    }
}
