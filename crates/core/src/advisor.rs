//! The index-materialization advisor — the §4.2.2 open problem:
//!
//! "Another interesting question concerns *which* inverted indices should
//! be materialized offline. A related problem is thus about how to
//! determine the lists to be built given a set of frequently asked
//! queries."
//!
//! Given a representative workload (a set of S-cuboid specifications with
//! frequencies) and a byte budget, the advisor chooses which **generic**
//! indices (`L_m` over an `(attribute, level)` pair) to precompute. The
//! cost model is the one the engine actually exhibits:
//!
//! * a query whose template signature has a cached prefix of length `k`
//!   skips the base-build scan and joins up from `k` — the benefit of a
//!   candidate `L_k` is the base-build work it saves, weighted by query
//!   frequency;
//! * a longer prefix saves more join rungs, but generic `L_m` size grows
//!   steeply with `m` (measured by building on a sample);
//! * benefit is claimed once per `(attr, level)` lane — a cached `L_3`
//!   subsumes the `L_2` benefit for the same queries (the ladder joins
//!   from the *largest* prefix).
//!
//! The selection is the classic greedy benefit-per-byte loop, which is the
//! standard first-order answer for view/index selection problems.

use std::collections::HashMap;

use solap_eventdb::{AttrId, EventDb, Result, SequenceGroups};
use solap_index::{build_index, SetBackend};
use solap_pattern::{PatternKind, PatternTemplate};

use crate::spec::SCuboidSpec;

/// A candidate generic index.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The attribute the index keys on.
    pub attr: AttrId,
    /// The abstraction level.
    pub level: usize,
    /// Pattern length `m`.
    pub m: usize,
    /// Substring or subsequence.
    pub kind: PatternKind,
    /// Estimated bytes (from the sample build, scaled).
    pub estimated_bytes: usize,
    /// Estimated benefit (frequency-weighted sequences-scanned saved).
    pub benefit: f64,
}

/// The advisor's output: chosen candidates, in pick order.
#[derive(Debug, Clone, Default)]
pub struct Advice {
    /// The picks, highest benefit-per-byte first.
    pub chosen: Vec<Candidate>,
    /// Candidates considered but not chosen.
    pub rejected: Vec<Candidate>,
    /// Total estimated bytes of the chosen set.
    pub total_bytes: usize,
}

/// Workload entry: a query and how often it is expected to run.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// The query.
    pub spec: SCuboidSpec,
    /// Relative frequency (weight).
    pub frequency: f64,
}

/// Builds candidate generic indices for a workload: for every `(attr,
/// level, kind)` lane used by some query template, lengths `2..=max_m`
/// (capped by the longest template on that lane).
fn candidates_for(
    workload: &[WorkloadQuery],
    max_m: usize,
) -> Vec<(AttrId, usize, PatternKind, usize)> {
    let mut lanes: HashMap<(AttrId, usize, PatternKind), usize> = HashMap::new();
    for q in workload {
        let t = &q.spec.template;
        for d in &t.dims {
            let e = lanes.entry((d.attr, d.level, t.kind)).or_insert(0);
            *e = (*e).max(t.m());
        }
    }
    let mut out = Vec::new();
    for ((attr, level, kind), longest) in lanes {
        for m in 2..=longest.min(max_m) {
            out.push((attr, level, kind, m));
        }
    }
    out.sort_by_key(|&(a, l, k, m)| (a, l, k == PatternKind::Subsequence, m));
    out
}

/// Estimates a candidate's size by building it over a sample of sequences
/// and scaling linearly (list entries grow linearly with sequence count;
/// the key space saturates, so linear scaling is a safe over-estimate).
#[allow(clippy::too_many_arguments)]
fn estimate_bytes(
    db: &EventDb,
    groups: &SequenceGroups,
    attr: AttrId,
    level: usize,
    kind: PatternKind,
    m: usize,
    sample: usize,
    backend: SetBackend,
) -> Result<usize> {
    let names: Vec<String> = (0..m).map(|i| format!("P{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let bindings: Vec<(&str, AttrId, usize)> =
        name_refs.iter().map(|&n| (n, attr, level)).collect();
    let template = PatternTemplate::new(kind, &name_refs, &bindings)?;
    let total = groups.total_sequences.max(1);
    let take = sample.min(total);
    let seqs = groups.iter_sequences().take(take);
    let (index, _) = build_index(db, seqs, &template, backend)?;
    Ok(index.heap_bytes() * total / take.max(1))
}

/// Recommends which generic indices to precompute within `byte_budget`.
///
/// `sample` controls how many sequences the size estimation builds over
/// (small samples are fast and adequate — sizes only gate the greedy
/// ordering). Sizes are estimated under the engine's configured
/// [`SetBackend`], so compressed deployments budget against compressed
/// bytes, not list bytes — see [`advise_with_backend`].
pub fn advise(
    db: &EventDb,
    groups: &SequenceGroups,
    workload: &[WorkloadQuery],
    byte_budget: usize,
    sample: usize,
) -> Result<Advice> {
    advise_with_backend(
        db,
        groups,
        workload,
        byte_budget,
        sample,
        SetBackend::default(),
    )
}

/// [`advise`] with an explicit sid-set encoding for the size estimates.
pub fn advise_with_backend(
    db: &EventDb,
    groups: &SequenceGroups,
    workload: &[WorkloadQuery],
    byte_budget: usize,
    sample: usize,
    backend: SetBackend,
) -> Result<Advice> {
    let total_seqs = groups.total_sequences as f64;
    let mut candidates = Vec::new();
    for (attr, level, kind, m) in candidates_for(workload, 6) {
        let estimated_bytes = estimate_bytes(db, groups, attr, level, kind, m, sample, backend)?;
        // Benefit: every query on this lane with template length ≥ m avoids
        // the full base-build scan (D sequences) on its first run, and
        // deeper prefixes save join/verify rungs — approximated as one
        // D-scan per rung covered.
        let mut benefit = 0.0;
        for q in workload {
            let t = &q.spec.template;
            let on_lane =
                t.dims.iter().any(|d| d.attr == attr && d.level == level) && t.kind == kind;
            if on_lane && t.m() >= m {
                benefit += q.frequency * total_seqs * (m - 1) as f64;
            }
        }
        candidates.push(Candidate {
            attr,
            level,
            m,
            kind,
            estimated_bytes,
            benefit,
        });
    }
    // Greedy by marginal benefit per byte. A longer index on the same lane
    // subsumes the shorter ones' benefit, so after picking one, re-derive
    // marginal benefits: shorter prefixes on the lane become redundant for
    // the queries the pick covers; longer ones only add their extra rungs.
    let mut advice = Advice::default();
    let mut remaining = candidates;
    let mut picked_per_lane: HashMap<(AttrId, usize, PatternKind), usize> = HashMap::new();
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in remaining.iter().enumerate() {
            let lane = (c.attr, c.level, c.kind);
            let covered = picked_per_lane.get(&lane).copied().unwrap_or(1);
            if c.m <= covered {
                continue; // subsumed
            }
            let marginal = c.benefit * ((c.m - covered) as f64 / (c.m - 1) as f64);
            if c.estimated_bytes + advice.total_bytes > byte_budget {
                continue;
            }
            let score = marginal / (c.estimated_bytes.max(1) as f64);
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((i, score));
            }
        }
        let Some((i, _)) = best else { break };
        let c = remaining.remove(i);
        picked_per_lane.insert((c.attr, c.level, c.kind), c.m);
        advice.total_bytes += c.estimated_bytes;
        advice.chosen.push(c);
    }
    advice.rejected = remaining;
    Ok(advice)
}

/// Materializes the advice into an engine's index store; returns the bytes
/// actually built.
pub fn apply_advice(
    engine: &crate::engine::Engine,
    workload: &[WorkloadQuery],
    advice: &Advice,
) -> Result<usize> {
    let mut built = 0;
    for c in &advice.chosen {
        // Precompute against every distinct sequence-group spec in the
        // workload that uses this lane.
        let mut done = std::collections::HashSet::new();
        for q in workload {
            let uses = q
                .spec
                .template
                .dims
                .iter()
                .any(|d| d.attr == c.attr && d.level == c.level);
            if uses && done.insert(q.spec.seq.fingerprint()) {
                built += engine.precompute_index(&q.spec, c.attr, c.level, c.m)?;
            }
        }
    }
    Ok(built)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use solap_eventdb::{AttrLevel, SortKey};

    fn db() -> EventDb {
        solap_datagen_shim::synthetic(40, 10.0, 400)
    }

    /// A tiny local generator to avoid a dev-dependency cycle with
    /// solap-datagen (which depends on eventdb only, but keeping core's
    /// dev-deps lean matters for build times).
    mod solap_datagen_shim {
        use solap_eventdb::{ColumnType, EventDb, EventDbBuilder, Value};

        pub fn synthetic(i: usize, l: f64, d: usize) -> EventDb {
            let mut db = EventDbBuilder::new()
                .dimension("seq-id", ColumnType::Int)
                .dimension("pos", ColumnType::Int)
                .dimension("symbol", ColumnType::Str)
                .build()
                .unwrap();
            let mut state = 123456789u64;
            let mut rand = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as usize
            };
            for sid in 0..d {
                let len = 1 + rand() % (2 * l as usize);
                for pos in 0..len {
                    let sym = rand() % i;
                    db.push_row(&[
                        Value::Int(sid as i64),
                        Value::Int(pos as i64),
                        Value::Str(format!("s{sym:02}")),
                    ])
                    .unwrap();
                }
            }
            db.set_base_level_name(2, "symbol");
            db.attach_str_level(2, "group", |name| format!("g{}", &name[1..2]))
                .unwrap();
            db
        }
    }

    fn spec(_db: &EventDb, syms: &[&str], level: usize) -> SCuboidSpec {
        let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
        for &s in syms {
            if !bindings.iter().any(|(n, _, _)| *n == s) {
                bindings.push((s, 2, level));
            }
        }
        let t = PatternTemplate::new(PatternKind::Substring, syms, &bindings).unwrap();
        SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 1,
                ascending: true,
            }],
        )
    }

    fn groups(db: &EventDb, s: &SCuboidSpec) -> SequenceGroups {
        solap_eventdb::build_sequence_groups(db, &s.seq).unwrap()
    }

    #[test]
    fn advises_within_budget() {
        let db = db();
        let workload = vec![
            WorkloadQuery {
                spec: spec(&db, &["X", "Y"], 0),
                frequency: 10.0,
            },
            WorkloadQuery {
                spec: spec(&db, &["X", "Y", "Z"], 0),
                frequency: 2.0,
            },
            WorkloadQuery {
                spec: spec(&db, &["X", "Y"], 1),
                frequency: 1.0,
            },
        ];
        let g = groups(&db, &workload[0].spec);
        let advice = advise(&db, &g, &workload, 64 << 20, 50).unwrap();
        assert!(!advice.chosen.is_empty());
        assert!(advice.total_bytes <= 64 << 20);
        // The heavily used base-level lane must be covered.
        assert!(
            advice.chosen.iter().any(|c| c.level == 0 && c.m >= 2),
            "{advice:?}"
        );
        // Every candidate has a sane size estimate.
        for c in advice.chosen.iter().chain(&advice.rejected) {
            assert!(c.estimated_bytes > 0);
        }
    }

    #[test]
    fn tight_budget_prefers_benefit_per_byte() {
        let db = db();
        let workload = vec![WorkloadQuery {
            spec: spec(&db, &["X", "Y", "Z"], 0),
            frequency: 1.0,
        }];
        let g = groups(&db, &workload[0].spec);
        let generous = advise(&db, &g, &workload, usize::MAX, 50).unwrap();
        // Unlimited budget: both L2 and L3 lanes end up covered (L3 pick
        // subsumes L2 or both chosen, depending on marginal order).
        assert!(generous.chosen.iter().any(|c| c.m >= 2));
        let l2_size = generous
            .chosen
            .iter()
            .chain(&generous.rejected)
            .find(|c| c.m == 2)
            .unwrap()
            .estimated_bytes;
        let tight = advise(&db, &g, &workload, l2_size, 50).unwrap();
        assert!(tight.total_bytes <= l2_size);
        for c in &tight.chosen {
            assert_eq!(c.m, 2, "only the small index fits");
        }
    }

    #[test]
    fn zero_budget_chooses_nothing() {
        let db = db();
        let workload = vec![WorkloadQuery {
            spec: spec(&db, &["X", "Y"], 0),
            frequency: 1.0,
        }];
        let g = groups(&db, &workload[0].spec);
        let advice = advise(&db, &g, &workload, 0, 50).unwrap();
        assert!(advice.chosen.is_empty());
        assert!(!advice.rejected.is_empty());
    }

    #[test]
    fn applied_advice_makes_first_query_buildfree() {
        let db = db();
        let workload = vec![WorkloadQuery {
            spec: spec(&db, &["X", "Y"], 0),
            frequency: 1.0,
        }];
        let engine = Engine::new(db);
        let g = engine.sequence_groups(&workload[0].spec).unwrap();
        let advice = advise(&engine.db(), &g, &workload, usize::MAX, 50).unwrap();
        let built = apply_advice(&engine, &workload, &advice).unwrap();
        assert!(built > 0);
        let out = engine.execute(&workload[0].spec).unwrap();
        assert_eq!(out.stats.indices_built, 0, "precomputed index serves QA1");
        assert_eq!(out.stats.sequences_scanned, 0);
    }
}
