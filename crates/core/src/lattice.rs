//! The sequence data cube (§3.4): the lattice of S-cuboids.
//!
//! Given global and pattern dimensions with concept hierarchies, the set of
//! S-cuboids forms a lattice under a partial order the paper defines in
//! footnote 5 (details omitted there; our concrete definition is in
//! [`spec_le`]). Two properties distinguish an S-cube from a classical data
//! cube, and both are encoded here and in the tests:
//!
//! 1. **Infinitely many S-cuboids** — APPEND/PREPEND can grow the pattern
//!    template without bound, so the lattice is enumerated only up to a
//!    length budget ([`children`] / [`parents`]).
//! 2. **Non-summarizability** — a coarser S-cuboid cannot in general be
//!    computed from finer ones (§3.4's s3 counter-example lives in the
//!    integration tests and drives why the engine precomputes indices, not
//!    cuboids).

use crate::spec::SCuboidSpec;
use solap_pattern::PatternTemplate;

/// Whether `coarse`'s template is reachable from `fine`'s by applying
/// DE-HEAD and DE-TAIL operations plus P-ROLL-UPs: `coarse.symbols` must be
/// a contiguous window of `fine.symbols` with the same equality structure,
/// over the same attributes at levels ≥ `fine`'s.
pub fn template_le(coarse: &PatternTemplate, fine: &PatternTemplate) -> bool {
    if coarse.kind != fine.kind || coarse.m() > fine.m() {
        return false;
    }
    let mc = coarse.m();
    'offsets: for offset in 0..=(fine.m() - mc) {
        // Equality structure must match within the window: positions of the
        // window share a symbol in `fine` iff they share one in `coarse`.
        for i in 0..mc {
            for j in (i + 1)..mc {
                let fine_eq = fine.symbols[offset + i] == fine.symbols[offset + j];
                let coarse_eq = coarse.symbols[i] == coarse.symbols[j];
                if fine_eq != coarse_eq {
                    continue 'offsets;
                }
            }
            let fd = fine.dim_at(offset + i);
            let cd = coarse.dim_at(i);
            if fd.attr != cd.attr || cd.level < fd.level {
                continue 'offsets;
            }
        }
        return true;
    }
    false
}

/// The S-cube partial order: `coarse ≤ fine` iff `coarse` is a coarser
/// summarization of the same underlying sequences — same selection,
/// clustering and ordering; every global dimension of `coarse` appears in
/// `fine` at a level ≤ `coarse`'s; and the templates are related by
/// [`template_le`]. Slices and iceberg thresholds must agree (they select
/// data, they do not summarize it).
pub fn spec_le(coarse: &SCuboidSpec, fine: &SCuboidSpec) -> bool {
    if coarse.seq.filter != fine.seq.filter
        || coarse.seq.cluster_by != fine.seq.cluster_by
        || coarse.seq.sequence_by != fine.seq.sequence_by
        || coarse.restriction != fine.restriction
        || coarse.mpred != fine.mpred
        || coarse.agg != fine.agg
        || coarse.min_support != fine.min_support
        || !coarse.global_slice.is_empty()
        || !fine.global_slice.is_empty()
        || !coarse.pattern_slice.is_empty()
        || !fine.pattern_slice.is_empty()
    {
        return false;
    }
    for c in &coarse.seq.group_by {
        if !fine
            .seq
            .group_by
            .iter()
            .any(|f| f.attr == c.attr && f.level <= c.level)
        {
            return false;
        }
    }
    template_le(&coarse.template, &fine.template)
}

/// Enumerates the direct parents (one step coarser) of a spec in the
/// lattice: one DE-HEAD, one DE-TAIL, every legal single P-ROLL-UP, every
/// single global roll-up and every global-dimension removal.
pub fn parents(db: &solap_eventdb::EventDb, spec: &SCuboidSpec) -> Vec<SCuboidSpec> {
    let mut out = Vec::new();
    let mut push_op = |op: crate::ops::Op| {
        if let Ok(s) = crate::ops::apply(db, spec, &op) {
            out.push(s);
        }
    };
    push_op(crate::ops::Op::DeHead);
    push_op(crate::ops::Op::DeTail);
    for d in &spec.template.dims {
        push_op(crate::ops::Op::PRollUp {
            dim: d.name.clone(),
        });
    }
    for al in &spec.seq.group_by {
        push_op(crate::ops::Op::RollUp { attr: al.attr });
    }
    // Removing a global dimension entirely is also one step coarser.
    for i in 0..spec.seq.group_by.len() {
        let mut s = spec.clone();
        s.seq.group_by.remove(i);
        s.global_slice.clear();
        out.push(s);
    }
    out
}

/// The parents of `spec` that keep the template length — exactly the
/// ancestors the planner's roll-up reuse can merge from (shorter windows
/// change which pattern occurrences exist, so DE-HEAD/DE-TAIL parents must
/// re-match instead of merging; see `plan::reuse_safe`).
pub fn parents_same_length(db: &solap_eventdb::EventDb, spec: &SCuboidSpec) -> Vec<SCuboidSpec> {
    parents(db, spec)
        .into_iter()
        .filter(|p| p.template.m() == spec.template.m())
        .collect()
}

/// Enumerates direct children (one step finer) reachable with symbols drawn
/// from the template's existing dimensions, up to `max_len` symbols: every
/// single APPEND/PREPEND of an existing dimension and every legal single
/// P-DRILL-DOWN. (The full child set is infinite — new symbols can always
/// be invented; callers add those explicitly.)
pub fn children(
    db: &solap_eventdb::EventDb,
    spec: &SCuboidSpec,
    max_len: usize,
) -> Vec<SCuboidSpec> {
    let mut out = Vec::new();
    let mut push_op = |op: crate::ops::Op| {
        if let Ok(s) = crate::ops::apply(db, spec, &op) {
            out.push(s);
        }
    };
    if spec.template.m() < max_len {
        for d in &spec.template.dims {
            push_op(crate::ops::Op::Append {
                symbol: d.name.clone(),
                attr: d.attr,
                level: d.level,
            });
            push_op(crate::ops::Op::Prepend {
                symbol: d.name.clone(),
                attr: d.attr,
                level: d.level,
            });
        }
    }
    for d in &spec.template.dims {
        push_op(crate::ops::Op::PDrillDown {
            dim: d.name.clone(),
        });
    }
    for al in &spec.seq.group_by {
        push_op(crate::ops::Op::DrillDown { attr: al.attr });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{apply, Op};
    use solap_eventdb::{AttrLevel, ColumnType, EventDbBuilder, SortKey, Value};
    use solap_pattern::{PatternKind, PatternTemplate};

    fn db() -> solap_eventdb::EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .build()
            .unwrap();
        db.push_row(&[Value::Int(0), Value::from("Pentagon")])
            .unwrap();
        db.set_base_level_name(1, "station");
        db.attach_str_level(1, "district", |_| "D10".into())
            .unwrap();
        db
    }

    fn template(syms: &[&str], levels: &[usize]) -> PatternTemplate {
        let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
        for (i, &s) in syms.iter().enumerate() {
            if !bindings.iter().any(|(n, _, _)| *n == s) {
                bindings.push((s, 1, levels[i]));
            }
        }
        PatternTemplate::new(PatternKind::Substring, syms, &bindings).unwrap()
    }

    fn spec(syms: &[&str], levels: &[usize]) -> SCuboidSpec {
        SCuboidSpec::new(
            template(syms, levels),
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 0,
                ascending: true,
            }],
        )
    }

    #[test]
    fn template_order_window_and_levels() {
        let fine = template(&["X", "Y", "Y", "X"], &[0, 0, 0, 0]);
        // (Y, Y) is the middle window.
        assert!(template_le(&template(&["A", "A"], &[0, 0]), &fine));
        // (X, Y) is the head window.
        assert!(template_le(&template(&["A", "B"], &[0, 0]), &fine));
        // Same structure at a coarser level is ≤.
        assert!(template_le(
            &template(&["X", "Y", "Y", "X"], &[1, 1, 1, 1]),
            &fine
        ));
        // A finer level is not ≤ a coarser one.
        assert!(!template_le(
            &fine,
            &template(&["X", "Y", "Y", "X"], &[1, 1, 1, 1])
        ));
        // Wrong equality structure: (A, B) does not match the (Y, Y) slot
        // exclusively — but it matches offset 0 (X,Y); (A,A,B) matches
        // nothing in (X,Y,Y,X)… offset 1 is (Y,Y,X): A=A matches Y=Y, B=X —
        // it IS a window. Use a genuinely absent structure:
        assert!(!template_le(&template(&["A", "B", "A"], &[0, 0, 0]), &fine));
        // Longer than fine is never ≤.
        assert!(!template_le(
            &template(&["A", "B", "C", "D", "E"], &[0; 5]),
            &fine
        ));
    }

    #[test]
    fn ops_move_up_and_down_the_lattice() {
        let db = db();
        let s = spec(&["X", "Y"], &[0, 0]);
        // Every parent is ≥ the spec.
        for p in parents(&db, &s) {
            assert!(spec_le(&p, &s), "parent must be coarser: {p:?}");
        }
        // Every child is ≤ … i.e. the spec is coarser than the child.
        for c in children(&db, &s, 4) {
            assert!(spec_le(&s, &c), "child must be finer: {c:?}");
        }
    }

    #[test]
    fn order_is_reflexive_and_transitive() {
        let db = db();
        let s0 = spec(&["X", "Y"], &[0, 0]);
        assert!(spec_le(&s0, &s0));
        let s1 = apply(
            &db,
            &s0,
            &Op::Append {
                symbol: "Y".into(),
                attr: 1,
                level: 0,
            },
        )
        .unwrap();
        let s2 = apply(
            &db,
            &s1,
            &Op::Append {
                symbol: "X".into(),
                attr: 1,
                level: 0,
            },
        )
        .unwrap();
        assert!(spec_le(&s0, &s1) && spec_le(&s1, &s2) && spec_le(&s0, &s2));
        // Antisymmetry on this chain: the finer is not ≤ the coarser.
        assert!(!spec_le(&s1, &s0));
        assert!(!spec_le(&s2, &s1));
    }

    #[test]
    fn global_dims_participate() {
        let mut fine = spec(&["X", "Y"], &[0, 0]);
        fine.seq.group_by = vec![AttrLevel::new(1, 0)];
        let mut coarse = fine.clone();
        coarse.seq.group_by = vec![AttrLevel::new(1, 1)];
        assert!(spec_le(&coarse, &fine));
        assert!(!spec_le(&fine, &coarse));
        let mut no_dims = fine.clone();
        no_dims.seq.group_by.clear();
        assert!(spec_le(&no_dims, &fine));
    }

    #[test]
    fn sliced_specs_are_incomparable() {
        let db = db();
        let s = spec(&["X", "Y"], &[0, 0]);
        let sliced = apply(
            &db,
            &s,
            &Op::SlicePattern {
                dim: "X".into(),
                value: 0,
            },
        )
        .unwrap();
        assert!(!spec_le(&s, &sliced));
        assert!(!spec_le(&sliced, &s));
    }

    #[test]
    fn children_respect_length_budget() {
        let db = db();
        let s = spec(&["X", "Y"], &[0, 0]);
        let with_growth = children(&db, &s, 4);
        assert!(with_growth.iter().any(|c| c.template.m() == 3));
        let capped = children(&db, &s, 2);
        assert!(capped.iter().all(|c| c.template.m() <= 2));
    }
}
