//! The S-OLAP Engine (Figure 6): wires together the sequence cache, the
//! index store, the cuboid repository and the two construction strategies.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use solap_eventdb::metrics::{self, Counter, QueryProfile, QueryRecorder};
use solap_eventdb::seqcache::SequenceCache;
use solap_eventdb::trace::{self, TraceValue};
use solap_eventdb::{
    fail_point, panic_message, CancelToken, Error, EventDb, EventLog, FsyncPolicy, Pred,
    QueryGovernor, RecoveryReport, Result, RowId, Sequence, SequenceGroups, Sid, Value,
};
use solap_index::{IndexKey, IndexStore, SetBackend};
use solap_pattern::PatternKind;

use crate::incremental;

use crate::cb::{counter_based_governed, counter_based_parallel_governed, CounterMode};
use crate::cuboid::SCuboid;
use crate::iceberg::apply_min_support;
use crate::ii::IiExecutor;
use crate::ops::{self, Op};
use crate::plan::{
    self, CostModel, PlanAlternative, PlanChoice, PlanInputs, PlanReport, Planner, QueryPlan,
};
use crate::repo::{CuboidRepo, RetentionPolicy};
use crate::spec::SCuboidSpec;
use crate::stats::{ExecStats, ScanMeter};

/// Which S-cuboid construction approach to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// The counter-based approach of §4.2.1 (always rescans).
    CounterBased,
    /// The inverted-index approach of §4.2.2.
    InvertedIndex,
    /// Inverted indices, except for long subsequence templates whose index
    /// enumeration would be combinatorial (`m > 3` subsequences fall back
    /// to counters).
    #[default]
    Auto,
}

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Construction strategy.
    pub strategy: Strategy,
    /// Sid-set encoding for inverted lists. [`SetBackend::Auto`] (the
    /// default, overridable via `SOLAP_INDEX`) picks per list by density:
    /// bitmaps above 1-in-8, block-compressed when sparse but non-tiny,
    /// plain lists otherwise.
    pub backend: SetBackend,
    /// Counter layout for the counter-based path.
    pub counter_mode: CounterMode,
    /// Whether the cuboid repository answers repeated queries.
    pub use_cuboid_repo: bool,
    /// Worker threads for parallel construction — both counter scans and
    /// inverted-index base builds (1 = sequential).
    pub threads: usize,
    /// Per-query deadline; a query past it aborts with
    /// [`Error::ResourceExhausted`] within one governor check interval.
    pub timeout: Option<Duration>,
    /// Per-query cuboid-cell budget (a proxy for result memory); the first
    /// cell past the budget aborts the query.
    pub budget_cells: Option<u64>,
    /// Cooperative cancellation: call [`CancelToken::cancel`] from any
    /// thread to abort in-flight and future queries until
    /// [`CancelToken::reset`].
    pub cancel: CancelToken,
    /// Whether [`Strategy::Auto`] uses the cost-based planner (CB vs II vs
    /// ancestor reuse, costed by the engine's calibrated [`CostModel`]).
    /// When `false`, `Auto` falls back to the legacy fixed heuristic
    /// (subsequences with `m > 3` → CB, everything else → II). Defaults to
    /// the `SOLAP_PLAN` environment variable (`off`/`0`/`false` disable).
    pub plan: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            strategy: Strategy::Auto,
            backend: backend_from_env(),
            counter_mode: CounterMode::Auto,
            use_cuboid_repo: true,
            threads: threads_from_env(),
            timeout: timeout_from_env(),
            budget_cells: budget_from_env(),
            cancel: CancelToken::new(),
            plan: plan_from_env(),
        }
    }
}

/// Default inverted-list encoding: the `SOLAP_INDEX` environment variable
/// (`list` | `bitmap` | `compressed` | `auto`) when set to a valid
/// spelling, otherwise per-list density auto-selection.
fn backend_from_env() -> SetBackend {
    std::env::var("SOLAP_INDEX")
        .ok()
        .and_then(|v| SetBackend::parse(&v))
        .unwrap_or(SetBackend::Auto)
}

/// Default worker count: the `SOLAP_THREADS` environment variable when set
/// (CI runs the whole suite at 1 and 8), otherwise 1.
fn threads_from_env() -> usize {
    std::env::var("SOLAP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// Default deadline: the `SOLAP_TIMEOUT_MS` environment variable when set
/// to a positive integer, otherwise no deadline.
fn timeout_from_env() -> Option<Duration> {
    std::env::var("SOLAP_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// Default cell budget: the `SOLAP_BUDGET_CELLS` environment variable when
/// set to a positive integer, otherwise no budget.
fn budget_from_env() -> Option<u64> {
    std::env::var("SOLAP_BUDGET_CELLS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&c| c > 0)
}

/// Default planner switch: on unless the `SOLAP_PLAN` environment variable
/// is `off`, `0` or `false`.
fn plan_from_env() -> bool {
    !matches!(
        std::env::var("SOLAP_PLAN")
            .ok()
            .map(|v| v.trim().to_ascii_lowercase())
            .as_deref(),
        Some("off" | "0" | "false")
    )
}

/// The result of one query: the cuboid plus execution statistics and the
/// per-query observability profile.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The computed (possibly cached) S-cuboid.
    pub cuboid: Arc<SCuboid>,
    /// What it cost.
    pub stats: ExecStats,
    /// Per-stage counters and timings (always present; detailed counters
    /// require profiling to be enabled, see [`metrics::enabled`]).
    pub profile: QueryProfile,
}

/// Configures and constructs an [`Engine`] — the one supported way to
/// build an engine with non-default settings.
///
/// ```ignore
/// let engine = Engine::builder(db)
///     .strategy(Strategy::InvertedIndex)
///     .threads(8)
///     .timeout(Duration::from_secs(5))
///     .budget_cells(1_000_000)
///     .cache_capacity(64, 256 << 20)
///     .build();
/// ```
///
/// # Mutating a built engine
///
/// Two escape hatches remain on [`Engine`], and both interact with the
/// engine's caches through the **database version**:
///
/// * [`Engine::config_mut`] adjusts per-query execution knobs (strategy,
///   threads, limits) between queries. It never touches cached data:
///   sequence groups, stored indices and repository cuboids are keyed by
///   `(fingerprint, db.version())`, not by configuration, so entries
///   built under one strategy are still correct — and still served —
///   under another. Concurrent shared use should prefer per-session
///   overrides ([`Engine::execute_configured`]) over mutating the
///   engine-wide defaults.
/// * [`Engine::db_mut`] mutates the event database. Every mutation bumps
///   [`EventDb::version`], which transparently invalidates all three
///   caches at their next lookup (stale entries age out of the LRUs);
///   no explicit cache flush exists or is needed.
///
/// Cache capacities, by contrast, are fixed at construction time — they
/// size shared structures, so they are builder-only and have no
/// `config_mut` equivalent.
#[derive(Debug)]
pub struct EngineBuilder {
    db: EventDb,
    config: EngineConfig,
    seq_cache: (usize, usize),
    index_store: (usize, usize),
    cuboid_repo: (usize, usize),
    retention_policy: RetentionPolicy,
    model_path: Option<PathBuf>,
    log: Option<EventLog>,
    recovery: Option<RecoveryReport>,
}

impl EngineBuilder {
    fn new(db: EventDb) -> Self {
        EngineBuilder {
            db,
            config: EngineConfig::default(),
            seq_cache: (64, 256 << 20),
            index_store: (256, 512 << 20),
            cuboid_repo: (128, 256 << 20),
            retention_policy: RetentionPolicy::from_env(),
            model_path: None,
            log: None,
            recovery: None,
        }
    }

    /// Durable ingestion: opens (or creates) the segmented event log in
    /// `dir`, replays every durable event into the database, and arms the
    /// engine's store path ([`Engine::append_events`]) to write-ahead-log
    /// each batch before acknowledging it. The fsync policy comes from
    /// `SOLAP_FSYNC` (`always` | `batch` | `off`, default `batch`).
    ///
    /// What recovery did (replayed events, adopted segments, truncated
    /// torn tail) is reported by [`Engine::recovery_report`].
    pub fn durable(self, dir: impl AsRef<Path>) -> Result<Self> {
        self.durable_with_policy(dir, FsyncPolicy::from_env())
    }

    /// [`EngineBuilder::durable`] with an explicit [`FsyncPolicy`].
    pub fn durable_with_policy(
        mut self,
        dir: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> Result<Self> {
        self.model_path = Some(dir.as_ref().join("cost_model.tsv"));
        let (log, rows, report) = EventLog::open(dir.as_ref(), policy)?;
        self.adopt_log(log, rows, report)
    }

    /// [`EngineBuilder::durable`] with an explicit policy and WAL rotation
    /// threshold (tests and benches use small segments to exercise
    /// rotation through the engine path).
    pub fn durable_with_options(
        mut self,
        dir: impl AsRef<Path>,
        policy: FsyncPolicy,
        segment_bytes: u64,
    ) -> Result<Self> {
        self.model_path = Some(dir.as_ref().join("cost_model.tsv"));
        let (log, rows, report) =
            EventLog::open_with_segment_bytes(dir.as_ref(), policy, segment_bytes)?;
        self.adopt_log(log, rows, report)
    }

    fn adopt_log(
        mut self,
        log: EventLog,
        rows: Vec<Vec<Value>>,
        report: RecoveryReport,
    ) -> Result<Self> {
        for row in &rows {
            self.db.push_row(row)?;
        }
        self.log = Some(log);
        self.recovery = Some(report);
        Ok(self)
    }

    /// Construction strategy (CB, II or auto).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Sid-set encoding for inverted lists.
    pub fn backend(mut self, backend: SetBackend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Counter layout for the counter-based path.
    pub fn counter_mode(mut self, mode: CounterMode) -> Self {
        self.config.counter_mode = mode;
        self
    }

    /// Worker threads for parallel construction (values below 1 clamp
    /// to 1 = sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Per-query deadline (`None` = no deadline).
    pub fn timeout(mut self, timeout: impl Into<Option<Duration>>) -> Self {
        self.config.timeout = timeout.into();
        self
    }

    /// Per-query cuboid-cell budget (`None` = unbounded).
    pub fn budget_cells(mut self, cells: impl Into<Option<u64>>) -> Self {
        self.config.budget_cells = cells.into();
        self
    }

    /// The engine-wide cooperative cancellation token.
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.config.cancel = cancel;
        self
    }

    /// Whether the cuboid repository answers repeated queries.
    pub fn use_cuboid_repo(mut self, on: bool) -> Self {
        self.config.use_cuboid_repo = on;
        self
    }

    /// Sizes all three shared caches (sequence cache, index store, cuboid
    /// repository) to `entries` entries / `max_bytes` payload bytes each.
    /// Use the per-cache setters for asymmetric layouts.
    pub fn cache_capacity(mut self, entries: usize, max_bytes: usize) -> Self {
        self.seq_cache = (entries, max_bytes);
        self.index_store = (entries, max_bytes);
        self.cuboid_repo = (entries, max_bytes);
        self
    }

    /// Sizes the sequence cache only.
    pub fn seq_cache_capacity(mut self, entries: usize, max_bytes: usize) -> Self {
        self.seq_cache = (entries, max_bytes);
        self
    }

    /// Sizes the index store only.
    pub fn index_store_capacity(mut self, entries: usize, max_bytes: usize) -> Self {
        self.index_store = (entries, max_bytes);
        self
    }

    /// Sizes the cuboid repository only.
    pub fn cuboid_repo_capacity(mut self, entries: usize, max_bytes: usize) -> Self {
        self.cuboid_repo = (entries, max_bytes);
        self
    }

    /// Which cuboids the repository sacrifices when over budget (defaults
    /// to `SOLAP_REPO_POLICY`, falling back to benefit-per-byte).
    pub fn retention_policy(mut self, policy: RetentionPolicy) -> Self {
        self.retention_policy = policy;
        self
    }

    /// Whether [`Strategy::Auto`] uses the cost-based planner.
    pub fn plan(mut self, on: bool) -> Self {
        self.config.plan = on;
        self
    }

    /// Replaces the whole configuration at once (the builder's setters
    /// then refine it). Bench matrices that already hold an
    /// [`EngineConfig`] use this instead of poking fields.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Constructs the engine.
    pub fn build(self) -> Engine {
        // Arm any SOLAP_FAILPOINTS-configured sites: the fail_point!
        // fast path never touches the registry, so the env seeding must
        // be forced by a process entry point — engine construction is
        // the one every surface goes through.
        solap_eventdb::failpoint::init();
        parking_lot::witness_init();
        // Durable engines resume their calibrated unit costs; everything
        // else starts at the seeds.
        let cost_model = self
            .model_path
            .as_deref()
            .map(CostModel::load_from)
            .unwrap_or_default();
        Engine {
            db: RwLock::ranked(parking_lot::rank::ENGINE_DB, "engine.db", self.db),
            log: Mutex::ranked(parking_lot::rank::ENGINE_LOG, "engine.log", self.log),
            recovery: self.recovery,
            config: self.config,
            seq_cache: SequenceCache::new(self.seq_cache.0, self.seq_cache.1),
            index_store: IndexStore::new(self.index_store.0, self.index_store.1),
            cuboid_repo: CuboidRepo::new(
                self.cuboid_repo.0,
                self.cuboid_repo.1,
                self.retention_policy,
            ),
            live: Mutex::ranked(parking_lot::rank::ENGINE_LIVE, "engine.live", Vec::new()),
            cost_model,
            model_path: self.model_path,
        }
    }
}

/// A shared read guard over the engine's event database. Derefs to
/// [`EventDb`]; queries hold one for their whole execution, appends take
/// the write side briefly.
pub type DbGuard<'a> = RwLockReadGuard<'a, EventDb>;

/// How many recently executed specs the engine remembers for incremental
/// cache maintenance on the store path.
const LIVE_SPECS_CAP: usize = 32;

/// What one acknowledged [`Engine::append_events`] batch did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreReport {
    /// Events appended.
    pub appended: usize,
    /// Database version after the append.
    pub version: u64,
    /// Whether the batch was committed to the write-ahead log (per the
    /// fsync policy) before it was applied or acknowledged.
    pub durable: bool,
    /// Cached sequence-group sets carried forward incrementally (§6).
    pub groups_extended: usize,
    /// Stored inverted indices carried forward incrementally (§6).
    pub indexes_extended: usize,
    /// Cached sequence-group sets abandoned because the batch touched an
    /// existing cluster ([`Error::ClusterInvalidated`]) or the extension
    /// failed — the next query rebuilds them from scratch.
    pub rebuild_fallbacks: usize,
}

/// The S-OLAP engine.
pub struct Engine {
    db: RwLock<EventDb>,
    /// The durable event log, when built with [`EngineBuilder::durable`].
    /// Doubles as the ingest lock: appends hold it end to end, so WAL
    /// order always equals database order.
    log: Mutex<Option<EventLog>>,
    recovery: Option<RecoveryReport>,
    config: EngineConfig,
    seq_cache: SequenceCache,
    index_store: IndexStore,
    cuboid_repo: CuboidRepo,
    /// Recently executed specs (MRU last), the candidates for incremental
    /// cache maintenance when events are appended.
    live: Mutex<Vec<SCuboidSpec>>,
    /// Calibrated unit costs driving [`Strategy::Auto`] planning.
    cost_model: CostModel,
    /// Where [`Engine::sync`] persists the cost model (durable engines).
    model_path: Option<PathBuf>,
}

impl Engine {
    /// Creates an engine with default configuration.
    pub fn new(db: EventDb) -> Self {
        Engine::builder(db).build()
    }

    /// Starts configuring an engine — see [`EngineBuilder`].
    pub fn builder(db: EventDb) -> EngineBuilder {
        EngineBuilder::new(db)
    }

    /// Creates an engine with explicit configuration and default cache
    /// capacities (equivalent to `Engine::builder(db).config(config).build()`).
    pub fn with_config(db: EventDb, config: EngineConfig) -> Self {
        Engine::builder(db).config(config).build()
    }

    /// The event database (shared read guard; appends wait until every
    /// outstanding guard drops).
    pub fn db(&self) -> DbGuard<'_> {
        self.db.read()
    }

    /// Mutable access for loading and schema/hierarchy work. Mutations
    /// bump the database version, which transparently invalidates the
    /// sequence cache, index store keys and cuboid repository entries.
    ///
    /// Requires exclusive engine access and bypasses the write-ahead log —
    /// shared serving uses [`Engine::append_events`] instead, which works
    /// through `&self` and (on durable engines) commits to the WAL first.
    pub fn db_mut(&mut self) -> &mut EventDb {
        self.db.get_mut()
    }

    /// What recovery did when the engine was built with
    /// [`EngineBuilder::durable`] (`None` on non-durable engines).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Whether appends are write-ahead logged before acknowledgement.
    pub fn is_durable(&self) -> bool {
        self.log.lock().is_some()
    }

    /// Forces an fsync of the active WAL regardless of policy (no-op on
    /// non-durable engines). Orderly-shutdown hook for `SOLAP_FSYNC=off`.
    /// Also persists the calibrated cost model (best-effort — planning
    /// falls back to the seed constants on the next open if it is lost).
    pub fn sync(&self) -> Result<()> {
        if let Some(path) = &self.model_path {
            let _ = self.cost_model.save_to(path);
        }
        match self.log.lock().as_mut() {
            Some(log) => log.sync(),
            None => Ok(()),
        }
    }

    /// Appends a batch of events under the engine defaults — see
    /// [`Engine::append_events_configured`].
    pub fn append_events(&self, rows: &[Vec<Value>]) -> Result<StoreReport> {
        self.append_events_configured(rows, &self.config)
    }

    /// Appends a batch of events through `&self` — the serving-path write
    /// API behind the query language's `STORE` statement.
    ///
    /// The batch is validated against the schema first, then (on durable
    /// engines) committed to the write-ahead log — group commit, fsynced
    /// per the [`FsyncPolicy`] — and only then applied to the in-memory
    /// database, so a WAL-committed batch can never fail to apply and an
    /// acknowledged batch is durable. Appends are serialised (WAL order
    /// equals database order); concurrent queries keep reading the
    /// pre-append snapshot until the brief write-lock window.
    ///
    /// After the append, cached derivations of recently executed specs are
    /// carried forward incrementally (§6 "Incremental Update") where the
    /// invariants allow; a batch that lands in an existing cluster trips
    /// [`Error::ClusterInvalidated`] internally and falls back to
    /// rebuild-on-next-query (counted in the report, never an error).
    /// Runs under the configured [`QueryGovernor`] limits and the same
    /// panic isolation as [`Engine::execute`].
    pub fn append_events_configured(
        &self,
        rows: &[Vec<Value>],
        config: &EngineConfig,
    ) -> Result<StoreReport> {
        self.isolated(|| self.append_inner(rows, config))
    }

    fn append_inner(&self, rows: &[Vec<Value>], config: &EngineConfig) -> Result<StoreReport> {
        let gov = Engine::governor(config);
        let recorder = if metrics::enabled() {
            Some(QueryRecorder::default())
        } else {
            None
        };
        // One ingest at a time: the log mutex serialises writers end to
        // end, so WAL order always equals database order.
        let mut log = self.log.lock();
        {
            let db = self.db.read();
            for row in rows {
                gov.tick()?;
                db.validate_row(row)?;
            }
        }
        // Durability point: the validated batch is WAL-committed (and
        // fsynced per policy) before it is applied or acknowledged.
        let mut durable = false;
        let (mut wal_fsyncs, mut wal_rotations) = (0, 0);
        if let Some(log) = log.as_mut() {
            let (f0, r0) = (log.fsyncs(), log.rotations());
            log.append_batch(rows)?;
            wal_fsyncs = log.fsyncs() - f0;
            wal_rotations = log.rotations() - r0;
            durable = true;
        }
        // Apply. A validated row cannot fail to push, so the database
        // never falls behind a WAL-committed batch.
        let (old_version, from_row, new_version);
        {
            let mut db = self.db.write();
            old_version = db.version();
            from_row = db.len() as RowId;
            for row in rows {
                db.push_row(row)?;
            }
            new_version = db.version();
        }
        let mut report = StoreReport {
            appended: rows.len(),
            version: new_version,
            durable,
            ..Default::default()
        };
        if new_version != old_version {
            self.maintain_caches(old_version, new_version, from_row, &mut report);
        }
        if let Some(rec) = &recorder {
            if !rows.is_empty() {
                rec.add(Counter::StoreEvents, rows.len() as u64);
                rec.add(Counter::WalFsyncs, wal_fsyncs);
                rec.add(Counter::WalRotations, wal_rotations);
                rec.add(Counter::IngestGroupsExtended, report.groups_extended as u64);
                rec.add(
                    Counter::IngestIndexesExtended,
                    report.indexes_extended as u64,
                );
                rec.add(
                    Counter::IngestRebuildFallbacks,
                    report.rebuild_fallbacks as u64,
                );
                rec.add(Counter::GovernorTicks, gov.events_ticked());
                metrics::global().record(&QueryProfile::from_recorder(rec));
            }
        }
        Ok(report)
    }

    /// Carries cached derivations of recently executed specs forward to
    /// the post-append database version where the incremental-update
    /// invariants (§6) allow. Best-effort by design: correctness comes
    /// from version-keyed cache lookups, so a skipped spec simply
    /// rebuilds on its next query — this only decides *rebuild vs
    /// extend*, never *right vs wrong*.
    fn maintain_caches(
        &self,
        old_version: u64,
        new_version: u64,
        from_row: RowId,
        report: &mut StoreReport,
    ) {
        let live: Vec<SCuboidSpec> = self.live.lock().clone();
        if live.is_empty() {
            return;
        }
        let db = self.db.read();
        for spec in &live {
            let Some(old_groups) = self.seq_cache.cached(&spec.seq, old_version) else {
                continue;
            };
            match incremental::extend_groups(&db, &spec.seq, &old_groups, from_row) {
                Ok((extended, new_sids)) => {
                    let renumbered = new_sids
                        .iter()
                        .any(|&sid| (sid as usize) < old_groups.total_sequences);
                    let extended = Arc::new(extended);
                    self.seq_cache
                        .put(&spec.seq, new_version, Arc::clone(&extended));
                    report.groups_extended += 1;
                    if renumbered {
                        // Existing sids shifted: the stored per-group
                        // indices no longer line up, so let them age out
                        // of the LRU and rebuild on demand.
                        continue;
                    }
                    report.indexes_extended += self.carry_indexes_forward(
                        &db,
                        spec,
                        &extended,
                        &new_sids,
                        old_version,
                        new_version,
                    );
                }
                // ClusterInvalidated (the batch extends a cluster that
                // already has sequences) or any other extension failure:
                // drop the carry-forward, rebuild on the next query.
                Err(_) => report.rebuild_fallbacks += 1,
            }
        }
    }

    /// Extends the stored base inverted indices of `spec` (one per
    /// sequence group, at `slice_fp = 0`) with the newly appended
    /// sequences and re-keys them under the post-append fingerprint.
    /// Returns how many indices were carried forward.
    fn carry_indexes_forward(
        &self,
        db: &EventDb,
        spec: &SCuboidSpec,
        extended: &SequenceGroups,
        new_sids: &[Sid],
        old_version: u64,
        new_version: u64,
    ) -> usize {
        let old_fp = groups_fp(spec, old_version);
        let new_fp = groups_fp(spec, new_version);
        let sig = spec.template.signature();
        let fresh_sids: HashSet<Sid> = new_sids.iter().copied().collect();
        let mut carried = 0;
        for (group_idx, group) in extended.groups.iter().enumerate() {
            let key = IndexKey {
                groups_fp: old_fp,
                group_idx,
                sig: sig.clone(),
                slice_fp: 0,
            };
            let Some(base) = self.index_store.get(&key) else {
                continue;
            };
            let fresh: Vec<Sequence> = group
                .sequences
                .iter()
                .filter(|s| fresh_sids.contains(&s.sid))
                .cloned()
                .collect();
            let next = if fresh.is_empty() {
                base
            } else {
                match incremental::extend_index(db, &base, &fresh, &spec.template) {
                    Ok(ix) => Arc::new(ix),
                    Err(_) => continue,
                }
            };
            self.index_store.insert(
                IndexKey {
                    groups_fp: new_fp,
                    group_idx,
                    sig: sig.clone(),
                    slice_fp: 0,
                },
                next,
            );
            carried += 1;
        }
        carried
    }

    /// Remembers `spec` as recently executed (MRU, bounded) so the store
    /// path knows which cached derivations are worth carrying forward.
    fn remember_live_spec(&self, spec: &SCuboidSpec) {
        let mut live = self.live.lock();
        let fp = spec.fingerprint();
        if let Some(i) = live.iter().position(|s| s.fingerprint() == fp) {
            let s = live.remove(i);
            live.push(s);
            return;
        }
        live.push(spec.clone());
        if live.len() > LIVE_SPECS_CAP {
            live.remove(0);
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable configuration (e.g. switching strategy between queries).
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// The index store (exposed for inspection and experiments).
    pub fn index_store(&self) -> &IndexStore {
        &self.index_store
    }

    /// The cuboid repository (exposed for inspection).
    pub fn cuboid_repo(&self) -> &CuboidRepo {
        &self.cuboid_repo
    }

    /// The sequence cache (exposed for inspection).
    pub fn sequence_cache(&self) -> &SequenceCache {
        &self.seq_cache
    }

    /// The calibrated cost model driving [`Strategy::Auto`] planning.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// The sequence groups for a spec (cached).
    pub fn sequence_groups(&self, spec: &SCuboidSpec) -> Result<Arc<SequenceGroups>> {
        let db = self.db.read();
        self.seq_cache.get_or_build(&db, &spec.seq)
    }

    fn effective_strategy(config: &EngineConfig, spec: &SCuboidSpec) -> Strategy {
        match config.strategy {
            Strategy::Auto => {
                if spec.template.kind == PatternKind::Subsequence && spec.template.m() > 3 {
                    Strategy::CounterBased
                } else {
                    Strategy::InvertedIndex
                }
            }
            s => s,
        }
    }

    /// Whether the cost-based planner decides `Strategy::Auto` queries
    /// under this configuration (vs the legacy fixed heuristic).
    fn planner_active(config: &EngineConfig) -> bool {
        config.plan && config.strategy == Strategy::Auto
    }

    /// Whether a base inverted index usable for `spec` is already stored —
    /// the full template signature or any cached prefix of length ≥ 2, at
    /// `slice 0` of the first sequence group. Non-touching probes only.
    fn base_index_cached(&self, db: &EventDb, spec: &SCuboidSpec) -> bool {
        let gfp = groups_fp(spec, db.version());
        let sig = spec.template.signature();
        (2..=spec.template.m()).rev().any(|k| {
            self.index_store.contains(&IndexKey {
                groups_fp: gfp,
                group_idx: 0,
                sig: sig.prefix(k),
                slice_fp: 0,
            })
        })
    }

    /// Assembles [`PlanInputs`] from the engine's caches and runs the
    /// planner. Every cache probe is non-touching (`peek`/`contains`), so
    /// EXPLAIN shares this path without perturbing recency or hit rates;
    /// `execute` re-fetches the chosen ancestor through [`CuboidRepo::get`]
    /// so actual reuse does count as repository demand.
    ///
    /// Reuse candidates come from the recently-executed spec list (MRU
    /// first) plus, for lattice-coarsening operations, the pre-operation
    /// spec — the ideal one-step-finer roll-up source.
    fn plan_query(
        &self,
        db: &EventDb,
        spec: &SCuboidSpec,
        sequences: Option<u64>,
        hint: Option<(&SCuboidSpec, &Op)>,
        config: &EngineConfig,
    ) -> (usize, Vec<QueryPlan>) {
        let mut candidates: Vec<SCuboidSpec> = Vec::new();
        if let Some((prev, op)) = hint {
            if op.coarsens() {
                candidates.push((*prev).clone());
            }
        }
        {
            let live = self.live.lock();
            candidates.extend(live.iter().rev().cloned());
        }
        let version = db.version();
        let ancestors = if Engine::planner_active(config) && config.use_cuboid_repo {
            Planner::reuse_candidates(spec, candidates.into_iter(), |c| {
                self.cuboid_repo
                    .peek(c.fingerprint(), version)
                    .map(|cuboid| cuboid.len())
            })
        } else {
            Vec::new()
        };
        let inputs = PlanInputs {
            spec,
            events: db.len() as u64,
            sequences,
            base_index_cached: self.base_index_cached(db, spec),
            ancestors,
        };
        Planner::new(&self.cost_model).plan(&inputs)
    }

    /// Feeds one executed query's actuals back into the cost model —
    /// the EWMA calibration loop. Only planner-decided executions
    /// calibrate: fixed-strategy runs measure a strategy the model was
    /// not allowed to avoid, which would skew it.
    fn observe_execution(
        &self,
        spec: &SCuboidSpec,
        stats: &ExecStats,
        events: u64,
        sequences: u64,
    ) {
        let elapsed_ns = stats.elapsed.as_nanos() as u64;
        match stats.strategy {
            "CB" => self.cost_model.observe_cb(elapsed_ns, events),
            "II" => {
                // Attribute the elapsed time to whichever phase dominated.
                // `indices_built` alone cannot discriminate: the ladder
                // builds (and caches) a derived index per rung, so it is
                // non-zero for join-dominated queries too. A *base* build
                // is the one that scans (nearly) every sequence.
                let base_build_dominated = stats.indices_built > 0
                    && stats.sequences_scanned.saturating_mul(2) >= sequences;
                if base_build_dominated {
                    self.cost_model.observe_ii_build(elapsed_ns, events);
                } else {
                    self.cost_model
                        .observe_ii_join(elapsed_ns, CostModel::predicted_joins(spec, sequences));
                }
            }
            _ => {}
        }
    }

    /// Executes an S-cuboid query.
    ///
    /// The query runs under the configured [`QueryGovernor`] limits and
    /// inside a panic-isolation boundary: a panic anywhere in the query
    /// path becomes [`Error::Internal`] and the engine stays usable (the
    /// shared caches only ever insert fully-built entries).
    pub fn execute(&self, spec: &SCuboidSpec) -> Result<QueryOutput> {
        self.isolated(|| self.execute_with(spec, None, &self.config))
    }

    /// [`Engine::execute`] under a caller-supplied configuration instead
    /// of the engine-wide defaults.
    ///
    /// This is the embedding API for concurrent serving: the engine and
    /// its caches are shared (`&self`), while strategy, worker count,
    /// limits and — crucially — the [`CancelToken`] are per caller, so a
    /// session can cancel its own in-flight query (e.g. on client
    /// disconnect) without disturbing anyone else's. Cache capacities are
    /// engine-wide and unaffected; cached entries are configuration-
    /// independent (see [`EngineBuilder`] docs).
    pub fn execute_configured(
        &self,
        spec: &SCuboidSpec,
        config: &EngineConfig,
    ) -> Result<QueryOutput> {
        self.isolated(|| self.execute_with(spec, None, config))
    }

    /// [`Engine::execute_op`] under a caller-supplied configuration — see
    /// [`Engine::execute_configured`].
    pub fn execute_op_configured(
        &self,
        prev: &SCuboidSpec,
        op: &Op,
        config: &EngineConfig,
    ) -> Result<(SCuboidSpec, QueryOutput)> {
        self.isolated(|| {
            let new_spec = ops::apply(&self.db.read(), prev, op)?;
            let out = self.execute_with(&new_spec, Some((prev, op)), config)?;
            Ok((new_spec, out))
        })
    }

    /// Applies an operation to `prev` and executes the transformed query,
    /// exploiting the operation-specific inverted-index fast paths
    /// (§4.2.2): P-ROLL-UP merges lists, P-DRILL-DOWN refines them, and
    /// PREPEND joins on the left. Returns the new spec and its result.
    ///
    /// Runs under the same governance and panic isolation as
    /// [`Engine::execute`].
    pub fn execute_op(&self, prev: &SCuboidSpec, op: &Op) -> Result<(SCuboidSpec, QueryOutput)> {
        self.isolated(|| {
            let new_spec = ops::apply(&self.db.read(), prev, op)?;
            let out = self.execute_with(&new_spec, Some((prev, op)), &self.config)?;
            Ok((new_spec, out))
        })
    }

    /// Converts a panic escaping `f` into [`Error::Internal`]. The caches
    /// the closure touches insert on success only and their locks recover
    /// from poisoning, so unwinding cannot leave partial state behind.
    fn isolated<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<T> {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => r,
            Err(p) => Err(Error::Internal(format!(
                "query panicked: {}",
                panic_message(p.as_ref())
            ))),
        }
    }

    /// A fresh governor for one query, from the given configuration.
    fn governor(config: &EngineConfig) -> QueryGovernor {
        QueryGovernor::new(
            config.timeout,
            config.budget_cells,
            Some(config.cancel.clone()),
        )
    }

    /// Builds the execution plan for `spec` without running it — the
    /// query-language `EXPLAIN` surface. Returns a structured
    /// [`PlanReport`] (the dispatch layer owns text/JSON rendering). The
    /// report is deterministic for a given engine state, which the golden
    /// tests pin, and building it never executes, populates caches or
    /// touches recency — only non-touching probes.
    pub fn explain(&self, spec: &SCuboidSpec) -> Result<PlanReport> {
        self.explain_configured(spec, &self.config)
    }

    /// [`Engine::explain`] under a caller-supplied configuration — see
    /// [`Engine::execute_configured`].
    pub fn explain_configured(
        &self,
        spec: &SCuboidSpec,
        config: &EngineConfig,
    ) -> Result<PlanReport> {
        let db = self.db.read();
        spec.validate(&db)?;
        let planner_on = Engine::planner_active(config);
        // Never build sequence groups for EXPLAIN — use them only if a
        // prior execution already cached them.
        let sequences = self
            .seq_cache
            .cached(&spec.seq, db.version())
            .map(|g| g.total_sequences as u64);
        let (cost_idx, plans) = self.plan_query(&db, spec, sequences, None, config);
        let chosen_idx = if planner_on {
            cost_idx
        } else {
            // Alternatives are still enumerated and costed for visibility,
            // but the choice is forced: CB is plan 0, II is plan 1.
            match Engine::effective_strategy(config, spec) {
                Strategy::CounterBased => 0,
                _ => 1,
            }
        };
        let strategy = plans
            .get(chosen_idx)
            .map(|p| p.label().to_string())
            .unwrap_or_else(|| "II".to_string());
        let (mode, why) = if planner_on {
            (
                "cost",
                format!(
                    "cost model: {strategy} predicted cheapest of {} alternatives",
                    plans.len()
                ),
            )
        } else if config.strategy == Strategy::Auto {
            (
                "heuristic",
                if strategy == "CB" {
                    "auto: subsequence template with m > 3".to_string()
                } else {
                    "auto: indexable template".to_string()
                },
            )
        } else {
            ("configured", "configured".to_string())
        };
        let alternatives = plans
            .iter()
            .enumerate()
            .map(|(i, p)| PlanAlternative {
                label: p.label().to_string(),
                detail: p.why.clone(),
                cost: p.cost,
                chosen: i == chosen_idx,
            })
            .collect();
        Ok(PlanReport {
            query: spec.render(&db),
            mode,
            strategy,
            why,
            backend: format!("{:?}", config.backend),
            threads: config.threads,
            events: db.len() as u64,
            filter: if spec.seq.filter == Pred::True {
                "TRUE".to_string()
            } else {
                spec.seq.filter.render(&db)
            },
            sort_keys: spec.seq.sequence_by.len(),
            group_attrs: spec.seq.group_by.len(),
            template_kind: format!("{:?}", spec.template.kind),
            m: spec.template.m(),
            min_support: spec.min_support,
            use_cuboid_repo: config.use_cuboid_repo,
            alternatives,
        })
    }

    /// Governed + instrumented query execution: wraps [`Engine::execute_inner`]
    /// with structured trace events and process-wide metrics accounting.
    fn execute_with(
        &self,
        spec: &SCuboidSpec,
        hint: Option<(&SCuboidSpec, &Op)>,
        config: &EngineConfig,
    ) -> Result<QueryOutput> {
        if trace::enabled() {
            trace::emit(
                "query_start",
                &[
                    ("fingerprint", TraceValue::from(spec.fingerprint())),
                    ("m", TraceValue::from(spec.template.m() as u64)),
                    (
                        "kind",
                        TraceValue::from(format!("{:?}", spec.template.kind)),
                    ),
                ],
            );
        }
        let result = self.execute_inner(spec, hint, config);
        match &result {
            Ok(out) => {
                metrics::global().record(&out.profile);
                if trace::enabled() {
                    trace::emit(
                        "query_end",
                        &[
                            ("fingerprint", TraceValue::from(spec.fingerprint())),
                            ("ok", TraceValue::from(true)),
                            ("strategy", TraceValue::from(out.stats.strategy)),
                            ("cells", TraceValue::from(out.cuboid.len() as u64)),
                            (
                                "sequences_scanned",
                                TraceValue::from(out.stats.sequences_scanned),
                            ),
                            ("elapsed_ns", TraceValue::from(out.profile.elapsed_nanos)),
                        ],
                    );
                }
            }
            Err(err) => {
                metrics::global().record_failure();
                if trace::enabled() {
                    trace::emit(
                        "query_end",
                        &[
                            ("fingerprint", TraceValue::from(spec.fingerprint())),
                            ("ok", TraceValue::from(false)),
                            ("error", TraceValue::from(err.to_string())),
                        ],
                    );
                }
            }
        }
        result
    }

    fn execute_inner(
        &self,
        spec: &SCuboidSpec,
        hint: Option<(&SCuboidSpec, &Op)>,
        config: &EngineConfig,
    ) -> Result<QueryOutput> {
        // One read guard for the whole query: the snapshot it sees is the
        // database as of query start; appends wait in the brief write-lock
        // window until the guard drops.
        let db = self.db.read();
        spec.validate(&db)?;
        self.remember_live_spec(spec);
        let start = Instant::now();
        let fp = spec.fingerprint();
        if config.use_cuboid_repo {
            if let Some(cached) = self.cuboid_repo.get(fp, db.version()) {
                let mut profile = if metrics::enabled() {
                    let rec = QueryRecorder::default();
                    rec.add(Counter::CuboidCacheHits, 1);
                    rec.add(Counter::CellsMaterialized, cached.len() as u64);
                    QueryProfile::from_recorder(&rec)
                } else {
                    QueryProfile::default()
                };
                profile.strategy = "cache";
                profile.elapsed_nanos = start.elapsed().as_nanos() as u64;
                return Ok(QueryOutput {
                    cuboid: cached,
                    stats: ExecStats {
                        strategy: "cache",
                        cuboid_cache_hit: true,
                        elapsed: start.elapsed(),
                        ..Default::default()
                    },
                    profile,
                });
            }
        }
        let recorder = if metrics::enabled() {
            Some(Arc::new(QueryRecorder::default()))
        } else {
            None
        };
        let mut gov = Engine::governor(config);
        if let Some(rec) = &recorder {
            gov = gov.with_recorder(Arc::clone(rec));
        }
        let groups = self.seq_cache.get_or_build_governed(&db, &spec.seq, &gov)?;
        let mut meter = ScanMeter::new();
        let mut stats = ExecStats::default();
        // Cost-based planning: enumerate and cost the alternatives, then
        // execute the predicted-cheapest one. When the planner is off
        // (fixed strategy, or `plan: false`) the legacy heuristic decides
        // and no costing happens.
        let planner_on = Engine::planner_active(config);
        let planned = planner_on
            .then(|| self.plan_query(&db, spec, Some(groups.total_sequences as u64), hint, config));
        if let (Some(rec), Some((_, plans))) = (&recorder, &planned) {
            rec.add(Counter::PlanAlternativesConsidered, plans.len() as u64);
        }
        let choice = planned
            .as_ref()
            .and_then(|(idx, plans)| plans.get(*idx))
            .map(|p| p.choice.clone())
            .unwrap_or_else(|| match Engine::effective_strategy(config, spec) {
                Strategy::CounterBased => PlanChoice::CounterBased,
                _ => PlanChoice::InvertedIndex,
            });
        // Ancestor reuse executes first: on any soundness refusal (source
        // evicted between costing and now, mapping failure) fall back to the
        // cheaper of the two always-available scan strategies. Governor
        // exhaustion and cancellation propagate — they are not refusals.
        let mut reuse_cells = 0u64;
        let mut rolled: Option<SCuboid> = None;
        if let PlanChoice::AncestorRollUp { source } = &choice {
            if let Some(src) = self.cuboid_repo.get(source.fingerprint(), db.version()) {
                match plan::roll_up_cuboid(&db, source, &src, spec, &gov) {
                    Ok((cuboid, merged)) => {
                        stats.strategy = "reuse";
                        reuse_cells = merged;
                        if let Some(rec) = &recorder {
                            rec.add(Counter::PlanAncestorReuses, 1);
                            rec.add(Counter::PlanCellsMerged, merged);
                        }
                        rolled = Some(cuboid);
                    }
                    Err(e) if matches!(e.code(), "resource_exhausted" | "cancelled") => {
                        return Err(e);
                    }
                    Err(_) => {}
                }
            }
        }
        let use_cb = match (&rolled, &choice) {
            (Some(_), _) => false,
            (None, PlanChoice::CounterBased) => true,
            (None, PlanChoice::InvertedIndex) => false,
            (None, PlanChoice::AncestorRollUp { .. }) => {
                // Fallback after a reuse refusal: cheaper of CB (plan 0)
                // and II (plan 1) under the same cost model.
                planned
                    .as_ref()
                    .map(|(_, plans)| match (plans.first(), plans.get(1)) {
                        (Some(cb), Some(ii)) => cb.cost.total_nanos <= ii.cost.total_nanos,
                        _ => false,
                    })
                    .unwrap_or(false)
            }
        };
        let mut cuboid = if let Some(cuboid) = rolled {
            cuboid
        } else if use_cb {
            stats.strategy = "CB";
            if config.threads > 1 {
                counter_based_parallel_governed(
                    &db,
                    &groups,
                    spec,
                    config.threads,
                    &mut meter,
                    &gov,
                )?
            } else {
                counter_based_governed(&db, &groups, spec, config.counter_mode, &mut meter, &gov)?
            }
        } else {
            stats.strategy = "II";
            let ex = IiExecutor::new(
                &db,
                &groups,
                groups_fp(spec, db.version()),
                &self.index_store,
                config.backend,
            )
            .with_threads(config.threads)
            .with_governor(&gov);
            if let Some((prev, op)) = hint {
                // Preparation only touches the index store; on any
                // refusal the generic QUERYINDICES path takes over.
                match op {
                    Op::PRollUp { .. } => {
                        ex.prepare_p_roll_up(&prev.template, &spec.template, &mut stats)?;
                    }
                    Op::PDrillDown { .. } => {
                        ex.prepare_p_drill_down(&prev.template, spec, &mut meter, &mut stats)?;
                    }
                    Op::Prepend { .. } => {
                        ex.prepare_prepend(&prev.template, &spec.template, &mut meter, &mut stats)?;
                    }
                    _ => {}
                }
            }
            ex.execute(spec, &mut meter, &mut stats)?
        };
        if let Some(ms) = spec.min_support {
            apply_min_support(&mut cuboid, ms);
        }
        stats.sequences_scanned = meter.count();
        stats.elapsed = start.elapsed();
        if planner_on {
            // Calibrate the cost model from what actually ran — only for
            // planner-decided executions, so fixed-strategy runs don't teach
            // the model about a strategy it was not allowed to avoid.
            if stats.strategy == "reuse" {
                self.cost_model
                    .observe_reuse(stats.elapsed.as_nanos() as u64, reuse_cells);
            } else {
                self.observe_execution(
                    spec,
                    &stats,
                    db.len() as u64,
                    groups.total_sequences as u64,
                );
            }
        }
        let mut profile = if let Some(rec) = &recorder {
            rec.add(Counter::SequencesScanned, meter.count());
            rec.add(Counter::CellsMaterialized, cuboid.len() as u64);
            rec.add(Counter::IndicesBuilt, stats.indices_built);
            rec.add(Counter::IndexBytesBuilt, stats.index_bytes_built as u64);
            rec.add(Counter::IndexJoins, stats.index_joins);
            rec.add(Counter::GovernorTicks, gov.events_ticked());
            rec.add(Counter::CellsCharged, gov.cells_consumed());
            QueryProfile::from_recorder(rec)
        } else {
            QueryProfile::default()
        };
        profile.strategy = stats.strategy;
        profile.elapsed_nanos = stats.elapsed.as_nanos() as u64;
        let cuboid = Arc::new(cuboid);
        if config.use_cuboid_repo {
            fail_point!("engine.insert");
            self.cuboid_repo.insert(
                fp,
                db.version(),
                Arc::clone(&cuboid),
                stats.elapsed.as_nanos() as u64,
            );
        }
        Ok(QueryOutput {
            cuboid,
            stats,
            profile,
        })
    }

    /// Precomputes the generic size-`m` inverted index at `(attr, level)`
    /// for every sequence group of `spec` — the offline precomputation the
    /// experiments of §5.2 perform before timing queries. Returns the bytes
    /// built.
    pub fn precompute_index(
        &self,
        spec: &SCuboidSpec,
        attr: solap_eventdb::AttrId,
        level: usize,
        m: usize,
    ) -> Result<usize> {
        let db = self.db.read();
        let groups = self.seq_cache.get_or_build(&db, &spec.seq)?;
        let ex = IiExecutor::new(
            &db,
            &groups,
            groups_fp(spec, db.version()),
            &self.index_store,
            self.config.backend,
        )
        .with_threads(self.config.threads);
        ex.precompute_generic(attr, level, m, spec.template.kind)
    }
}

/// Fingerprint identifying the sequence groups of `spec` at a database
/// version — the index store's `groups_fp` key component. A free function
/// (not a method) so the store path can compute pre- and post-append
/// fingerprints without touching the lock.
fn groups_fp(spec: &SCuboidSpec, db_version: u64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    spec.seq.fingerprint().hash(&mut h);
    db_version.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{AttrLevel, CmpOp, ColumnType, EventDbBuilder, SortKey, Value};
    use solap_pattern::{CellRestriction, MatchPred, PatternTemplate};

    fn fig8_engine(config: EngineConfig) -> Engine {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .build()
            .unwrap();
        let seqs: [&[&str]; 4] = [
            &[
                "Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon",
            ],
            &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
            &["Clarendon", "Pentagon"],
            &["Wheaton", "Clarendon", "Deanwood", "Wheaton"],
        ];
        for (sid, stations) in seqs.iter().enumerate() {
            for (i, st) in stations.iter().enumerate() {
                let action = if i % 2 == 0 { "in" } else { "out" };
                db.push_row(&[
                    Value::Int(sid as i64),
                    Value::Int(i as i64),
                    Value::from(*st),
                    Value::from(action),
                ])
                .unwrap();
            }
        }
        db.set_base_level_name(2, "station");
        db.attach_str_level(2, "district", |s| {
            if s == "Pentagon" || s == "Clarendon" {
                "D10".into()
            } else {
                "D20".into()
            }
        })
        .unwrap();
        Engine::with_config(db, config)
    }

    fn q3(db: &EventDb) -> SCuboidSpec {
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 2, 0), ("Y", 2, 0)],
        )
        .unwrap();
        let action = db.attr("action").unwrap();
        SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 1,
                ascending: true,
            }],
        )
        .with_mpred(
            MatchPred::cmp(0, action, CmpOp::Eq, "in").and(MatchPred::cmp(
                1,
                action,
                CmpOp::Eq,
                "out",
            )),
        )
    }

    #[test]
    fn strategies_agree() {
        let cb = fig8_engine(EngineConfig {
            strategy: Strategy::CounterBased,
            ..Default::default()
        });
        let ii = fig8_engine(EngineConfig {
            strategy: Strategy::InvertedIndex,
            ..Default::default()
        });
        // Bind the specs first: the `db()` guard must drop before
        // `execute` takes its own read of the same lock.
        let qa = q3(&cb.db());
        let qb = q3(&ii.db());
        let a = cb.execute(&qa).unwrap();
        let b = ii.execute(&qb).unwrap();
        assert_eq!(a.cuboid.cells, b.cuboid.cells);
        assert_eq!(a.stats.strategy, "CB");
        assert_eq!(b.stats.strategy, "II");
        assert_eq!(a.stats.sequences_scanned, 4);
    }

    #[test]
    fn cuboid_repo_answers_repeats() {
        let e = fig8_engine(EngineConfig::default());
        let spec = q3(&e.db());
        let first = e.execute(&spec).unwrap();
        assert!(!first.stats.cuboid_cache_hit);
        let second = e.execute(&spec).unwrap();
        assert!(second.stats.cuboid_cache_hit);
        assert_eq!(second.stats.sequences_scanned, 0);
        assert!(Arc::ptr_eq(&first.cuboid, &second.cuboid));
    }

    #[test]
    fn append_then_de_tail_hits_cache() {
        let e = fig8_engine(EngineConfig::default());
        let qa = q3(&e.db());
        e.execute(&qa).unwrap();
        let (qb, _) = e
            .execute_op(
                &qa,
                &Op::Append {
                    symbol: "Y".into(),
                    attr: 2,
                    level: 0,
                },
            )
            .unwrap();
        let (qc, out) = e.execute_op(&qb, &Op::DeTail).unwrap();
        assert_eq!(qc.fingerprint(), qa.fingerprint());
        assert!(
            out.stats.cuboid_cache_hit,
            "DE-TAIL restores Qa from the repository"
        );
    }

    #[test]
    fn execute_op_p_roll_up_uses_merge() {
        let e = fig8_engine(EngineConfig::default());
        let mut qa = q3(&e.db());
        qa.mpred = MatchPred::True; // merge + pure count ⇒ zero scans
        e.execute(&qa).unwrap();
        let (_, out) = e.execute_op(&qa, &Op::PRollUp { dim: "Y".into() }).unwrap();
        assert_eq!(out.stats.sequences_scanned, 0);
        // Cross-check against a CB engine at the coarse level.
        let cb = fig8_engine(EngineConfig {
            strategy: Strategy::CounterBased,
            ..Default::default()
        });
        let coarse = ops::apply(&cb.db(), &qa, &Op::PRollUp { dim: "Y".into() }).unwrap();
        let expect = cb.execute(&coarse).unwrap();
        assert_eq!(out.cuboid.cells, expect.cuboid.cells);
    }

    #[test]
    fn auto_uses_cb_for_long_subsequences() {
        let e = fig8_engine(EngineConfig::default());
        let mut spec = q3(&e.db());
        spec.template = PatternTemplate::new(
            PatternKind::Subsequence,
            &["A", "B", "C", "D"],
            &[("A", 2, 0), ("B", 2, 0), ("C", 2, 0), ("D", 2, 0)],
        )
        .unwrap();
        spec.mpred = MatchPred::True;
        let out = e.execute(&spec).unwrap();
        assert_eq!(out.stats.strategy, "CB");
    }

    #[test]
    fn min_support_filters_cells() {
        let e = fig8_engine(EngineConfig::default());
        let spec = q3(&e.db()).with_min_support(2);
        let out = e.execute(&spec).unwrap();
        // Figure 12: only (Pentagon,Wheaton) and (Wheaton,Pentagon) have 2.
        assert_eq!(out.cuboid.len(), 2);
    }

    #[test]
    fn mutation_invalidates_repo() {
        let mut e = fig8_engine(EngineConfig::default());
        let spec = q3(&e.db());
        e.execute(&spec).unwrap();
        e.db_mut()
            .push_row(&[
                Value::Int(9),
                Value::Int(0),
                Value::from("Wheaton"),
                Value::from("in"),
            ])
            .unwrap();
        let out = e.execute(&spec).unwrap();
        assert!(!out.stats.cuboid_cache_hit);
    }

    #[test]
    fn precompute_reduces_first_query_builds() {
        let e = fig8_engine(EngineConfig::default());
        let spec = q3(&e.db());
        let bytes = e.precompute_index(&spec, 2, 0, 2).unwrap();
        assert!(bytes > 0);
        let out = e.execute(&spec).unwrap();
        assert_eq!(out.stats.indices_built, 0);
    }

    #[test]
    fn profile_accompanies_every_execute() {
        let e = fig8_engine(EngineConfig::default());
        let spec = q3(&e.db());
        let first = e.execute(&spec).unwrap();
        assert_eq!(first.profile.strategy, "II");
        assert!(first.profile.elapsed_nanos > 0);
        if first.profile.detailed {
            assert_eq!(
                first
                    .profile
                    .counter(solap_eventdb::Counter::CellsMaterialized),
                first.cuboid.len() as u64
            );
            assert_eq!(
                first
                    .profile
                    .counter(solap_eventdb::Counter::SequencesScanned),
                first.stats.sequences_scanned
            );
            assert_eq!(
                first.profile.counter(solap_eventdb::Counter::EventsScanned),
                e.db().len() as u64
            );
        }
        let second = e.execute(&spec).unwrap();
        assert_eq!(second.profile.strategy, "cache");
        if second.profile.detailed {
            assert_eq!(
                second
                    .profile
                    .counter(solap_eventdb::Counter::CuboidCacheHits),
                1
            );
            assert_eq!(
                second
                    .profile
                    .counter(solap_eventdb::Counter::EventsScanned),
                0,
                "cache hits scan nothing"
            );
        }
    }

    #[test]
    fn explain_is_deterministic_and_does_not_execute() {
        let e = fig8_engine(EngineConfig::default());
        let spec = q3(&e.db());
        let a = e.explain(&spec).unwrap();
        let b = e.explain(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.strategy, "II");
        assert_eq!(a.mode, "cost");
        assert!(a.query.contains("SELECT"));
        assert!(a.alternatives.len() >= 2, "{:?}", a.alternatives);
        assert_eq!(a.chosen().unwrap().label, "II");
        // The chosen alternative is the predicted-cheapest one.
        let min = a
            .alternatives
            .iter()
            .map(|alt| alt.cost.total_nanos)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(a.chosen().unwrap().cost.total_nanos, min);
        // EXPLAIN must not populate the cuboid repository.
        let out = e.execute(&spec).unwrap();
        assert!(!out.stats.cuboid_cache_hit);
    }

    #[test]
    fn explain_reports_cb_fallback_for_long_subsequences() {
        let e = fig8_engine(EngineConfig::default());
        let mut spec = q3(&e.db());
        spec.template = PatternTemplate::new(
            PatternKind::Subsequence,
            &["A", "B", "C", "D"],
            &[("A", 2, 0), ("B", 2, 0), ("C", 2, 0), ("D", 2, 0)],
        )
        .unwrap();
        spec.mpred = MatchPred::True;
        let plan = e.explain(&spec).unwrap();
        assert_eq!(plan.strategy, "CB");
        assert_eq!(plan.mode, "cost");
        assert!(plan.alternatives.len() >= 2);
        // With the planner disabled, the legacy heuristic reaches the same
        // answer and says why in its own words.
        let legacy = e
            .explain_configured(
                &spec,
                &EngineConfig {
                    plan: false,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
        assert_eq!(legacy.strategy, "CB");
        assert_eq!(legacy.mode, "heuristic");
        assert_eq!(legacy.why, "auto: subsequence template with m > 3");
    }

    /// The Figure-8 sequences replicated `reps` times under fresh sids:
    /// big enough that per-unit work dominates the cost estimates, small
    /// enough to stay fast. Distinct attribute values don't grow, so
    /// cuboids stay tiny and ancestor reuse is the predicted-cheapest plan.
    fn big_engine(reps: i64, config: EngineConfig) -> Engine {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .build()
            .unwrap();
        let seqs: [&[&str]; 4] = [
            &[
                "Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon",
            ],
            &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
            &["Clarendon", "Pentagon"],
            &["Wheaton", "Clarendon", "Deanwood", "Wheaton"],
        ];
        for rep in 0..reps {
            for (sid, stations) in seqs.iter().enumerate() {
                for (i, st) in stations.iter().enumerate() {
                    let action = if i % 2 == 0 { "in" } else { "out" };
                    db.push_row(&[
                        Value::Int(rep * 4 + sid as i64),
                        Value::Int(i as i64),
                        Value::from(*st),
                        Value::from(action),
                    ])
                    .unwrap();
                }
            }
        }
        db.set_base_level_name(2, "station");
        db.attach_str_level(2, "district", |s| {
            if s == "Pentagon" || s == "Clarendon" {
                "D10".into()
            } else {
                "D20".into()
            }
        })
        .unwrap();
        Engine::with_config(db, config)
    }

    #[test]
    fn planner_rolls_up_materialized_ancestor() {
        let e = big_engine(50, EngineConfig::default());
        let mut qa = q3(&e.db());
        qa.mpred = MatchPred::True;
        qa.seq.group_by = vec![AttrLevel::new(2, 0)];
        e.execute(&qa).unwrap();
        // Global ROLL-UP (station → district): the materialized Qa cuboid
        // is a finer ancestor the planner can merge instead of re-scanning
        // 800 events or re-building indices.
        let (coarse, out) = e.execute_op(&qa, &Op::RollUp { attr: 2 }).unwrap();
        assert_eq!(out.stats.strategy, "reuse", "{:?}", out.stats);
        assert_eq!(out.stats.sequences_scanned, 0);
        if out.profile.detailed {
            assert_eq!(
                out.profile
                    .counter(solap_eventdb::Counter::PlanAncestorReuses),
                1
            );
            assert!(out.profile.counter(solap_eventdb::Counter::PlanCellsMerged) > 0);
        }
        // Bit-identical to computing the coarse cuboid from scratch.
        let cb = big_engine(
            50,
            EngineConfig {
                strategy: Strategy::CounterBased,
                ..Default::default()
            },
        );
        let expect = cb.execute(&coarse).unwrap();
        assert_eq!(out.cuboid.cells, expect.cuboid.cells);
    }

    #[test]
    fn explain_lists_ancestor_reuse_for_p_roll_up() {
        let e = big_engine(50, EngineConfig::default());
        let mut qa = q3(&e.db());
        qa.mpred = MatchPred::True;
        qa = qa.with_restriction(CellRestriction::AllMatchedGo);
        e.execute(&qa).unwrap();
        let coarse = {
            let db = e.db();
            ops::apply(&db, &qa, &Op::PRollUp { dim: "Y".into() }).unwrap()
        };
        let report = e.explain(&coarse).unwrap();
        assert_eq!(report.mode, "cost");
        assert!(
            report.alternatives.len() >= 3,
            "CB, II and ancestor reuse must all be costed: {:?}",
            report.alternatives
        );
        assert_eq!(report.chosen().unwrap().label, "reuse");
        // EXPLAIN costed a repository candidate but must not have touched
        // its recency or produced a cuboid.
        let out = e.execute(&coarse).unwrap();
        assert!(!out.stats.cuboid_cache_hit);
        assert_eq!(out.stats.strategy, "reuse");
    }

    #[test]
    fn cost_model_survives_restart() {
        let dir = std::env::temp_dir().join(format!("solap-engine-model-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let schema = || {
            EventDbBuilder::new()
                .dimension("sid", ColumnType::Int)
                .dimension("pos", ColumnType::Int)
                .dimension("location", ColumnType::Str)
                .dimension("action", ColumnType::Str)
                .build()
                .unwrap()
        };
        {
            let e = Engine::builder(schema())
                .durable_with_policy(&dir, solap_eventdb::FsyncPolicy::Always)
                .unwrap()
                .build();
            // A 1µs-per-event CB sample: seed 120 blends to 296.
            e.cost_model().observe_cb(10_000_000, 10_000);
            e.sync().unwrap();
        }
        let e = Engine::builder(schema())
            .durable_with_policy(&dir, solap_eventdb::FsyncPolicy::Always)
            .unwrap()
            .build();
        let (name, unit) = e.cost_model().units()[0];
        assert_eq!(name, "cb_scan_ns");
        assert!((unit - 296.0).abs() < 1e-9, "{unit}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn planner_off_keeps_legacy_heuristic() {
        let e = fig8_engine(EngineConfig {
            plan: false,
            ..Default::default()
        });
        let mut spec = q3(&e.db());
        spec.template = PatternTemplate::new(
            PatternKind::Subsequence,
            &["A", "B", "C", "D"],
            &[("A", 2, 0), ("B", 2, 0), ("C", 2, 0), ("D", 2, 0)],
        )
        .unwrap();
        spec.mpred = MatchPred::True;
        let out = e.execute(&spec).unwrap();
        assert_eq!(out.stats.strategy, "CB");
        if out.profile.detailed {
            assert_eq!(
                out.profile
                    .counter(solap_eventdb::Counter::PlanAlternativesConsidered),
                0,
                "no costing when the planner is off"
            );
        }
        let on = fig8_engine(EngineConfig::default());
        let q = q3(&on.db());
        let out = on.execute(&q).unwrap();
        if out.profile.detailed {
            assert!(
                out.profile
                    .counter(solap_eventdb::Counter::PlanAlternativesConsidered)
                    >= 2
            );
        }
    }

    #[test]
    fn parallel_cb_config() {
        let e = fig8_engine(EngineConfig {
            strategy: Strategy::CounterBased,
            threads: 3,
            ..Default::default()
        });
        let ii = fig8_engine(EngineConfig::default());
        let qa = q3(&e.db());
        let qb = q3(&ii.db());
        let a = e.execute(&qa).unwrap();
        let b = ii.execute(&qb).unwrap();
        assert_eq!(a.cuboid.cells, b.cuboid.cells);
    }

    /// An event row in the Figure-8 schema: `(sid, pos, location, action)`
    /// with actions alternating in/out like the seed data.
    fn ev(sid: i64, pos: i64, station: &str) -> Vec<Value> {
        let action = if pos % 2 == 0 { "in" } else { "out" };
        vec![
            Value::Int(sid),
            Value::Int(pos),
            Value::from(station),
            Value::from(action),
        ]
    }

    #[test]
    fn append_new_cluster_extends_live_caches() {
        let e = fig8_engine(EngineConfig {
            strategy: Strategy::InvertedIndex,
            ..Default::default()
        });
        let spec = q3(&e.db());
        e.execute(&spec).unwrap(); // registers the live spec + caches
        let report = e
            .append_events(&[ev(9, 0, "Pentagon"), ev(9, 1, "Wheaton")])
            .unwrap();
        assert_eq!(report.appended, 2);
        assert!(!report.durable, "in-memory engine has no WAL");
        assert_eq!(report.groups_extended, 1, "cached groups carried forward");
        assert_eq!(report.rebuild_fallbacks, 0);
        assert!(report.indexes_extended >= 1, "base II carried forward");
        // The carried-forward caches must answer identically to a fresh
        // engine rebuilt over the same post-append data.
        let after = e.execute(&spec).unwrap();
        let fresh = Engine::with_config(
            e.db().clone(),
            EngineConfig {
                strategy: Strategy::InvertedIndex,
                ..Default::default()
            },
        );
        let expect = fresh.execute(&spec).unwrap();
        assert_eq!(after.cuboid.cells, expect.cuboid.cells);
    }

    #[test]
    fn append_into_existing_cluster_falls_back_to_rebuild() {
        let e = fig8_engine(EngineConfig::default());
        let spec = q3(&e.db());
        e.execute(&spec).unwrap();
        // Sid 0 already has sequences: extension trips ClusterInvalidated
        // and the engine abandons the carry-forward instead of corrupting
        // the cache.
        let report = e.append_events(&[ev(0, 99, "Glenmont")]).unwrap();
        assert_eq!(report.appended, 1);
        assert_eq!(report.groups_extended, 0);
        assert_eq!(report.rebuild_fallbacks, 1);
        let after = e.execute(&spec).unwrap();
        let fresh = Engine::new(e.db().clone());
        assert_eq!(
            after.cuboid.cells,
            fresh.execute(&spec).unwrap().cuboid.cells,
            "rebuild-on-demand must see the appended event"
        );
    }

    #[test]
    fn append_rejects_invalid_rows_atomically() {
        let e = fig8_engine(EngineConfig::default());
        // Two statements, not one tuple: each `db()` guard must drop
        // before the next read of the same lock.
        let len0 = e.db().len();
        let v0 = e.db().version();
        let bad = vec![Value::Int(1)]; // wrong arity
        let err = e.append_events(&[ev(5, 0, "Pentagon"), bad]).unwrap_err();
        assert_eq!(err.code(), "arity_mismatch");
        assert_eq!(e.db().len(), len0, "no partial batch applied");
        assert_eq!(e.db().version(), v0, "version untouched on rejection");
    }

    #[test]
    fn append_empty_batch_is_a_noop() {
        let e = fig8_engine(EngineConfig::default());
        let v0 = e.db().version();
        let report = e.append_events(&[]).unwrap();
        assert_eq!(report.appended, 0);
        assert_eq!(report.version, v0);
        assert_eq!(e.db().version(), v0);
    }

    #[test]
    fn durable_engine_persists_and_recovers() {
        let dir = std::env::temp_dir().join(format!("solap-engine-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let schema = || {
            EventDbBuilder::new()
                .dimension("sid", ColumnType::Int)
                .dimension("pos", ColumnType::Int)
                .dimension("location", ColumnType::Str)
                .dimension("action", ColumnType::Str)
                .build()
                .unwrap()
        };
        {
            let e = Engine::builder(schema())
                .durable_with_policy(&dir, solap_eventdb::FsyncPolicy::Always)
                .unwrap()
                .build();
            assert!(e.is_durable());
            assert_eq!(e.recovery_report().unwrap().wal_events, 0);
            let report = e
                .append_events(&[ev(1, 0, "Pentagon"), ev(1, 1, "Wheaton")])
                .unwrap();
            assert!(report.durable);
            e.sync().unwrap();
        }
        let e = Engine::builder(schema())
            .durable_with_policy(&dir, solap_eventdb::FsyncPolicy::Always)
            .unwrap()
            .build();
        assert_eq!(e.db().len(), 2, "acknowledged events survive reopen");
        assert_eq!(e.recovery_report().unwrap().wal_events, 2);
        let spec = q3(&e.db());
        let out = e.execute(&spec).unwrap();
        assert_eq!(out.stats.sequences_scanned, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
