//! The S-OLAP Engine (Figure 6): wires together the sequence cache, the
//! index store, the cuboid repository and the two construction strategies.

use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use solap_eventdb::metrics::{self, Counter, QueryProfile, QueryRecorder};
use solap_eventdb::seqcache::SequenceCache;
use solap_eventdb::trace::{self, TraceValue};
use solap_eventdb::{
    fail_point, panic_message, CancelToken, Error, EventDb, Pred, QueryGovernor, Result,
    SequenceGroups,
};
use solap_index::{IndexStore, SetBackend};
use solap_pattern::PatternKind;

use crate::cb::{counter_based_governed, counter_based_parallel_governed, CounterMode};
use crate::cuboid::SCuboid;
use crate::iceberg::apply_min_support;
use crate::ii::IiExecutor;
use crate::ops::{self, Op};
use crate::repo::CuboidRepo;
use crate::spec::SCuboidSpec;
use crate::stats::{ExecStats, ScanMeter};

/// Which S-cuboid construction approach to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// The counter-based approach of §4.2.1 (always rescans).
    CounterBased,
    /// The inverted-index approach of §4.2.2.
    InvertedIndex,
    /// Inverted indices, except for long subsequence templates whose index
    /// enumeration would be combinatorial (`m > 3` subsequences fall back
    /// to counters).
    #[default]
    Auto,
}

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Construction strategy.
    pub strategy: Strategy,
    /// Sid-set encoding for inverted lists. [`SetBackend::Auto`] (the
    /// default, overridable via `SOLAP_INDEX`) picks per list by density:
    /// bitmaps above 1-in-8, block-compressed when sparse but non-tiny,
    /// plain lists otherwise.
    pub backend: SetBackend,
    /// Counter layout for the counter-based path.
    pub counter_mode: CounterMode,
    /// Whether the cuboid repository answers repeated queries.
    pub use_cuboid_repo: bool,
    /// Worker threads for parallel construction — both counter scans and
    /// inverted-index base builds (1 = sequential).
    pub threads: usize,
    /// Per-query deadline; a query past it aborts with
    /// [`Error::ResourceExhausted`] within one governor check interval.
    pub timeout: Option<Duration>,
    /// Per-query cuboid-cell budget (a proxy for result memory); the first
    /// cell past the budget aborts the query.
    pub budget_cells: Option<u64>,
    /// Cooperative cancellation: call [`CancelToken::cancel`] from any
    /// thread to abort in-flight and future queries until
    /// [`CancelToken::reset`].
    pub cancel: CancelToken,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            strategy: Strategy::Auto,
            backend: backend_from_env(),
            counter_mode: CounterMode::Auto,
            use_cuboid_repo: true,
            threads: threads_from_env(),
            timeout: timeout_from_env(),
            budget_cells: budget_from_env(),
            cancel: CancelToken::new(),
        }
    }
}

/// Default inverted-list encoding: the `SOLAP_INDEX` environment variable
/// (`list` | `bitmap` | `compressed` | `auto`) when set to a valid
/// spelling, otherwise per-list density auto-selection.
fn backend_from_env() -> SetBackend {
    std::env::var("SOLAP_INDEX")
        .ok()
        .and_then(|v| SetBackend::parse(&v))
        .unwrap_or(SetBackend::Auto)
}

/// Default worker count: the `SOLAP_THREADS` environment variable when set
/// (CI runs the whole suite at 1 and 8), otherwise 1.
fn threads_from_env() -> usize {
    std::env::var("SOLAP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(1, |n| n.max(1))
}

/// Default deadline: the `SOLAP_TIMEOUT_MS` environment variable when set
/// to a positive integer, otherwise no deadline.
fn timeout_from_env() -> Option<Duration> {
    std::env::var("SOLAP_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// Default cell budget: the `SOLAP_BUDGET_CELLS` environment variable when
/// set to a positive integer, otherwise no budget.
fn budget_from_env() -> Option<u64> {
    std::env::var("SOLAP_BUDGET_CELLS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&c| c > 0)
}

/// The result of one query: the cuboid plus execution statistics and the
/// per-query observability profile.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The computed (possibly cached) S-cuboid.
    pub cuboid: Arc<SCuboid>,
    /// What it cost.
    pub stats: ExecStats,
    /// Per-stage counters and timings (always present; detailed counters
    /// require profiling to be enabled, see [`metrics::enabled`]).
    pub profile: QueryProfile,
}

/// Configures and constructs an [`Engine`] — the one supported way to
/// build an engine with non-default settings.
///
/// ```ignore
/// let engine = Engine::builder(db)
///     .strategy(Strategy::InvertedIndex)
///     .threads(8)
///     .timeout(Duration::from_secs(5))
///     .budget_cells(1_000_000)
///     .cache_capacity(64, 256 << 20)
///     .build();
/// ```
///
/// # Mutating a built engine
///
/// Two escape hatches remain on [`Engine`], and both interact with the
/// engine's caches through the **database version**:
///
/// * [`Engine::config_mut`] adjusts per-query execution knobs (strategy,
///   threads, limits) between queries. It never touches cached data:
///   sequence groups, stored indices and repository cuboids are keyed by
///   `(fingerprint, db.version())`, not by configuration, so entries
///   built under one strategy are still correct — and still served —
///   under another. Concurrent shared use should prefer per-session
///   overrides ([`Engine::execute_configured`]) over mutating the
///   engine-wide defaults.
/// * [`Engine::db_mut`] mutates the event database. Every mutation bumps
///   [`EventDb::version`], which transparently invalidates all three
///   caches at their next lookup (stale entries age out of the LRUs);
///   no explicit cache flush exists or is needed.
///
/// Cache capacities, by contrast, are fixed at construction time — they
/// size shared structures, so they are builder-only and have no
/// `config_mut` equivalent.
#[derive(Debug)]
pub struct EngineBuilder {
    db: EventDb,
    config: EngineConfig,
    seq_cache: (usize, usize),
    index_store: (usize, usize),
    cuboid_repo: (usize, usize),
}

impl EngineBuilder {
    fn new(db: EventDb) -> Self {
        EngineBuilder {
            db,
            config: EngineConfig::default(),
            seq_cache: (64, 256 << 20),
            index_store: (256, 512 << 20),
            cuboid_repo: (128, 256 << 20),
        }
    }

    /// Construction strategy (CB, II or auto).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Sid-set encoding for inverted lists.
    pub fn backend(mut self, backend: SetBackend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Counter layout for the counter-based path.
    pub fn counter_mode(mut self, mode: CounterMode) -> Self {
        self.config.counter_mode = mode;
        self
    }

    /// Worker threads for parallel construction (values below 1 clamp
    /// to 1 = sequential).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Per-query deadline (`None` = no deadline).
    pub fn timeout(mut self, timeout: impl Into<Option<Duration>>) -> Self {
        self.config.timeout = timeout.into();
        self
    }

    /// Per-query cuboid-cell budget (`None` = unbounded).
    pub fn budget_cells(mut self, cells: impl Into<Option<u64>>) -> Self {
        self.config.budget_cells = cells.into();
        self
    }

    /// The engine-wide cooperative cancellation token.
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.config.cancel = cancel;
        self
    }

    /// Whether the cuboid repository answers repeated queries.
    pub fn use_cuboid_repo(mut self, on: bool) -> Self {
        self.config.use_cuboid_repo = on;
        self
    }

    /// Sizes all three shared caches (sequence cache, index store, cuboid
    /// repository) to `entries` entries / `max_bytes` payload bytes each.
    /// Use the per-cache setters for asymmetric layouts.
    pub fn cache_capacity(mut self, entries: usize, max_bytes: usize) -> Self {
        self.seq_cache = (entries, max_bytes);
        self.index_store = (entries, max_bytes);
        self.cuboid_repo = (entries, max_bytes);
        self
    }

    /// Sizes the sequence cache only.
    pub fn seq_cache_capacity(mut self, entries: usize, max_bytes: usize) -> Self {
        self.seq_cache = (entries, max_bytes);
        self
    }

    /// Sizes the index store only.
    pub fn index_store_capacity(mut self, entries: usize, max_bytes: usize) -> Self {
        self.index_store = (entries, max_bytes);
        self
    }

    /// Sizes the cuboid repository only.
    pub fn cuboid_repo_capacity(mut self, entries: usize, max_bytes: usize) -> Self {
        self.cuboid_repo = (entries, max_bytes);
        self
    }

    /// Replaces the whole configuration at once (the builder's setters
    /// then refine it). Bench matrices that already hold an
    /// [`EngineConfig`] use this instead of poking fields.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Constructs the engine.
    pub fn build(self) -> Engine {
        // Arm any SOLAP_FAILPOINTS-configured sites: the fail_point!
        // fast path never touches the registry, so the env seeding must
        // be forced by a process entry point — engine construction is
        // the one every surface goes through.
        solap_eventdb::failpoint::init();
        Engine {
            db: self.db,
            config: self.config,
            seq_cache: SequenceCache::new(self.seq_cache.0, self.seq_cache.1),
            index_store: IndexStore::new(self.index_store.0, self.index_store.1),
            cuboid_repo: CuboidRepo::new(self.cuboid_repo.0, self.cuboid_repo.1),
        }
    }
}

/// The S-OLAP engine.
pub struct Engine {
    db: EventDb,
    config: EngineConfig,
    seq_cache: SequenceCache,
    index_store: IndexStore,
    cuboid_repo: CuboidRepo,
}

impl Engine {
    /// Creates an engine with default configuration.
    pub fn new(db: EventDb) -> Self {
        Engine::builder(db).build()
    }

    /// Starts configuring an engine — see [`EngineBuilder`].
    pub fn builder(db: EventDb) -> EngineBuilder {
        EngineBuilder::new(db)
    }

    /// Creates an engine with explicit configuration and default cache
    /// capacities (equivalent to `Engine::builder(db).config(config).build()`).
    pub fn with_config(db: EventDb, config: EngineConfig) -> Self {
        Engine::builder(db).config(config).build()
    }

    /// The event database.
    pub fn db(&self) -> &EventDb {
        &self.db
    }

    /// Mutable access for loading and incremental update. Mutations bump
    /// the database version, which transparently invalidates the sequence
    /// cache, index store keys and cuboid repository entries.
    pub fn db_mut(&mut self) -> &mut EventDb {
        &mut self.db
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable configuration (e.g. switching strategy between queries).
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// The index store (exposed for inspection and experiments).
    pub fn index_store(&self) -> &IndexStore {
        &self.index_store
    }

    /// The cuboid repository (exposed for inspection).
    pub fn cuboid_repo(&self) -> &CuboidRepo {
        &self.cuboid_repo
    }

    /// The sequence cache (exposed for inspection).
    pub fn sequence_cache(&self) -> &SequenceCache {
        &self.seq_cache
    }

    /// The sequence groups for a spec (cached).
    pub fn sequence_groups(&self, spec: &SCuboidSpec) -> Result<Arc<SequenceGroups>> {
        self.seq_cache.get_or_build(&self.db, &spec.seq)
    }

    fn groups_fp(&self, spec: &SCuboidSpec) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        spec.seq.fingerprint().hash(&mut h);
        self.db.version().hash(&mut h);
        h.finish()
    }

    fn effective_strategy(config: &EngineConfig, spec: &SCuboidSpec) -> Strategy {
        match config.strategy {
            Strategy::Auto => {
                if spec.template.kind == PatternKind::Subsequence && spec.template.m() > 3 {
                    Strategy::CounterBased
                } else {
                    Strategy::InvertedIndex
                }
            }
            s => s,
        }
    }

    /// Executes an S-cuboid query.
    ///
    /// The query runs under the configured [`QueryGovernor`] limits and
    /// inside a panic-isolation boundary: a panic anywhere in the query
    /// path becomes [`Error::Internal`] and the engine stays usable (the
    /// shared caches only ever insert fully-built entries).
    pub fn execute(&self, spec: &SCuboidSpec) -> Result<QueryOutput> {
        self.isolated(|| self.execute_with(spec, None, &self.config))
    }

    /// [`Engine::execute`] under a caller-supplied configuration instead
    /// of the engine-wide defaults.
    ///
    /// This is the embedding API for concurrent serving: the engine and
    /// its caches are shared (`&self`), while strategy, worker count,
    /// limits and — crucially — the [`CancelToken`] are per caller, so a
    /// session can cancel its own in-flight query (e.g. on client
    /// disconnect) without disturbing anyone else's. Cache capacities are
    /// engine-wide and unaffected; cached entries are configuration-
    /// independent (see [`EngineBuilder`] docs).
    pub fn execute_configured(
        &self,
        spec: &SCuboidSpec,
        config: &EngineConfig,
    ) -> Result<QueryOutput> {
        self.isolated(|| self.execute_with(spec, None, config))
    }

    /// [`Engine::execute_op`] under a caller-supplied configuration — see
    /// [`Engine::execute_configured`].
    pub fn execute_op_configured(
        &self,
        prev: &SCuboidSpec,
        op: &Op,
        config: &EngineConfig,
    ) -> Result<(SCuboidSpec, QueryOutput)> {
        self.isolated(|| {
            let new_spec = ops::apply(&self.db, prev, op)?;
            let out = self.execute_with(&new_spec, Some((prev, op)), config)?;
            Ok((new_spec, out))
        })
    }

    /// Applies an operation to `prev` and executes the transformed query,
    /// exploiting the operation-specific inverted-index fast paths
    /// (§4.2.2): P-ROLL-UP merges lists, P-DRILL-DOWN refines them, and
    /// PREPEND joins on the left. Returns the new spec and its result.
    ///
    /// Runs under the same governance and panic isolation as
    /// [`Engine::execute`].
    pub fn execute_op(&self, prev: &SCuboidSpec, op: &Op) -> Result<(SCuboidSpec, QueryOutput)> {
        self.isolated(|| {
            let new_spec = ops::apply(&self.db, prev, op)?;
            let out = self.execute_with(&new_spec, Some((prev, op)), &self.config)?;
            Ok((new_spec, out))
        })
    }

    /// Converts a panic escaping `f` into [`Error::Internal`]. The caches
    /// the closure touches insert on success only and their locks recover
    /// from poisoning, so unwinding cannot leave partial state behind.
    fn isolated<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<T> {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => r,
            Err(p) => Err(Error::Internal(format!(
                "query panicked: {}",
                panic_message(p.as_ref())
            ))),
        }
    }

    /// A fresh governor for one query, from the given configuration.
    fn governor(config: &EngineConfig) -> QueryGovernor {
        QueryGovernor::new(
            config.timeout,
            config.budget_cells,
            Some(config.cancel.clone()),
        )
    }

    /// Renders the execution plan for `spec` without running it — the
    /// query-language `EXPLAIN` surface. The output is deterministic for a
    /// given engine configuration and database, which the golden tests pin.
    pub fn explain(&self, spec: &SCuboidSpec) -> Result<String> {
        self.explain_configured(spec, &self.config)
    }

    /// [`Engine::explain`] under a caller-supplied configuration — see
    /// [`Engine::execute_configured`].
    pub fn explain_configured(&self, spec: &SCuboidSpec, config: &EngineConfig) -> Result<String> {
        spec.validate(&self.db)?;
        let strategy = Engine::effective_strategy(config, spec);
        let (name, why) = match (config.strategy, strategy) {
            (Strategy::Auto, Strategy::CounterBased) => {
                ("CB", "auto: subsequence template with m > 3")
            }
            (Strategy::Auto, _) => ("II", "auto: indexable template"),
            (_, Strategy::CounterBased) => ("CB", "configured"),
            (_, _) => ("II", "configured"),
        };
        let mut out = String::new();
        out.push_str("query:\n");
        for line in spec.render(&self.db).lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("plan:\n");
        out.push_str(&format!("  strategy: {name} ({why})\n"));
        out.push_str(&format!(
            "  backend: {:?}, threads: {}\n",
            config.backend, config.threads
        ));
        out.push_str(&format!(
            "  step 1-2 (select + cluster): scan {} events, filter {}\n",
            self.db.len(),
            if spec.seq.filter == Pred::True {
                "TRUE".to_string()
            } else {
                spec.seq.filter.render(&self.db)
            }
        ));
        out.push_str(&format!(
            "  step 3-4 (order + form groups): {} sort key(s), {} group attr(s)\n",
            spec.seq.sequence_by.len(),
            spec.seq.group_by.len()
        ));
        out.push_str(&format!(
            "  pattern: {:?} template, m = {}\n",
            spec.template.kind,
            spec.template.m()
        ));
        match strategy {
            Strategy::CounterBased => {
                out.push_str("  aggregate: counter-based scan of every group (§4.2.1)\n");
            }
            _ => {
                out.push_str(
                    "  aggregate: QUERYINDICES join ladder over inverted lists (§4.2.2)\n",
                );
            }
        }
        if let Some(ms) = spec.min_support {
            out.push_str(&format!("  iceberg: drop cells with COUNT < {ms}\n"));
        }
        out.push_str(&format!(
            "  caches: cuboid repo {}, sequence cache shared per (filter, cluster, order, group)\n",
            if config.use_cuboid_repo { "on" } else { "off" }
        ));
        Ok(out)
    }

    /// Governed + instrumented query execution: wraps [`Engine::execute_inner`]
    /// with structured trace events and process-wide metrics accounting.
    fn execute_with(
        &self,
        spec: &SCuboidSpec,
        hint: Option<(&SCuboidSpec, &Op)>,
        config: &EngineConfig,
    ) -> Result<QueryOutput> {
        if trace::enabled() {
            trace::emit(
                "query_start",
                &[
                    ("fingerprint", TraceValue::from(spec.fingerprint())),
                    ("m", TraceValue::from(spec.template.m() as u64)),
                    (
                        "kind",
                        TraceValue::from(format!("{:?}", spec.template.kind)),
                    ),
                ],
            );
        }
        let result = self.execute_inner(spec, hint, config);
        match &result {
            Ok(out) => {
                metrics::global().record(&out.profile);
                if trace::enabled() {
                    trace::emit(
                        "query_end",
                        &[
                            ("fingerprint", TraceValue::from(spec.fingerprint())),
                            ("ok", TraceValue::from(true)),
                            ("strategy", TraceValue::from(out.stats.strategy)),
                            ("cells", TraceValue::from(out.cuboid.len() as u64)),
                            (
                                "sequences_scanned",
                                TraceValue::from(out.stats.sequences_scanned),
                            ),
                            ("elapsed_ns", TraceValue::from(out.profile.elapsed_nanos)),
                        ],
                    );
                }
            }
            Err(err) => {
                metrics::global().record_failure();
                if trace::enabled() {
                    trace::emit(
                        "query_end",
                        &[
                            ("fingerprint", TraceValue::from(spec.fingerprint())),
                            ("ok", TraceValue::from(false)),
                            ("error", TraceValue::from(err.to_string())),
                        ],
                    );
                }
            }
        }
        result
    }

    fn execute_inner(
        &self,
        spec: &SCuboidSpec,
        hint: Option<(&SCuboidSpec, &Op)>,
        config: &EngineConfig,
    ) -> Result<QueryOutput> {
        spec.validate(&self.db)?;
        let start = Instant::now();
        let fp = spec.fingerprint();
        if config.use_cuboid_repo {
            if let Some(cached) = self.cuboid_repo.get(fp, self.db.version()) {
                let mut profile = if metrics::enabled() {
                    let rec = QueryRecorder::default();
                    rec.add(Counter::CuboidCacheHits, 1);
                    rec.add(Counter::CellsMaterialized, cached.len() as u64);
                    QueryProfile::from_recorder(&rec)
                } else {
                    QueryProfile::default()
                };
                profile.strategy = "cache";
                profile.elapsed_nanos = start.elapsed().as_nanos() as u64;
                return Ok(QueryOutput {
                    cuboid: cached,
                    stats: ExecStats {
                        strategy: "cache",
                        cuboid_cache_hit: true,
                        elapsed: start.elapsed(),
                        ..Default::default()
                    },
                    profile,
                });
            }
        }
        let recorder = if metrics::enabled() {
            Some(Arc::new(QueryRecorder::default()))
        } else {
            None
        };
        let mut gov = Engine::governor(config);
        if let Some(rec) = &recorder {
            gov = gov.with_recorder(Arc::clone(rec));
        }
        let groups = self
            .seq_cache
            .get_or_build_governed(&self.db, &spec.seq, &gov)?;
        let mut meter = ScanMeter::new();
        let mut stats = ExecStats::default();
        let strategy = Engine::effective_strategy(config, spec);
        let mut cuboid = match strategy {
            Strategy::CounterBased => {
                stats.strategy = "CB";
                if config.threads > 1 {
                    counter_based_parallel_governed(
                        &self.db,
                        &groups,
                        spec,
                        config.threads,
                        &mut meter,
                        &gov,
                    )?
                } else {
                    counter_based_governed(
                        &self.db,
                        &groups,
                        spec,
                        config.counter_mode,
                        &mut meter,
                        &gov,
                    )?
                }
            }
            Strategy::InvertedIndex | Strategy::Auto => {
                stats.strategy = "II";
                let ex = IiExecutor::new(
                    &self.db,
                    &groups,
                    self.groups_fp(spec),
                    &self.index_store,
                    config.backend,
                )
                .with_threads(config.threads)
                .with_governor(&gov);
                if let Some((prev, op)) = hint {
                    // Preparation only touches the index store; on any
                    // refusal the generic QUERYINDICES path takes over.
                    match op {
                        Op::PRollUp { .. } => {
                            ex.prepare_p_roll_up(&prev.template, &spec.template, &mut stats)?;
                        }
                        Op::PDrillDown { .. } => {
                            ex.prepare_p_drill_down(&prev.template, spec, &mut meter, &mut stats)?;
                        }
                        Op::Prepend { .. } => {
                            ex.prepare_prepend(
                                &prev.template,
                                &spec.template,
                                &mut meter,
                                &mut stats,
                            )?;
                        }
                        _ => {}
                    }
                }
                ex.execute(spec, &mut meter, &mut stats)?
            }
        };
        if let Some(ms) = spec.min_support {
            apply_min_support(&mut cuboid, ms);
        }
        stats.sequences_scanned = meter.count();
        stats.elapsed = start.elapsed();
        let mut profile = if let Some(rec) = &recorder {
            rec.add(Counter::SequencesScanned, meter.count());
            rec.add(Counter::CellsMaterialized, cuboid.len() as u64);
            rec.add(Counter::IndicesBuilt, stats.indices_built);
            rec.add(Counter::IndexBytesBuilt, stats.index_bytes_built as u64);
            rec.add(Counter::IndexJoins, stats.index_joins);
            rec.add(Counter::GovernorTicks, gov.events_ticked());
            rec.add(Counter::CellsCharged, gov.cells_consumed());
            QueryProfile::from_recorder(rec)
        } else {
            QueryProfile::default()
        };
        profile.strategy = stats.strategy;
        profile.elapsed_nanos = stats.elapsed.as_nanos() as u64;
        let cuboid = Arc::new(cuboid);
        if config.use_cuboid_repo {
            fail_point!("engine.insert");
            self.cuboid_repo
                .insert(fp, self.db.version(), Arc::clone(&cuboid));
        }
        Ok(QueryOutput {
            cuboid,
            stats,
            profile,
        })
    }

    /// Precomputes the generic size-`m` inverted index at `(attr, level)`
    /// for every sequence group of `spec` — the offline precomputation the
    /// experiments of §5.2 perform before timing queries. Returns the bytes
    /// built.
    pub fn precompute_index(
        &self,
        spec: &SCuboidSpec,
        attr: solap_eventdb::AttrId,
        level: usize,
        m: usize,
    ) -> Result<usize> {
        let groups = self.seq_cache.get_or_build(&self.db, &spec.seq)?;
        let ex = IiExecutor::new(
            &self.db,
            &groups,
            self.groups_fp(spec),
            &self.index_store,
            self.config.backend,
        )
        .with_threads(self.config.threads);
        ex.precompute_generic(attr, level, m, spec.template.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{AttrLevel, CmpOp, ColumnType, EventDbBuilder, SortKey, Value};
    use solap_pattern::{MatchPred, PatternTemplate};

    fn fig8_engine(config: EngineConfig) -> Engine {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .build()
            .unwrap();
        let seqs: [&[&str]; 4] = [
            &[
                "Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon",
            ],
            &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
            &["Clarendon", "Pentagon"],
            &["Wheaton", "Clarendon", "Deanwood", "Wheaton"],
        ];
        for (sid, stations) in seqs.iter().enumerate() {
            for (i, st) in stations.iter().enumerate() {
                let action = if i % 2 == 0 { "in" } else { "out" };
                db.push_row(&[
                    Value::Int(sid as i64),
                    Value::Int(i as i64),
                    Value::from(*st),
                    Value::from(action),
                ])
                .unwrap();
            }
        }
        db.set_base_level_name(2, "station");
        db.attach_str_level(2, "district", |s| {
            if s == "Pentagon" || s == "Clarendon" {
                "D10".into()
            } else {
                "D20".into()
            }
        })
        .unwrap();
        Engine::with_config(db, config)
    }

    fn q3(db: &EventDb) -> SCuboidSpec {
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 2, 0), ("Y", 2, 0)],
        )
        .unwrap();
        let action = db.attr("action").unwrap();
        SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 1,
                ascending: true,
            }],
        )
        .with_mpred(
            MatchPred::cmp(0, action, CmpOp::Eq, "in").and(MatchPred::cmp(
                1,
                action,
                CmpOp::Eq,
                "out",
            )),
        )
    }

    #[test]
    fn strategies_agree() {
        let cb = fig8_engine(EngineConfig {
            strategy: Strategy::CounterBased,
            ..Default::default()
        });
        let ii = fig8_engine(EngineConfig {
            strategy: Strategy::InvertedIndex,
            ..Default::default()
        });
        let a = cb.execute(&q3(cb.db())).unwrap();
        let b = ii.execute(&q3(ii.db())).unwrap();
        assert_eq!(a.cuboid.cells, b.cuboid.cells);
        assert_eq!(a.stats.strategy, "CB");
        assert_eq!(b.stats.strategy, "II");
        assert_eq!(a.stats.sequences_scanned, 4);
    }

    #[test]
    fn cuboid_repo_answers_repeats() {
        let e = fig8_engine(EngineConfig::default());
        let spec = q3(e.db());
        let first = e.execute(&spec).unwrap();
        assert!(!first.stats.cuboid_cache_hit);
        let second = e.execute(&spec).unwrap();
        assert!(second.stats.cuboid_cache_hit);
        assert_eq!(second.stats.sequences_scanned, 0);
        assert!(Arc::ptr_eq(&first.cuboid, &second.cuboid));
    }

    #[test]
    fn append_then_de_tail_hits_cache() {
        let e = fig8_engine(EngineConfig::default());
        let qa = q3(e.db());
        e.execute(&qa).unwrap();
        let (qb, _) = e
            .execute_op(
                &qa,
                &Op::Append {
                    symbol: "Y".into(),
                    attr: 2,
                    level: 0,
                },
            )
            .unwrap();
        let (qc, out) = e.execute_op(&qb, &Op::DeTail).unwrap();
        assert_eq!(qc.fingerprint(), qa.fingerprint());
        assert!(
            out.stats.cuboid_cache_hit,
            "DE-TAIL restores Qa from the repository"
        );
    }

    #[test]
    fn execute_op_p_roll_up_uses_merge() {
        let e = fig8_engine(EngineConfig::default());
        let mut qa = q3(e.db());
        qa.mpred = MatchPred::True; // merge + pure count ⇒ zero scans
        e.execute(&qa).unwrap();
        let (_, out) = e.execute_op(&qa, &Op::PRollUp { dim: "Y".into() }).unwrap();
        assert_eq!(out.stats.sequences_scanned, 0);
        // Cross-check against a CB engine at the coarse level.
        let cb = fig8_engine(EngineConfig {
            strategy: Strategy::CounterBased,
            ..Default::default()
        });
        let coarse = ops::apply(cb.db(), &qa, &Op::PRollUp { dim: "Y".into() }).unwrap();
        let expect = cb.execute(&coarse).unwrap();
        assert_eq!(out.cuboid.cells, expect.cuboid.cells);
    }

    #[test]
    fn auto_uses_cb_for_long_subsequences() {
        let e = fig8_engine(EngineConfig::default());
        let mut spec = q3(e.db());
        spec.template = PatternTemplate::new(
            PatternKind::Subsequence,
            &["A", "B", "C", "D"],
            &[("A", 2, 0), ("B", 2, 0), ("C", 2, 0), ("D", 2, 0)],
        )
        .unwrap();
        spec.mpred = MatchPred::True;
        let out = e.execute(&spec).unwrap();
        assert_eq!(out.stats.strategy, "CB");
    }

    #[test]
    fn min_support_filters_cells() {
        let e = fig8_engine(EngineConfig::default());
        let spec = q3(e.db()).with_min_support(2);
        let out = e.execute(&spec).unwrap();
        // Figure 12: only (Pentagon,Wheaton) and (Wheaton,Pentagon) have 2.
        assert_eq!(out.cuboid.len(), 2);
    }

    #[test]
    fn mutation_invalidates_repo() {
        let mut e = fig8_engine(EngineConfig::default());
        let spec = q3(e.db());
        e.execute(&spec).unwrap();
        e.db_mut()
            .push_row(&[
                Value::Int(9),
                Value::Int(0),
                Value::from("Wheaton"),
                Value::from("in"),
            ])
            .unwrap();
        let out = e.execute(&spec).unwrap();
        assert!(!out.stats.cuboid_cache_hit);
    }

    #[test]
    fn precompute_reduces_first_query_builds() {
        let e = fig8_engine(EngineConfig::default());
        let spec = q3(e.db());
        let bytes = e.precompute_index(&spec, 2, 0, 2).unwrap();
        assert!(bytes > 0);
        let out = e.execute(&spec).unwrap();
        assert_eq!(out.stats.indices_built, 0);
    }

    #[test]
    fn profile_accompanies_every_execute() {
        let e = fig8_engine(EngineConfig::default());
        let spec = q3(e.db());
        let first = e.execute(&spec).unwrap();
        assert_eq!(first.profile.strategy, "II");
        assert!(first.profile.elapsed_nanos > 0);
        if first.profile.detailed {
            assert_eq!(
                first
                    .profile
                    .counter(solap_eventdb::Counter::CellsMaterialized),
                first.cuboid.len() as u64
            );
            assert_eq!(
                first
                    .profile
                    .counter(solap_eventdb::Counter::SequencesScanned),
                first.stats.sequences_scanned
            );
            assert_eq!(
                first.profile.counter(solap_eventdb::Counter::EventsScanned),
                e.db().len() as u64
            );
        }
        let second = e.execute(&spec).unwrap();
        assert_eq!(second.profile.strategy, "cache");
        if second.profile.detailed {
            assert_eq!(
                second
                    .profile
                    .counter(solap_eventdb::Counter::CuboidCacheHits),
                1
            );
            assert_eq!(
                second
                    .profile
                    .counter(solap_eventdb::Counter::EventsScanned),
                0,
                "cache hits scan nothing"
            );
        }
    }

    #[test]
    fn explain_is_deterministic_and_does_not_execute() {
        let e = fig8_engine(EngineConfig::default());
        let spec = q3(e.db());
        let a = e.explain(&spec).unwrap();
        let b = e.explain(&spec).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("strategy: II"));
        assert!(a.contains("SELECT"));
        // EXPLAIN must not populate the cuboid repository.
        let out = e.execute(&spec).unwrap();
        assert!(!out.stats.cuboid_cache_hit);
    }

    #[test]
    fn explain_reports_cb_fallback_for_long_subsequences() {
        let e = fig8_engine(EngineConfig::default());
        let mut spec = q3(e.db());
        spec.template = PatternTemplate::new(
            PatternKind::Subsequence,
            &["A", "B", "C", "D"],
            &[("A", 2, 0), ("B", 2, 0), ("C", 2, 0), ("D", 2, 0)],
        )
        .unwrap();
        spec.mpred = MatchPred::True;
        let plan = e.explain(&spec).unwrap();
        assert!(plan.contains("strategy: CB (auto: subsequence template with m > 3)"));
    }

    #[test]
    fn parallel_cb_config() {
        let e = fig8_engine(EngineConfig {
            strategy: Strategy::CounterBased,
            threads: 3,
            ..Default::default()
        });
        let ii = fig8_engine(EngineConfig::default());
        let a = e.execute(&q3(e.db())).unwrap();
        let b = ii.execute(&q3(ii.db())).unwrap();
        assert_eq!(a.cuboid.cells, b.cuboid.cells);
    }
}
