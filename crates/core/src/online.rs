//! Online aggregation for S-OLAP (§6 "Performance").
//!
//! "The online aggregation feature would allow an S-OLAP system to report
//! 'what it knows so far' instead of waiting until the S-OLAP query is
//! fully processed. Such an approximate answer … is periodically refreshed
//! and refined as the computation continues."
//!
//! This module runs the counter-based scan in chunks and, after each chunk,
//! reports a snapshot whose COUNT cells are **scaled up** by the inverse of
//! the fraction of sequences processed — the natural unbiased estimator
//! when sequences are scanned in arbitrary order.

use std::collections::HashMap;

use solap_eventdb::{Error, EventDb, Result, SequenceGroups};
use solap_pattern::{AggValue, Matcher};

use crate::cb::{cell_selected, group_selected};
use crate::cuboid::{CellKey, SCuboid};
use crate::spec::SCuboidSpec;

/// A periodic snapshot passed to the progress callback.
#[derive(Debug, Clone)]
pub struct OnlineSnapshot {
    /// Fraction of sequences processed, in `(0, 1]`.
    pub progress: f64,
    /// The current **estimate** (raw counts scaled by `1 / progress`).
    pub estimate: SCuboid,
}

/// Runs an online COUNT aggregation: `report` is called after every
/// `chunk_size` sequences with a refreshed estimate, and the exact final
/// cuboid is returned. Only COUNT specs are supported (the paper motivates
/// the feature with approximate passenger counts); anything else is an
/// [`Error::InvalidOperation`], as is a zero chunk size.
pub fn online_count(
    db: &EventDb,
    groups: &SequenceGroups,
    spec: &SCuboidSpec,
    chunk_size: usize,
    mut report: impl FnMut(&OnlineSnapshot),
) -> Result<SCuboid> {
    if !matches!(spec.agg, solap_pattern::AggFunc::Count) {
        return Err(Error::InvalidOperation(
            "online aggregation estimates COUNT cuboids only".into(),
        ));
    }
    if chunk_size == 0 {
        return Err(Error::InvalidOperation(
            "online aggregation needs a positive chunk size".into(),
        ));
    }
    let matcher = Matcher::new(db, &spec.template, &spec.mpred);
    let total: usize = groups
        .groups
        .iter()
        .filter(|g| group_selected(spec, &g.key))
        .map(|g| g.sequences.len())
        .sum();
    let mut counts: HashMap<CellKey, u64> = HashMap::new();
    let mut processed = 0usize;
    let mut since_report = 0usize;
    for group in &groups.groups {
        if !group_selected(spec, &group.key) {
            continue;
        }
        for seq in &group.sequences {
            for a in matcher.assignments(seq, spec.restriction)? {
                if !cell_selected(db, spec, &a.cell)? {
                    continue;
                }
                *counts
                    .entry(CellKey {
                        global: group.key.clone(),
                        pattern: a.cell,
                    })
                    .or_default() += 1;
            }
            processed += 1;
            since_report += 1;
            if since_report >= chunk_size && processed < total {
                since_report = 0;
                report(&snapshot(spec, &counts, processed, total));
            }
        }
    }
    let mut exact = SCuboid::new(
        spec.seq.group_by.clone(),
        spec.template.dims.clone(),
        spec.agg,
    );
    for (k, c) in counts {
        exact.cells.insert(k, AggValue::Count(c));
    }
    if let Some(ms) = spec.min_support {
        crate::iceberg::apply_min_support(&mut exact, ms);
    }
    report(&OnlineSnapshot {
        progress: 1.0,
        estimate: exact.clone(),
    });
    Ok(exact)
}

fn snapshot(
    spec: &SCuboidSpec,
    counts: &HashMap<CellKey, u64>,
    processed: usize,
    total: usize,
) -> OnlineSnapshot {
    let progress = processed as f64 / total as f64;
    let scale = 1.0 / progress;
    let mut estimate = SCuboid::new(
        spec.seq.group_by.clone(),
        spec.template.dims.clone(),
        spec.agg,
    );
    for (k, &c) in counts {
        estimate.cells.insert(
            k.clone(),
            AggValue::Count((c as f64 * scale).round() as u64),
        );
    }
    OnlineSnapshot { progress, estimate }
}

/// Convenience: the relative error of an estimate against the exact cuboid,
/// averaged over the exact cuboid's cells (used by tests and the harness to
/// show estimates tightening).
pub fn mean_relative_error(estimate: &SCuboid, exact: &SCuboid) -> f64 {
    if exact.cells.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (k, v) in &exact.cells {
        let e = estimate.cells.get(k).map(|x| x.as_f64()).unwrap_or(0.0);
        let x = v.as_f64();
        total += if x == 0.0 { 0.0 } else { (e - x).abs() / x };
    }
    total / exact.cells.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{
        build_sequence_groups, AttrLevel, ColumnType, EventDbBuilder, SortKey, Value,
    };
    use solap_pattern::{PatternKind, PatternTemplate};

    fn db(n: usize) -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("item", ColumnType::Str)
            .build()
            .unwrap();
        // n sequences alternating two shapes so estimates converge.
        for sid in 0..n {
            let items: &[&str] = if sid % 2 == 0 {
                &["a", "b", "c"]
            } else {
                &["b", "c", "a"]
            };
            for (i, it) in items.iter().enumerate() {
                db.push_row(&[
                    Value::Int(sid as i64),
                    Value::Int(i as i64),
                    Value::from(*it),
                ])
                .unwrap();
            }
        }
        db
    }

    fn spec() -> SCuboidSpec {
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 2, 0), ("Y", 2, 0)],
        )
        .unwrap();
        SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 1,
                ascending: true,
            }],
        )
    }

    #[test]
    fn final_result_is_exact() {
        let db = db(40);
        let s = spec();
        let groups = build_sequence_groups(&db, &s.seq).unwrap();
        let online = online_count(&db, &groups, &s, 7, |_| {}).unwrap();
        let mut meter = crate::stats::ScanMeter::new();
        let exact =
            crate::cb::counter_based(&db, &groups, &s, crate::cb::CounterMode::Hash, &mut meter)
                .unwrap();
        assert_eq!(online.cells, exact.cells);
    }

    #[test]
    fn snapshots_progress_monotonically_and_tighten() {
        let db = db(100);
        let s = spec();
        let groups = build_sequence_groups(&db, &s.seq).unwrap();
        let mut progresses = Vec::new();
        let mut errors = Vec::new();
        let exact = {
            let mut meter = crate::stats::ScanMeter::new();
            crate::cb::counter_based(&db, &groups, &s, crate::cb::CounterMode::Hash, &mut meter)
                .unwrap()
        };
        online_count(&db, &groups, &s, 10, |snap| {
            progresses.push(snap.progress);
            errors.push(mean_relative_error(&snap.estimate, &exact));
        })
        .unwrap();
        assert!(progresses.len() >= 9);
        assert!(progresses.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*progresses.last().unwrap(), 1.0);
        // The data is homogeneous, so even early estimates are close and
        // the final error is exactly zero.
        assert_eq!(*errors.last().unwrap(), 0.0);
        assert!(
            errors[0] < 0.25,
            "early estimate too far off: {}",
            errors[0]
        );
    }

    #[test]
    fn unsupported_inputs_are_typed_errors() {
        let db = db(4);
        let s = spec();
        let groups = build_sequence_groups(&db, &s.seq).unwrap();
        let zero = online_count(&db, &groups, &s, 0, |_| {}).unwrap_err();
        assert_eq!(zero.code(), "invalid_operation");
        let mut sum = spec();
        sum.agg = solap_pattern::AggFunc::Sum(1, solap_pattern::SumMode::AllEvents);
        let bad = online_count(&db, &groups, &sum, 5, |_| {}).unwrap_err();
        assert_eq!(bad.code(), "invalid_operation");
    }

    #[test]
    fn early_estimates_scale_up() {
        let db = db(50);
        let s = spec();
        let groups = build_sequence_groups(&db, &s.seq).unwrap();
        let mut first: Option<OnlineSnapshot> = None;
        online_count(&db, &groups, &s, 5, |snap| {
            if first.is_none() && snap.progress < 1.0 {
                first = Some(snap.clone());
            }
        })
        .unwrap();
        let snap = first.expect("at least one intermediate snapshot");
        // 10% processed → totals should approximate the full total.
        let est_total: u64 = snap
            .estimate
            .cells
            .values()
            .filter_map(|v| v.as_count())
            .sum();
        assert!(
            (90..=110).contains(&est_total),
            "estimate total {est_total}"
        );
    }
}
