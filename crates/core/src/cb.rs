//! The counter-based S-cuboid construction approach (§4.2.1, Figure 7).
//!
//! Each cell has a counter; the sequences of every group are scanned once
//! and every cell assignment increments its counter. Simple and single-pass,
//! but it rescans the **whole dataset on every query** — the weakness the
//! inverted-index approach targets.
//!
//! Two counter layouts are provided: a hash map (always applicable) and a
//! dense n-dimensional array (the paper's `C[v1, …, vn]`), used when every
//! pattern dimension has a known finite domain and the cell space is small
//! enough — the paper notes performance "may degrade when the number of
//! counters far exceeds the amount of available memory", which the ablation
//! benchmark reproduces.

use std::collections::HashMap;

use solap_eventdb::metrics::{self, Counter, Stage};
use solap_eventdb::{
    fail_point, panic_message, Error, EventDb, LevelValue, QueryGovernor, Result, SequenceGroups,
};
use solap_pattern::{AggFunc, AggState, Matcher};

use crate::cuboid::{CellKey, SCuboid};
use crate::spec::SCuboidSpec;
use crate::stats::ScanMeter;

/// Counter layout for the counter-based approach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CounterMode {
    /// Choose dense when the cell space is small (≤ `DENSE_CELL_LIMIT`),
    /// hash otherwise.
    #[default]
    Auto,
    /// Hash-keyed counters.
    Hash,
    /// Dense array counters (COUNT only; falls back to hash otherwise).
    Dense,
}

/// Largest dense cell space `Auto` will allocate (counters, not bytes).
pub const DENSE_CELL_LIMIT: usize = 1 << 22;

/// Whether a sequence-group key survives the spec's global slice.
pub(crate) fn group_selected(spec: &SCuboidSpec, key: &[LevelValue]) -> bool {
    spec.global_slice.iter().all(|(&g, &v)| key[g] == v)
}

/// Whether a cell survives the spec's pattern slice. Slice values may live
/// at a coarser level than the dimension (a slice set before a
/// P-DRILL-DOWN), in which case the cell value is rolled up before the
/// comparison.
pub(crate) fn cell_selected(db: &EventDb, spec: &SCuboidSpec, cell: &[LevelValue]) -> Result<bool> {
    for (&d, &(level, v)) in &spec.pattern_slice {
        let dim = &spec.template.dims[d];
        let at_slice_level = if level == dim.level {
            cell[d]
        } else {
            db.map_up(dim.attr, dim.level, cell[d], level)?
        };
        if at_slice_level != v {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Runs the COUNTERBASED procedure over every sequence group, producing the
/// `(q + n)`-dimensional S-cuboid. `meter` records scanned sequences.
pub fn counter_based(
    db: &EventDb,
    groups: &SequenceGroups,
    spec: &SCuboidSpec,
    mode: CounterMode,
    meter: &mut ScanMeter,
) -> Result<SCuboid> {
    counter_based_governed(db, groups, spec, mode, meter, &QueryGovernor::unbounded())
}

/// [`counter_based`] under a [`QueryGovernor`]: match enumeration ticks per
/// candidate window and every newly materialised counter is charged against
/// the cell budget (dense layouts charge their whole cell space up front).
pub fn counter_based_governed(
    db: &EventDb,
    groups: &SequenceGroups,
    spec: &SCuboidSpec,
    mode: CounterMode,
    meter: &mut ScanMeter,
    gov: &QueryGovernor,
) -> Result<SCuboid> {
    let dense_size = dense_cell_space(db, spec);
    let use_dense = match mode {
        CounterMode::Hash => false,
        CounterMode::Dense | CounterMode::Auto => {
            matches!(spec.agg, AggFunc::Count)
                && dense_size.is_some_and(|s| s <= DENSE_CELL_LIMIT || mode == CounterMode::Dense)
        }
    };
    let matcher = Matcher::new(db, &spec.template, &spec.mpred).with_governor(gov);
    let mut cuboid = SCuboid::new(
        spec.seq.group_by.clone(),
        spec.template.dims.clone(),
        spec.agg,
    );
    let rec = gov.recorder();
    let _span = metrics::span(rec, Stage::Aggregate);
    let mut assignments: u64 = 0;
    for group in &groups.groups {
        if !group_selected(spec, &group.key) {
            continue;
        }
        fail_point!("cb.group");
        gov.check_now()?;
        assignments += if use_dense {
            scan_group_dense(db, spec, &matcher, group, &mut cuboid, meter, gov)?
        } else {
            scan_group_hash(db, spec, &matcher, group, &mut cuboid, meter, gov)?
        };
    }
    if let Some(rec) = rec {
        rec.add(Counter::PatternAssignments, assignments);
        rec.add(Counter::MatchWindows, matcher.take_windows());
    }
    Ok(cuboid)
}

#[allow(clippy::too_many_arguments)]
fn scan_group_hash(
    db: &EventDb,
    spec: &SCuboidSpec,
    matcher: &Matcher<'_>,
    group: &solap_eventdb::SequenceGroup,
    cuboid: &mut SCuboid,
    meter: &mut ScanMeter,
    gov: &QueryGovernor,
) -> Result<u64> {
    let mut states: HashMap<Vec<LevelValue>, AggState> = HashMap::new();
    let mut assignments: u64 = 0;
    for seq in &group.sequences {
        meter.touch(seq.sid);
        let assigned = matcher.assignments(seq, spec.restriction)?;
        assignments += assigned.len() as u64;
        for a in assigned {
            if !cell_selected(db, spec, &a.cell)? {
                continue;
            }
            match states.entry(a.cell.clone()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    gov.charge_cells(1)?;
                    e.insert(AggState::new(spec.agg))
                        .update(db, spec.agg, seq, &a)?;
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().update(db, spec.agg, seq, &a)?;
                }
            }
        }
    }
    for (cell, state) in states {
        cuboid.cells.insert(
            CellKey {
                global: group.key.clone(),
                pattern: cell,
            },
            state.finish(),
        );
    }
    Ok(assignments)
}

/// Figure 7 literally: initialise a dense `C[v1, …, vn]`, scan, increment.
#[allow(clippy::too_many_arguments)]
fn scan_group_dense(
    db: &EventDb,
    spec: &SCuboidSpec,
    matcher: &Matcher<'_>,
    group: &solap_eventdb::SequenceGroup,
    cuboid: &mut SCuboid,
    meter: &mut ScanMeter,
    gov: &QueryGovernor,
) -> Result<u64> {
    let (strides, total) =
        dense_strides(db, spec).expect("dense mode requires finite pattern domains");
    // The dense array materialises the whole cell space at once; charge it
    // up front so a budget below the array size rejects the allocation.
    gov.charge_cells(total as u64)?;
    let mut counters: Vec<u64> = vec![0; total];
    let mut assignments: u64 = 0;
    // solint: allow(governor-tick) whole dense cell space charged up front; assignments() ticks per candidate window
    for seq in &group.sequences {
        meter.touch(seq.sid);
        let assigned = matcher.assignments(seq, spec.restriction)?;
        assignments += assigned.len() as u64;
        for a in assigned {
            if !cell_selected(db, spec, &a.cell)? {
                continue;
            }
            let idx: usize = a
                .cell
                .iter()
                .zip(&strides)
                .map(|(&v, &s)| v as usize * s)
                .sum();
            counters[idx] += 1;
        }
    }
    let n = spec.template.n();
    for (idx, &count) in counters.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let mut cell = vec![0u64; n];
        let mut rest = idx;
        for d in 0..n {
            cell[d] = (rest / strides[d]) as u64;
            rest %= strides[d];
        }
        cuboid.cells.insert(
            CellKey {
                global: group.key.clone(),
                pattern: cell,
            },
            solap_pattern::AggValue::Count(count),
        );
    }
    Ok(assignments)
}

/// The dense cell-space size, if every pattern dimension has a finite
/// domain.
pub fn dense_cell_space(db: &EventDb, spec: &SCuboidSpec) -> Option<usize> {
    let mut total: usize = 1;
    for d in &spec.template.dims {
        total = total.checked_mul(db.level_domain_size(d.attr, d.level)?)?;
    }
    Some(total)
}

fn dense_strides(db: &EventDb, spec: &SCuboidSpec) -> Option<(Vec<usize>, usize)> {
    let sizes: Option<Vec<usize>> = spec
        .template
        .dims
        .iter()
        .map(|d| db.level_domain_size(d.attr, d.level))
        .collect();
    let sizes = sizes?;
    let mut strides = vec![1usize; sizes.len()];
    for d in (0..sizes.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * sizes[d + 1];
    }
    let total = sizes.first().map_or(1, |&s0| strides[0] * s0);
    Some((strides, total))
}

/// A parallel variant of [`counter_based`] covering **every** aggregate
/// function: the sequences of each group are sharded across `threads`
/// workers, each folding a thread-local `cell → AggState` map and a
/// thread-local [`ScanMeter`]; at join time the partial states are merged
/// with [`AggState::merge`] and the meters absorbed into `meter`.
///
/// Determinism: worker results are merged **in chunk order** (the order
/// the shards were cut from the group's sid-sorted sequence list), so each
/// cell's partial states always combine in the same sequence regardless of
/// thread scheduling, and finished cells are inserted in **sorted key
/// order**. Count/Min/Max merges are order-independent outright; Sum/Avg
/// carry `(sum, n)` partials whose fixed association order makes the
/// float result reproducible run-to-run.
pub fn counter_based_parallel(
    db: &EventDb,
    groups: &SequenceGroups,
    spec: &SCuboidSpec,
    threads: usize,
    meter: &mut ScanMeter,
) -> Result<SCuboid> {
    counter_based_parallel_governed(
        db,
        groups,
        spec,
        threads,
        meter,
        &QueryGovernor::unbounded(),
    )
}

/// [`counter_based_parallel`] under a [`QueryGovernor`]. The governor is
/// shared by reference across the workers: each worker's matcher ticks it,
/// each thread-local cell is charged, and the first limit to trip aborts
/// the whole group at merge time. A panicking worker is isolated and
/// surfaced as [`Error::Internal`] instead of poisoning the engine.
pub fn counter_based_parallel_governed(
    db: &EventDb,
    groups: &SequenceGroups,
    spec: &SCuboidSpec,
    threads: usize,
    meter: &mut ScanMeter,
    gov: &QueryGovernor,
) -> Result<SCuboid> {
    if threads <= 1 {
        return counter_based_governed(db, groups, spec, CounterMode::Hash, meter, gov);
    }
    let mut cuboid = SCuboid::new(
        spec.seq.group_by.clone(),
        spec.template.dims.clone(),
        spec.agg,
    );
    for group in &groups.groups {
        if !group_selected(spec, &group.key) {
            continue;
        }
        if group.sequences.is_empty() {
            continue;
        }
        fail_point!("cb.group");
        gov.check_now()?;
        let chunk = group.sequences.len().div_ceil(threads).max(1);
        let rec = gov.recorder();
        type Partial = (HashMap<Vec<LevelValue>, AggState>, ScanMeter);
        let partials: Vec<Result<Partial>> = std::thread::scope(|scope| {
            let handles: Vec<_> = group
                .sequences
                .chunks(chunk)
                .map(|seqs| {
                    scope.spawn(move || -> Result<Partial> {
                        fail_point!("cb.worker");
                        // Per-worker observability: count into locals and
                        // flush once at worker exit; the Aggregate stage
                        // sums worker time (≈ CPU time, not wall clock).
                        let worker_span = metrics::span(rec, Stage::Aggregate);
                        if let Some(rec) = rec {
                            rec.add(Counter::WorkersSpawned, 1);
                        }
                        let matcher =
                            Matcher::new(db, &spec.template, &spec.mpred).with_governor(gov);
                        let mut local: HashMap<Vec<LevelValue>, AggState> = HashMap::new();
                        let mut local_meter = ScanMeter::new();
                        let mut assignments: u64 = 0;
                        for seq in seqs {
                            local_meter.touch(seq.sid);
                            let assigned = matcher.assignments(seq, spec.restriction)?;
                            assignments += assigned.len() as u64;
                            for a in assigned {
                                if !cell_selected(db, spec, &a.cell)? {
                                    continue;
                                }
                                match local.entry(a.cell.clone()) {
                                    std::collections::hash_map::Entry::Vacant(e) => {
                                        gov.charge_cells(1)?;
                                        e.insert(AggState::new(spec.agg))
                                            .update(db, spec.agg, seq, &a)?;
                                    }
                                    std::collections::hash_map::Entry::Occupied(mut e) => {
                                        e.get_mut().update(db, spec.agg, seq, &a)?;
                                    }
                                }
                            }
                        }
                        if let Some(rec) = rec {
                            rec.add(Counter::PatternAssignments, assignments);
                            rec.add(Counter::MatchWindows, matcher.take_windows());
                        }
                        drop(worker_span);
                        Ok((local, local_meter))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(p) => Err(Error::Internal(format!(
                        "CB worker panicked: {}",
                        panic_message(p.as_ref())
                    ))),
                })
                .collect()
        });
        // Surface the first worker error *before* absorbing any partial
        // meter: a governor abort mid-merge must not leave the failed run's
        // scan accounting behind in a caller-reused meter.
        let partials: Vec<Partial> = partials.into_iter().collect::<Result<_>>()?;
        let mut merged: HashMap<Vec<LevelValue>, AggState> = HashMap::new();
        for (local, local_meter) in partials {
            meter.absorb(&local_meter);
            for (cell, state) in local {
                merged
                    .entry(cell)
                    .or_insert_with(|| AggState::new(spec.agg))
                    .merge(&state);
            }
        }
        let mut cells: Vec<(Vec<LevelValue>, AggState)> = merged.into_iter().collect();
        cells.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (cell, state) in cells {
            cuboid.cells.insert(
                CellKey {
                    global: group.key.clone(),
                    pattern: cell,
                },
                state.finish(),
            );
        }
    }
    Ok(cuboid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SCuboidSpec;
    use solap_eventdb::{
        build_sequence_groups, AttrLevel, ColumnType, EventDbBuilder, Pred, SeqQuerySpec, SortKey,
        Value,
    };
    use solap_pattern::{CellRestriction, MatchPred, PatternKind, PatternTemplate};

    /// Figure 8's sequence group as an event db: sid encoded as cluster key.
    fn fig8_db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .build()
            .unwrap();
        let seqs: [&[&str]; 4] = [
            &[
                "Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon",
            ],
            &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
            &["Clarendon", "Pentagon"],
            &["Wheaton", "Clarendon", "Deanwood", "Wheaton"],
        ];
        for (sid, stations) in seqs.iter().enumerate() {
            for (i, st) in stations.iter().enumerate() {
                let action = if i % 2 == 0 { "in" } else { "out" };
                db.push_row(&[
                    Value::Int(sid as i64),
                    Value::Int(i as i64),
                    Value::from(*st),
                    Value::from(action),
                ])
                .unwrap();
            }
        }
        db
    }

    fn spec_xy(db: &EventDb) -> SCuboidSpec {
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 2, 0), ("Y", 2, 0)],
        )
        .unwrap();
        let action = db.attr("action").unwrap();
        SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 1,
                ascending: true,
            }],
        )
        .with_mpred(
            MatchPred::cmp(0, action, solap_eventdb::CmpOp::Eq, "in").and(MatchPred::cmp(
                1,
                action,
                solap_eventdb::CmpOp::Eq,
                "out",
            )),
        )
    }

    fn groups(db: &EventDb, spec: &SCuboidSpec) -> SequenceGroups {
        build_sequence_groups(db, &spec.seq).unwrap()
    }

    fn station(db: &EventDb, s: &str) -> u64 {
        db.dict(2).unwrap().lookup(s).unwrap() as u64
    }

    /// The 2D S-cuboid of Figure 12.
    #[test]
    fn q3_matches_figure_12() {
        let db = fig8_db();
        let spec = spec_xy(&db);
        let g = groups(&db, &spec);
        let mut meter = ScanMeter::new();
        let c = counter_based(&db, &g, &spec, CounterMode::Hash, &mut meter).unwrap();
        let expect = [
            (("Clarendon", "Pentagon"), 1),
            (("Deanwood", "Wheaton"), 1),
            (("Glenmont", "Pentagon"), 1),
            (("Pentagon", "Wheaton"), 2),
            (("Wheaton", "Clarendon"), 1),
            (("Wheaton", "Pentagon"), 2),
        ];
        assert_eq!(c.len(), expect.len());
        for ((x, y), n) in expect {
            assert_eq!(
                c.get(&[], &[station(&db, x), station(&db, y)])
                    .and_then(|v| v.as_count()),
                Some(n),
                "({x},{y})"
            );
        }
        assert_eq!(meter.count(), 4, "CB scans every sequence");
    }

    #[test]
    fn dense_equals_hash() {
        let db = fig8_db();
        let spec = spec_xy(&db);
        let g = groups(&db, &spec);
        let mut m1 = ScanMeter::new();
        let h = counter_based(&db, &g, &spec, CounterMode::Hash, &mut m1).unwrap();
        let mut m2 = ScanMeter::new();
        let d = counter_based(&db, &g, &spec, CounterMode::Dense, &mut m2).unwrap();
        assert_eq!(h.cells, d.cells);
        let mut m3 = ScanMeter::new();
        let a = counter_based(&db, &g, &spec, CounterMode::Auto, &mut m3).unwrap();
        assert_eq!(h.cells, a.cells);
    }

    #[test]
    fn parallel_equals_sequential() {
        let db = fig8_db();
        let spec = spec_xy(&db);
        let g = groups(&db, &spec);
        let mut m1 = ScanMeter::new();
        let s = counter_based(&db, &g, &spec, CounterMode::Hash, &mut m1).unwrap();
        let mut m2 = ScanMeter::new();
        let p = counter_based_parallel(&db, &g, &spec, 3, &mut m2).unwrap();
        assert_eq!(s.cells, p.cells);
        assert_eq!(m1.count(), m2.count());
    }

    #[test]
    fn failed_parallel_run_leaves_meter_untouched() {
        let db = fig8_db();
        let spec = spec_xy(&db);
        let g = groups(&db, &spec);
        // A 1-cell budget aborts some worker mid-scan; the abort must not
        // leave the failed run's scan accounting in the caller's meter
        // (regression: absorb used to run before the error was surfaced).
        let gov = QueryGovernor::new(None, Some(1), None);
        let mut meter = ScanMeter::new();
        assert!(counter_based_parallel_governed(&db, &g, &spec, 3, &mut meter, &gov).is_err());
        assert_eq!(meter.count(), 0, "failed run must not be metered");
        // The same meter then records exactly one successful run.
        let ok = counter_based_parallel(&db, &g, &spec, 3, &mut meter).unwrap();
        assert_eq!(meter.count(), 4);
        assert!(!ok.is_empty());
    }

    #[test]
    fn xyyx_finds_the_round_trip() {
        let db = fig8_db();
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y", "Y", "X"],
            &[("X", 2, 0), ("Y", 2, 0)],
        )
        .unwrap();
        let action = db.attr("action").unwrap();
        let spec = SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 1,
                ascending: true,
            }],
        )
        .with_mpred(MatchPred::all([
            MatchPred::cmp(0, action, solap_eventdb::CmpOp::Eq, "in"),
            MatchPred::cmp(1, action, solap_eventdb::CmpOp::Eq, "out"),
            MatchPred::cmp(2, action, solap_eventdb::CmpOp::Eq, "in"),
            MatchPred::cmp(3, action, solap_eventdb::CmpOp::Eq, "out"),
        ]));
        let g = groups(&db, &spec);
        let mut meter = ScanMeter::new();
        let c = counter_based(&db, &g, &spec, CounterMode::Hash, &mut meter).unwrap();
        // §4.2.2: only [Pentagon, Wheaton] has count… 2 here because both
        // s1 and s2 contain the aligned round trip (the paper's Figure 14
        // count of 1 applies after its predicate verification example; with
        // the Q1 predicate both s1 and s2 qualify: s1 at positions 2..6 and
        // s2 at 0..4).
        assert_eq!(
            c.get(&[], &[station(&db, "Pentagon"), station(&db, "Wheaton")])
                .and_then(|v| v.as_count()),
            Some(2)
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn pattern_slice_restricts_cells() {
        let db = fig8_db();
        let mut spec = spec_xy(&db);
        spec.pattern_slice.insert(0, (0, station(&db, "Pentagon")));
        let g = groups(&db, &spec);
        let mut meter = ScanMeter::new();
        let c = counter_based(&db, &g, &spec, CounterMode::Hash, &mut meter).unwrap();
        assert_eq!(c.len(), 1);
        assert!(c
            .get(&[], &[station(&db, "Pentagon"), station(&db, "Wheaton")])
            .is_some());
    }

    #[test]
    fn global_slice_skips_groups() {
        let db = fig8_db();
        // Group by sid itself so each sequence is its own group.
        let mut spec = spec_xy(&db);
        spec.seq.group_by = vec![AttrLevel::new(0, 0)];
        spec.global_slice.insert(0, 1); // only sid 1
        let g = groups(&db, &spec);
        let mut meter = ScanMeter::new();
        let c = counter_based(&db, &g, &spec, CounterMode::Hash, &mut meter).unwrap();
        assert_eq!(meter.count(), 1, "only the sliced group is scanned");
        for (k, _) in c.iter_sorted() {
            assert_eq!(k.global, vec![1]);
        }
    }

    #[test]
    fn all_matched_go_counts_occurrences() {
        let db = fig8_db();
        let mut spec = spec_xy(&db);
        spec.mpred = MatchPred::True;
        spec.restriction = CellRestriction::AllMatchedGo;
        let g = groups(&db, &spec);
        let mut meter = ScanMeter::new();
        let c = counter_based(&db, &g, &spec, CounterMode::Hash, &mut meter).unwrap();
        // s1 ⟨G,P,P,W,W,P⟩ has windows (P,P) ×1, (W,W) ×1, (P,W) ×1, (W,P) ×1, (G,P) ×1.
        // Totals: every adjacent pair across all 4 sequences = 5+3+1+3 = 12.
        assert_eq!(c.total_count(), 12);
    }

    #[test]
    fn where_filter_respected() {
        let db = fig8_db();
        let mut spec = spec_xy(&db);
        spec.seq.filter = Pred::cmp(0, solap_eventdb::CmpOp::Le, Value::Int(1)); // sids 0 and 1
        let g = build_sequence_groups(&db, &spec.seq).unwrap();
        let mut meter = ScanMeter::new();
        let c = counter_based(&db, &g, &spec, CounterMode::Hash, &mut meter).unwrap();
        assert_eq!(meter.count(), 2);
        assert!(c
            .get(&[], &[station(&db, "Wheaton"), station(&db, "Clarendon")])
            .is_none());
    }

    #[test]
    fn dense_cell_space_depends_on_domains() {
        let db = fig8_db();
        let spec = spec_xy(&db);
        assert_eq!(dense_cell_space(&db, &spec), Some(25)); // 5 stations²
                                                            // A template over a raw-int dimension has no finite domain.
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 1, 0), ("Y", 1, 0)],
        )
        .unwrap();
        let s2 = SCuboidSpec::new(t, vec![AttrLevel::new(0, 0)], vec![]);
        assert_eq!(dense_cell_space(&db, &s2), None);
    }

    /// Build a sequence-group set from an arbitrary query spec quickly.
    #[test]
    fn seq_spec_shared_with_eventdb() {
        let db = fig8_db();
        let spec = spec_xy(&db);
        let s: &SeqQuerySpec = &spec.seq;
        assert_eq!(s.cluster_by.len(), 1);
    }
}
