//! The inverted-index S-cuboid construction approach (§4.2.2).
//!
//! QUERYINDICES (Figure 15): to answer a query with pattern template `T`
//! of length `m`, fetch (or assemble) the inverted index `L_m^T`, then count
//! per list the sequences satisfying the cell restriction and matching
//! predicate. Assembly walks a join ladder from the **largest available
//! prefix index**: `L_{i+1} = L_i ⋈ L_2`, followed by a verification scan
//! that eliminates false-positive candidates ("Scan the database to
//! eliminate invalid entries"). Indices created along the way are cached —
//! the by-product that makes follow-up iterative queries cheap.
//!
//! The operation fast paths of §4.2.2 are implemented as index
//! *preparation* steps: P-ROLL-UP merges the previous query's index by list
//! union (legal only when all template symbols are distinct — the paper's
//! s6 counter-example), P-DRILL-DOWN refines it by rescanning only the
//! sequences the coarse index mentions, and PREPEND joins a fresh `L_2` on
//! the left of the previous index.

use std::sync::Arc;

use solap_eventdb::metrics::{self, Counter, Stage};
use solap_eventdb::{
    fail_point, panic_message, Error, EventDb, QueryGovernor, Result, SequenceGroups,
};
use solap_index::{
    build_index_governed, join::join, join::rollup_merge, IndexKey, IndexStore, InvertedIndex,
    SetBackend,
};
use solap_pattern::{
    AggFunc, AggState, CellRestriction, MatchPred, Matcher, PatternTemplate, TemplateSignature,
};

use crate::cb::{cell_selected, group_selected};

/// Per-position slice: `Some((slice_level, value))` fixes the value of a
/// position (compared after rolling the position's value up to
/// `slice_level`).
pub type PosSlice = Vec<Option<(usize, solap_eventdb::LevelValue)>>;

/// Fingerprint of the fixed positions of a slice (0 = unsliced).
pub fn pos_slice_fp(pos: &PosSlice) -> u64 {
    let fixed: Vec<(usize, usize, solap_eventdb::LevelValue)> = pos
        .iter()
        .enumerate()
        .filter_map(|(p, s)| s.map(|(l, v)| (p, l, v)))
        .collect();
    if fixed.is_empty() {
        return 0;
    }
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    fixed.hash(&mut h);
    h.finish().max(1)
}
use crate::cuboid::{CellKey, SCuboid};
use crate::spec::SCuboidSpec;
use crate::stats::{ExecStats, ScanMeter};

/// Executes S-OLAP queries over one sequence-group set using inverted
/// indices cached in an [`IndexStore`].
pub struct IiExecutor<'a> {
    db: &'a EventDb,
    groups: &'a SequenceGroups,
    /// Fingerprint identifying `groups` in the index store.
    pub groups_fp: u64,
    store: &'a IndexStore,
    backend: SetBackend,
    threads: usize,
    gov: Option<&'a QueryGovernor>,
    /// Unbounded stand-in used when no governor is attached, so internal
    /// plumbing can always pass a `&QueryGovernor`.
    fallback_gov: QueryGovernor,
}

impl<'a> IiExecutor<'a> {
    /// Creates an executor (single-threaded index construction; see
    /// [`IiExecutor::with_threads`]).
    pub fn new(
        db: &'a EventDb,
        groups: &'a SequenceGroups,
        groups_fp: u64,
        store: &'a IndexStore,
        backend: SetBackend,
    ) -> Self {
        IiExecutor {
            db,
            groups,
            groups_fp,
            store,
            backend,
            threads: 1,
            gov: None,
            fallback_gov: QueryGovernor::unbounded(),
        }
    }

    /// Sets the worker count for base-index construction (`threads ≤ 1`
    /// keeps the sequential path).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a [`QueryGovernor`]: index builds, verification scans and
    /// cuboid folding tick it, and new inverted lists / cuboid cells are
    /// charged against its cell budget.
    pub fn with_governor(mut self, gov: &'a QueryGovernor) -> Self {
        self.gov = Some(gov);
        self
    }

    fn gov(&self) -> &QueryGovernor {
        self.gov.unwrap_or(&self.fallback_gov)
    }

    fn key(&self, group_idx: usize, sig: TemplateSignature, slice_fp: u64) -> IndexKey {
        IndexKey {
            groups_fp: self.groups_fp,
            group_idx,
            sig,
            slice_fp,
        }
    }

    /// Fetches or assembles `L_m^T` for one group (Figure 15 lines 5–9),
    /// without slice restrictions.
    pub fn ensure_index(
        &self,
        group_idx: usize,
        template: &PatternTemplate,
        meter: &mut ScanMeter,
        stats: &mut ExecStats,
    ) -> Result<Arc<InvertedIndex>> {
        self.ensure_index_sliced(
            group_idx,
            template,
            &vec![None; template.m()],
            0,
            meter,
            stats,
        )
    }

    /// Fetches or assembles `L_m^T`, optionally restricted to a *position
    /// slice* (`pos_slice[p] = Some(v)` fixes the value at position `p`).
    ///
    /// Slice-restricted assembly is what makes iterative queries after a
    /// slice cheap (Table 1's Qc touches 842 sequences, not 50,524): the
    /// join ladder only materialises candidate lists compatible with the
    /// slice, and the verification scan only visits their members. Sliced
    /// indices are cached under the slice fingerprint; unsliced prefixes
    /// are valid (superset) starting points.
    pub fn ensure_index_sliced(
        &self,
        group_idx: usize,
        template: &PatternTemplate,
        pos_slice: &PosSlice,
        slice_fp: u64,
        meter: &mut ScanMeter,
        stats: &mut ExecStats,
    ) -> Result<Arc<InvertedIndex>> {
        let sig = template.signature();
        if slice_fp != 0 {
            if let Some(ix) = self.store.get(&self.key(group_idx, sig.clone(), slice_fp)) {
                return Ok(ix);
            }
        }
        // A complete (unsliced) index answers any slice outright.
        if let Some(ix) = self.store.get(&self.key(group_idx, sig.clone(), 0)) {
            return Ok(ix);
        }
        let m = sig.m();
        if m <= 2 {
            let full = self.build_base(group_idx, template, meter, stats)?;
            return Ok(self.slice_filtered(group_idx, template, &sig, full, pos_slice, slice_fp));
        }
        // Find the largest available prefix to join from; build L_2 of the
        // first two positions if nothing is cached.
        let (mut current, mut k) =
            match self
                .store
                .largest_prefix(self.groups_fp, group_idx, &sig, slice_fp)
            {
                Some((ix, k)) => (ix, k),
                None => {
                    let prefix2 = PatternTemplate::from_signature(&sig.prefix(2));
                    let full = self.build_base(group_idx, &prefix2, meter, stats)?;
                    (
                        self.slice_filtered(
                            group_idx,
                            template,
                            &sig.prefix(2),
                            full,
                            pos_slice,
                            slice_fp,
                        ),
                        2,
                    )
                }
            };
        while k < m {
            let target_sig = sig.prefix(k + 1);
            let target_template = PatternTemplate::from_signature(&target_sig);
            // The length-2 index over positions (k-1, k).
            let pair_sig = TemplateSignature {
                kind: sig.kind,
                per_position: vec![sig.per_position[k - 1], sig.per_position[k]],
                eq_classes: if sig.eq_classes[k - 1] == sig.eq_classes[k] {
                    vec![0, 0]
                } else {
                    vec![0, 1]
                },
            };
            let pair_cached = self
                .store
                .contains(&self.key(group_idx, pair_sig.clone(), 0));
            // Two ways to climb one rung. With a cached pair index: the
            // Figure-15 join + verification scan. Without one: if the
            // current (possibly sliced) index is selective, it is cheaper
            // to rescan just its member sequences and enumerate their
            // (k+1)-patterns directly than to build a full pair index —
            // this is why Table 1's Qc builds **no** new base indices and
            // touches only the sequences of the sliced lists.
            let member_sids = {
                let mut seen = solap_index::Bitmap::new();
                for set in current.lists.values() {
                    for sid in set.iter() {
                        self.gov().tick()?;
                        seen.insert(sid);
                    }
                }
                seen
            };
            let group_size = self.groups.groups[group_idx].sequences.len();
            let verified = if !pair_cached && member_sids.len() * 2 < group_size {
                let _span = metrics::span(self.gov().recorder(), Stage::IndexBuild);
                let mut sids: Vec<u32> = member_sids.iter().collect();
                sids.sort_unstable();
                // solint: allow(governor-tick) O(1) meter touch per sid; the collection pass above ticked every posting
                for &sid in &sids {
                    meter.touch(sid);
                }
                let seqs = sids
                    .iter()
                    .map(|&s| self.groups.sequence(s))
                    .collect::<Result<Vec<_>>>()?;
                let (raw, _) = build_index_governed(
                    self.db,
                    seqs,
                    &target_template,
                    self.backend,
                    self.gov(),
                )?;
                let mut filtered = InvertedIndex::new(target_sig.clone(), raw.backend);
                // solint: allow(governor-tick) filters the list set of the governed build just above; bounded by its output
                for (key, set) in raw.lists {
                    if self.positions_match_slice(template, pos_slice, &key) {
                        filtered.lists.insert(key, set);
                    }
                }
                filtered
            } else {
                let pair_template = PatternTemplate::from_signature(&pair_sig);
                let pair_index = self.ensure_index(group_idx, &pair_template, meter, stats)?;
                let candidate = {
                    let _span = metrics::span(self.gov().recorder(), Stage::IndexJoin);
                    join(&current, &pair_index, target_sig.clone(), |c| {
                        target_template.is_instantiation(c)
                            && self.positions_match_slice(template, pos_slice, c)
                    })
                };
                stats.index_joins += 1;
                self.verify(candidate, &target_template, meter)?
            };
            let verified = Arc::new(verified);
            stats.indices_built += 1;
            stats.index_bytes_built += verified.heap_bytes();
            self.store.insert(
                self.key(group_idx, target_sig, slice_fp),
                Arc::clone(&verified),
            );
            current = verified;
            k += 1;
        }
        Ok(current)
    }

    /// Whether a (possibly partial) pattern respects the position slice:
    /// each fixed position's value, rolled up to the slice level, must
    /// equal the slice value. Positions beyond the pattern length pass.
    fn positions_match_slice(
        &self,
        template: &PatternTemplate,
        pos_slice: &PosSlice,
        pattern: &[solap_eventdb::LevelValue],
    ) -> bool {
        for (p, &v) in pattern.iter().enumerate() {
            let Some(&Some((slice_level, want))) = pos_slice.get(p).as_ref().map(|x| *x) else {
                continue;
            };
            let dim = template.dim_at(p);
            let at_level = if slice_level == dim.level {
                v
            } else {
                match self.db.map_up(dim.attr, dim.level, v, slice_level) {
                    Ok(x) => x,
                    Err(_) => return false,
                }
            };
            if at_level != want {
                return false;
            }
        }
        true
    }

    /// Derives (and caches) the slice-restricted subset of a full index.
    fn slice_filtered(
        &self,
        group_idx: usize,
        template: &PatternTemplate,
        sig: &TemplateSignature,
        full: Arc<InvertedIndex>,
        pos_slice: &PosSlice,
        slice_fp: u64,
    ) -> Arc<InvertedIndex> {
        let relevant = pos_slice.iter().take(sig.m()).any(Option::is_some);
        if slice_fp == 0 || !relevant {
            return full;
        }
        let mut filtered = InvertedIndex::new(sig.clone(), full.backend);
        // solint: allow(governor-tick) infallible path (no Result to abort through); bounded by the cached index's list count
        for (k, v) in &full.lists {
            if self.positions_match_slice(template, pos_slice, k) {
                filtered.lists.insert(k.clone(), v.clone());
            }
        }
        let filtered = Arc::new(filtered);
        self.store.insert(
            self.key(group_idx, sig.clone(), slice_fp),
            Arc::clone(&filtered),
        );
        filtered
    }

    /// BUILDINDEX over the group's sequences (used for `m ≤ 2` bases).
    ///
    /// With `threads > 1` the group's (sid-sorted) sequence list is cut
    /// into contiguous sid-range shards, one BUILDINDEX per worker, and
    /// the per-shard posting lists are concatenated **in shard order** —
    /// which reproduces the sequential push order of every list exactly,
    /// so the parallel index is identical to the sequential one.
    fn build_base(
        &self,
        group_idx: usize,
        template: &PatternTemplate,
        meter: &mut ScanMeter,
        stats: &mut ExecStats,
    ) -> Result<Arc<InvertedIndex>> {
        fail_point!("ii.build_base");
        self.gov().check_now()?;
        let _span = metrics::span(self.gov().recorder(), Stage::IndexBuild);
        let group = &self.groups.groups[group_idx];
        let index = if self.threads > 1 && group.sequences.len() > 1 {
            self.build_base_parallel(group, template)?
        } else {
            build_index_governed(
                self.db,
                &group.sequences,
                template,
                self.backend,
                self.gov(),
            )?
            .0
        };
        // solint: allow(governor-tick) O(1) meter touch per sequence; the build above ticked per event and check_now ran at entry
        for seq in &group.sequences {
            meter.touch(seq.sid);
        }
        let index = Arc::new(index);
        stats.indices_built += 1;
        stats.index_bytes_built += index.heap_bytes();
        self.store.insert(
            self.key(group_idx, template.signature(), 0),
            Arc::clone(&index),
        );
        Ok(index)
    }

    /// The sharded BUILDINDEX described on [`IiExecutor::build_base`].
    fn build_base_parallel(
        &self,
        group: &solap_eventdb::SequenceGroup,
        template: &PatternTemplate,
    ) -> Result<InvertedIndex> {
        let chunk = group.sequences.len().div_ceil(self.threads).max(1);
        let gov = self.gov();
        let partials: Vec<Result<InvertedIndex>> = std::thread::scope(|scope| {
            let handles: Vec<_> = group
                .sequences
                .chunks(chunk)
                .map(|seqs| {
                    scope.spawn(move || {
                        fail_point!("ii.worker");
                        if let Some(rec) = gov.recorder() {
                            rec.add(Counter::WorkersSpawned, 1);
                        }
                        build_index_governed(self.db, seqs, template, self.backend, gov)
                            .map(|(ix, _)| ix)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(p) => Err(Error::Internal(format!(
                        "II worker panicked: {}",
                        panic_message(p.as_ref())
                    ))),
                })
                .collect()
        });
        let mut merged = InvertedIndex::new(template.signature(), self.backend);
        for partial in partials {
            // Shard order = ascending sid ranges, so per-pattern pushes
            // arrive in the same nondecreasing sid order as a full scan.
            // solint: allow(governor-tick) parallel-only merge: ticking here would make tick counts thread-dependent; the workers ticked every event
            for (pattern, set) in partial?.lists {
                let slot = merged
                    .lists
                    .entry(pattern)
                    .or_insert_with(|| self.backend.empty());
                // solint: allow(governor-tick) same parallel-only merge: worker builds already ticked these postings
                for sid in set.iter() {
                    slot.push(sid);
                }
            }
        }
        // Canonicalize exactly like the sequential build does, so the
        // sharded merge is byte-identical (and heap accounting agrees).
        merged.seal();
        Ok(merged)
    }

    /// Expands a spec's per-dimension pattern slice into a per-position
    /// slice — `(slice level, value)` per fixed position — and its
    /// fingerprint (0 when empty). The fingerprint hashes the fixed
    /// `(position, level, value)` set only, so a prefix of a longer
    /// template with the same fixed positions shares cached sliced indices.
    pub fn position_slice(spec: &SCuboidSpec) -> (PosSlice, u64) {
        let m = spec.template.m();
        let mut pos: PosSlice = vec![None; m];
        for (p, &d) in spec.template.symbols.iter().enumerate() {
            if let Some(&(level, v)) = spec.pattern_slice.get(&d) {
                pos[p] = Some((level, v));
            }
        }
        (pos.clone(), pos_slice_fp(&pos))
    }

    /// Eliminates false positives from a joined candidate index by scanning
    /// the member sequences (Figure 15 line 9).
    fn verify(
        &self,
        candidate: InvertedIndex,
        template: &PatternTemplate,
        meter: &mut ScanMeter,
    ) -> Result<InvertedIndex> {
        fail_point!("ii.verify");
        let rec = self.gov().recorder();
        let _span = metrics::span(rec, Stage::IndexVerify);
        let trivial = MatchPred::True;
        let matcher = Matcher::new(self.db, template, &trivial).with_governor(self.gov());
        let mut out = InvertedIndex::new(candidate.sig.clone(), candidate.backend);
        // solint: allow(governor-tick) contains_pattern below ticks per window/DFS node through the attached governor
        for (pattern, sids) in candidate.lists {
            let mut kept = self.backend.empty();
            // solint: allow(governor-tick) governed inside contains_pattern (matcher carries the governor)
            for sid in sids.iter() {
                meter.touch(sid);
                if matcher.contains_pattern(self.groups.sequence(sid)?, &pattern)? {
                    kept.push(sid);
                }
            }
            if !kept.is_empty() {
                out.lists.insert(pattern, kept);
            }
        }
        if let Some(rec) = rec {
            rec.add(Counter::MatchWindows, matcher.take_windows());
        }
        // Canonicalize before the caller caches it (compressed tails are
        // flushed; auto settles each list's final encoding).
        out.seal();
        Ok(out)
    }

    /// QUERYINDICES: computes the S-cuboid for `spec` (Figure 15).
    pub fn execute(
        &self,
        spec: &SCuboidSpec,
        meter: &mut ScanMeter,
        stats: &mut ExecStats,
    ) -> Result<SCuboid> {
        let mut cuboid = SCuboid::new(
            spec.seq.group_by.clone(),
            spec.template.dims.clone(),
            spec.agg,
        );
        let matcher = Matcher::new(self.db, &spec.template, &spec.mpred).with_governor(self.gov());
        // Counting needs no sequence access at all when the predicate is
        // trivial, the restriction is left-maximality and we only COUNT:
        // every sid in a (verified) list contains the pattern, contributing
        // exactly 1. This is what lets P-ROLL-UP answer "just by merging the
        // inverted index without scanning the dataset" (§5.2 QuerySet B).
        let count_by_len = spec.mpred.is_true()
            && spec.restriction == CellRestriction::LeftMaximalityMatchedGo
            && matches!(spec.agg, AggFunc::Count);
        for (group_idx, group) in self.groups.groups.iter().enumerate() {
            if !group_selected(spec, &group.key) {
                continue;
            }
            self.gov().check_now()?;
            let (pos_slice, slice_fp) = Self::position_slice(spec);
            let index = self.ensure_index_sliced(
                group_idx,
                &spec.template,
                &pos_slice,
                slice_fp,
                meter,
                stats,
            )?;
            for (pattern, sids) in index.iter_sorted() {
                let cell = spec.template.cell_of(pattern);
                if !cell_selected(self.db, spec, &cell)? {
                    continue;
                }
                let key = CellKey {
                    global: group.key.clone(),
                    pattern: cell.clone(),
                };
                if count_by_len {
                    self.gov().charge_cells(1)?;
                    cuboid
                        .cells
                        .insert(key, solap_pattern::AggValue::Count(sids.len() as u64));
                }
            }
            if count_by_len {
                continue;
            }
            // Restriction/predicate verification: scan each indexed
            // sequence ONCE (Figure 7's single pass, restricted to the
            // sequences the lists mention) and fold its assignments — far
            // cheaper than re-enumerating occurrences per (cell, sid).
            let mut indexed = solap_index::Bitmap::new();
            for (pattern, sids) in index.iter_sorted() {
                let cell = spec.template.cell_of(pattern);
                if !cell_selected(self.db, spec, &cell)? {
                    continue;
                }
                for sid in sids.iter() {
                    self.gov().tick()?;
                    indexed.insert(sid);
                }
            }
            let _fold_span = metrics::span(self.gov().recorder(), Stage::Aggregate);
            let mut states: std::collections::HashMap<Vec<solap_eventdb::LevelValue>, AggState> =
                std::collections::HashMap::new();
            let mut assignments: u64 = 0;
            for sid in indexed.iter() {
                meter.touch(sid);
                let seq = self.groups.sequence(sid)?;
                let assigned = matcher.assignments(seq, spec.restriction)?;
                assignments += assigned.len() as u64;
                for a in assigned {
                    if !cell_selected(self.db, spec, &a.cell)? {
                        continue;
                    }
                    match states.entry(a.cell.clone()) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            self.gov().charge_cells(1)?;
                            e.insert(AggState::new(spec.agg))
                                .update(self.db, spec.agg, seq, &a)?;
                        }
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            e.get_mut().update(self.db, spec.agg, seq, &a)?;
                        }
                    }
                }
            }
            for (cell, state) in states {
                cuboid.cells.insert(
                    CellKey {
                        global: group.key.clone(),
                        pattern: cell,
                    },
                    state.finish(),
                );
            }
            if let Some(rec) = self.gov().recorder() {
                rec.add(Counter::PatternAssignments, assignments);
            }
        }
        if let Some(rec) = self.gov().recorder() {
            rec.add(Counter::MatchWindows, matcher.take_windows());
        }
        Ok(cuboid)
    }

    // ------------------------------------------------------------------
    // Operation fast paths: index preparation
    // ------------------------------------------------------------------

    /// Prepares the new query's index for a P-ROLL-UP by merging the
    /// previous query's index lists (§4.2.2 item 4). Returns `false` when
    /// the merge is illegal (repeated symbols) or the previous index is not
    /// cached — the caller then falls back to QUERYINDICES.
    pub fn prepare_p_roll_up(
        &self,
        prev: &PatternTemplate,
        new: &PatternTemplate,
        stats: &mut ExecStats,
    ) -> Result<bool> {
        if !new.all_symbols_distinct() || prev.symbols != new.symbols || prev.n() != new.n() {
            return Ok(false);
        }
        // Every dimension's level must be ≥ the previous (roll *up*).
        for (p, n) in prev.dims.iter().zip(&new.dims) {
            if n.attr != p.attr || n.level < p.level {
                return Ok(false);
            }
        }
        let prev_sig = prev.signature();
        let new_sig = new.signature();
        for group_idx in 0..self.groups.groups.len() {
            if self
                .store
                .contains(&self.key(group_idx, new_sig.clone(), 0))
            {
                continue;
            }
            self.gov().check_now()?;
            let Some(ix) = self.store.get(&self.key(group_idx, prev_sig.clone(), 0)) else {
                return Ok(false);
            };
            let mut merged = rollup_merge(&ix, new_sig.clone(), |pos, v| {
                let d_prev = prev.dim_at(pos);
                let d_new = new.dim_at(pos);
                self.db.map_up(d_prev.attr, d_prev.level, v, d_new.level)
            })?;
            // List unions keep the first-seen encoding, which under Auto
            // depends on map iteration order; sealing restores the
            // canonical (deterministic) form before caching.
            merged.seal();
            let merged = Arc::new(merged);
            stats.indices_built += 1;
            stats.index_bytes_built += merged.heap_bytes();
            self.store
                .insert(self.key(group_idx, new_sig.clone(), 0), merged);
        }
        Ok(true)
    }

    /// Prepares a P-DRILL-DOWN by refining the previous (coarser) index:
    /// only the sequences the coarse lists mention are rescanned (§4.2.2
    /// item 5). When the new spec carries a pattern slice (Qb of §5.1:
    /// slice (Assortment, Legwear), then drill Y down), only coarse lists
    /// compatible with the slice are refined — this is why Table 1's Qb
    /// touches 2,201 sequences rather than 50,524. Returns `false` if the
    /// coarse index is not cached.
    pub fn prepare_p_drill_down(
        &self,
        prev: &PatternTemplate,
        new_spec: &SCuboidSpec,
        meter: &mut ScanMeter,
        stats: &mut ExecStats,
    ) -> Result<bool> {
        let new = &new_spec.template;
        if prev.symbols != new.symbols || prev.n() != new.n() {
            return Ok(false);
        }
        for (p, n) in prev.dims.iter().zip(&new.dims) {
            if n.attr != p.attr || n.level > p.level {
                return Ok(false);
            }
        }
        let (pos_slice, slice_fp) = Self::position_slice(new_spec);
        let prev_sig = prev.signature();
        let new_sig = new.signature();
        for group_idx in 0..self.groups.groups.len() {
            if self
                .store
                .contains(&self.key(group_idx, new_sig.clone(), slice_fp))
                || self
                    .store
                    .contains(&self.key(group_idx, new_sig.clone(), 0))
            {
                continue;
            }
            let Some(coarse) = self.store.get(&self.key(group_idx, prev_sig.clone(), 0)) else {
                return Ok(false);
            };
            // A sequence containing a fine pattern necessarily contains its
            // coarse image, so the union of (slice-compatible) coarse lists
            // covers every fine pattern the query can report.
            let mut sids: Vec<u32> = Vec::new();
            let mut seen = solap_index::Bitmap::new();
            for (pattern, set) in &coarse.lists {
                if slice_fp != 0 && !self.positions_match_slice(prev, &pos_slice, pattern) {
                    continue;
                }
                for sid in set.iter() {
                    self.gov().tick()?;
                    if !seen.contains(sid) {
                        seen.insert(sid);
                        sids.push(sid);
                    }
                }
            }
            sids.sort_unstable();
            let seqs = sids
                .iter()
                .map(|&s| self.groups.sequence(s))
                .collect::<Result<Vec<_>>>()?;
            // solint: allow(governor-tick) O(1) meter touch per sid; the coarse-list collection above ticked every posting
            for &sid in &sids {
                meter.touch(sid);
            }
            let _span = metrics::span(self.gov().recorder(), Stage::IndexBuild);
            let (unfiltered, _) =
                build_index_governed(self.db, seqs, new, self.backend, self.gov())?;
            // Keep only fine lists compatible with the slice (the scan
            // enumerated every pattern of the visited sequences).
            let fine = if slice_fp == 0 {
                unfiltered
            } else {
                let mut f = InvertedIndex::new(new_sig.clone(), unfiltered.backend);
                // solint: allow(governor-tick) filters the list set of the governed rescan just above; bounded by its output
                for (k, v) in unfiltered.lists {
                    if self.positions_match_slice(new, &pos_slice, &k) {
                        f.lists.insert(k, v);
                    }
                }
                f
            };
            let fine = Arc::new(fine);
            stats.indices_built += 1;
            stats.index_bytes_built += fine.heap_bytes();
            self.store
                .insert(self.key(group_idx, new_sig.clone(), slice_fp), fine);
        }
        Ok(true)
    }

    /// Prepares a PREPEND by joining a fresh length-2 index on the left of
    /// the previous index (`L_2^{(Z,X)} ⋈ L_m`, §4.2.2 item 2). Returns
    /// `false` if the previous index is not cached.
    pub fn prepare_prepend(
        &self,
        prev: &PatternTemplate,
        new: &PatternTemplate,
        meter: &mut ScanMeter,
        stats: &mut ExecStats,
    ) -> Result<bool> {
        // Structural requirement: new = [s0] ++ prev (dims may be shared).
        if new.m() != prev.m() + 1 {
            return Ok(false);
        }
        let new_sig = new.signature();
        let prev_sig = prev.signature();
        // The tail of the new template must be structurally the previous
        // template (attr/levels equal and eq-classes isomorphic).
        let tail: Vec<_> = new_sig.per_position[1..].to_vec();
        if tail != prev_sig.per_position {
            return Ok(false);
        }
        for group_idx in 0..self.groups.groups.len() {
            if self
                .store
                .contains(&self.key(group_idx, new_sig.clone(), 0))
            {
                continue;
            }
            self.gov().check_now()?;
            let Some(prev_ix) = self.store.get(&self.key(group_idx, prev_sig.clone(), 0)) else {
                return Ok(false);
            };
            let pair_sig = TemplateSignature {
                kind: new_sig.kind,
                per_position: vec![new_sig.per_position[0], new_sig.per_position[1]],
                eq_classes: if new_sig.eq_classes[0] == new_sig.eq_classes[1] {
                    vec![0, 0]
                } else {
                    vec![0, 1]
                },
            };
            let pair_template = PatternTemplate::from_signature(&pair_sig);
            let pair_index = self.ensure_index(group_idx, &pair_template, meter, stats)?;
            let candidate = {
                let _span = metrics::span(self.gov().recorder(), Stage::IndexJoin);
                join(&pair_index, &prev_ix, new_sig.clone(), |c| {
                    new.is_instantiation(c)
                })
            };
            stats.index_joins += 1;
            let verified = Arc::new(self.verify(candidate, new, meter)?);
            stats.indices_built += 1;
            stats.index_bytes_built += verified.heap_bytes();
            self.store
                .insert(self.key(group_idx, new_sig.clone(), 0), verified);
        }
        Ok(true)
    }

    /// Precomputes the generic size-`m` index (distinct unrestricted
    /// symbols over `(attr, level)`) for every group — the offline
    /// precomputation step of §5's experiments. Returns total bytes built.
    pub fn precompute_generic(
        &self,
        attr: solap_eventdb::AttrId,
        level: usize,
        m: usize,
        kind: solap_pattern::PatternKind,
    ) -> Result<usize> {
        let names: Vec<String> = (0..m).map(|i| format!("P{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let bindings: Vec<(&str, u32, usize)> =
            name_refs.iter().map(|&n| (n, attr, level)).collect();
        let template = PatternTemplate::new(kind, &name_refs, &bindings)?;
        let mut bytes = 0;
        let mut meter = ScanMeter::new();
        let mut stats = ExecStats::default();
        for group_idx in 0..self.groups.groups.len() {
            self.gov().check_now()?;
            let ix = self.ensure_index(group_idx, &template, &mut meter, &mut stats)?;
            bytes += ix.heap_bytes();
        }
        Ok(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cb::{counter_based, CounterMode};
    use solap_eventdb::{
        build_sequence_groups, AttrLevel, CmpOp, ColumnType, EventDbBuilder, SortKey, Value,
    };
    use solap_pattern::PatternKind;

    fn fig8_db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .build()
            .unwrap();
        let seqs: [&[&str]; 4] = [
            &[
                "Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon",
            ],
            &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
            &["Clarendon", "Pentagon"],
            &["Wheaton", "Clarendon", "Deanwood", "Wheaton"],
        ];
        for (sid, stations) in seqs.iter().enumerate() {
            for (i, st) in stations.iter().enumerate() {
                let action = if i % 2 == 0 { "in" } else { "out" };
                db.push_row(&[
                    Value::Int(sid as i64),
                    Value::Int(i as i64),
                    Value::from(*st),
                    Value::from(action),
                ])
                .unwrap();
            }
        }
        // station → district: D10 = {Pentagon, Clarendon}, D20 = rest.
        db.set_base_level_name(2, "station");
        db.attach_str_level(2, "district", |s| {
            if s == "Pentagon" || s == "Clarendon" {
                "D10".into()
            } else {
                "D20".into()
            }
        })
        .unwrap();
        db
    }

    fn spec_with(db: &EventDb, syms: &[&str], level: usize, with_pred: bool) -> SCuboidSpec {
        let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
        for &s in syms {
            if !bindings.iter().any(|(n, _, _)| *n == s) {
                bindings.push((s, 2, level));
            }
        }
        let t = PatternTemplate::new(PatternKind::Substring, syms, &bindings).unwrap();
        let action = db.attr("action").unwrap();
        let mut spec = SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 1,
                ascending: true,
            }],
        );
        if with_pred {
            spec = spec.with_mpred(
                MatchPred::cmp(0, action, CmpOp::Eq, "in").and(MatchPred::cmp(
                    1,
                    action,
                    CmpOp::Eq,
                    "out",
                )),
            );
        }
        spec
    }

    fn run_both(db: &EventDb, spec: &SCuboidSpec) -> (SCuboid, SCuboid, ExecStats) {
        let groups = build_sequence_groups(db, &spec.seq).unwrap();
        let mut m1 = ScanMeter::new();
        let cb = counter_based(db, &groups, spec, CounterMode::Hash, &mut m1).unwrap();
        let store = IndexStore::default();
        let ex = IiExecutor::new(db, &groups, 42, &store, SetBackend::List);
        let mut m2 = ScanMeter::new();
        let mut stats = ExecStats::default();
        let ii = ex.execute(spec, &mut m2, &mut stats).unwrap();
        (cb, ii, stats)
    }

    #[test]
    fn ii_equals_cb_on_q3() {
        let db = fig8_db();
        let spec = spec_with(&db, &["X", "Y"], 0, true);
        let (cb, ii, stats) = run_both(&db, &spec);
        assert_eq!(cb.cells, ii.cells);
        assert!(stats.indices_built >= 1);
    }

    #[test]
    fn ii_equals_cb_on_xyyx() {
        let db = fig8_db();
        let mut spec = spec_with(&db, &["X", "Y", "Y", "X"], 0, false);
        let action = db.attr("action").unwrap();
        spec.mpred = MatchPred::all([
            MatchPred::cmp(0, action, CmpOp::Eq, "in"),
            MatchPred::cmp(1, action, CmpOp::Eq, "out"),
            MatchPred::cmp(2, action, CmpOp::Eq, "in"),
            MatchPred::cmp(3, action, CmpOp::Eq, "out"),
        ]);
        let (cb, ii, stats) = run_both(&db, &spec);
        assert_eq!(cb.cells, ii.cells);
        assert!(stats.index_joins >= 2, "must join up from L2");
    }

    #[test]
    fn ii_equals_cb_at_district_level() {
        let db = fig8_db();
        let spec = spec_with(&db, &["X", "Y"], 1, true);
        let (cb, ii, _) = run_both(&db, &spec);
        assert_eq!(cb.cells, ii.cells);
    }

    #[test]
    fn ii_equals_cb_subsequence() {
        let db = fig8_db();
        let mut spec = spec_with(&db, &["X", "Y"], 0, true);
        spec.template.kind = PatternKind::Subsequence;
        let (cb, ii, _) = run_both(&db, &spec);
        assert_eq!(cb.cells, ii.cells);
    }

    #[test]
    fn ii_equals_cb_all_matched() {
        let db = fig8_db();
        let mut spec = spec_with(&db, &["X", "Y"], 0, false);
        spec.restriction = CellRestriction::AllMatchedGo;
        let (cb, ii, _) = run_both(&db, &spec);
        assert_eq!(cb.cells, ii.cells);
    }

    #[test]
    fn iterative_append_reuses_indices() {
        let db = fig8_db();
        let groups = {
            let spec = spec_with(&db, &["X", "Y"], 0, true);
            build_sequence_groups(&db, &spec.seq).unwrap()
        };
        let store = IndexStore::default();
        let ex = IiExecutor::new(&db, &groups, 42, &store, SetBackend::List);
        // Qa = (X, Y).
        let qa = spec_with(&db, &["X", "Y"], 0, true);
        let mut meter = ScanMeter::new();
        let mut stats = ExecStats::default();
        ex.execute(&qa, &mut meter, &mut stats).unwrap();
        let builds_after_qa = stats.indices_built;
        // Qb = (X, Y, Y): the (X,Y) index must be reused; only the pair
        // index (Y,Y)… wait, (Y,Y) IS served by a repeated-pair build; in
        // total we expect strictly fewer sequence scans than 2 full passes.
        let qb = spec_with(&db, &["X", "Y", "Y"], 0, true);
        let mut stats_b = ExecStats::default();
        let mut meter_b = ScanMeter::new();
        ex.execute(&qb, &mut meter_b, &mut stats_b).unwrap();
        assert!(stats_b.index_joins >= 1);
        assert!(stats_b.indices_built >= 1);
        assert!(builds_after_qa >= 1);
        // Re-running Qa is free: the exact index is cached, trivial counting
        // only reads list lengths… but the predicate is non-trivial here, so
        // sequences in lists are verified; the *index* is not rebuilt.
        let mut stats_c = ExecStats::default();
        let mut meter_c = ScanMeter::new();
        ex.execute(&qa, &mut meter_c, &mut stats_c).unwrap();
        assert_eq!(stats_c.indices_built, 0);
        assert_eq!(stats_c.index_joins, 0);
    }

    #[test]
    fn count_by_len_fast_path_scans_nothing() {
        let db = fig8_db();
        let spec = spec_with(&db, &["X", "Y"], 0, false); // trivial predicate
        let groups = build_sequence_groups(&db, &spec.seq).unwrap();
        let store = IndexStore::default();
        let ex = IiExecutor::new(&db, &groups, 42, &store, SetBackend::List);
        // Precompute the index, then measure the query alone.
        let mut meter = ScanMeter::new();
        let mut stats = ExecStats::default();
        ex.ensure_index(0, &spec.template, &mut meter, &mut stats)
            .unwrap();
        let mut meter2 = ScanMeter::new();
        let mut stats2 = ExecStats::default();
        let ii = ex.execute(&spec, &mut meter2, &mut stats2).unwrap();
        assert_eq!(
            meter2.count(),
            0,
            "pure-count query reads only list lengths"
        );
        // And it still matches CB.
        let mut m3 = ScanMeter::new();
        let cb = counter_based(&db, &groups, &spec, CounterMode::Hash, &mut m3).unwrap();
        assert_eq!(cb.cells, ii.cells);
    }

    #[test]
    fn p_roll_up_merge_matches_recompute() {
        let db = fig8_db();
        let fine = spec_with(&db, &["X", "Y"], 0, false);
        let coarse = spec_with(&db, &["X", "Y"], 1, false);
        let groups = build_sequence_groups(&db, &fine.seq).unwrap();
        let store = IndexStore::default();
        let ex = IiExecutor::new(&db, &groups, 42, &store, SetBackend::List);
        // Run the fine query to populate its index.
        let mut meter = ScanMeter::new();
        let mut stats = ExecStats::default();
        ex.execute(&fine, &mut meter, &mut stats).unwrap();
        // Prepare the coarse index by merging.
        let ok = ex
            .prepare_p_roll_up(&fine.template, &coarse.template, &mut stats)
            .unwrap();
        assert!(ok);
        let mut meter2 = ScanMeter::new();
        let mut stats2 = ExecStats::default();
        let merged = ex.execute(&coarse, &mut meter2, &mut stats2).unwrap();
        assert_eq!(meter2.count(), 0, "P-ROLL-UP answers without scanning");
        // Equals CB at the coarse level.
        let mut m3 = ScanMeter::new();
        let cb = counter_based(&db, &groups, &coarse, CounterMode::Hash, &mut m3).unwrap();
        assert_eq!(cb.cells, merged.cells);
    }

    #[test]
    fn p_roll_up_merge_refused_for_repeated_symbols() {
        let db = fig8_db();
        let fine = spec_with(&db, &["X", "Y", "Y", "X"], 0, false);
        let coarse = spec_with(&db, &["X", "Y", "Y", "X"], 1, false);
        let groups = build_sequence_groups(&db, &fine.seq).unwrap();
        let store = IndexStore::default();
        let ex = IiExecutor::new(&db, &groups, 42, &store, SetBackend::List);
        let mut meter = ScanMeter::new();
        let mut stats = ExecStats::default();
        ex.execute(&fine, &mut meter, &mut stats).unwrap();
        let ok = ex
            .prepare_p_roll_up(&fine.template, &coarse.template, &mut stats)
            .unwrap();
        assert!(!ok, "s6 counter-example: merge must be refused");
        // The fallback (full QUERYINDICES) still gets the right answer —
        // the paper's s6 scenario: a sequence crossing stations within a
        // district must appear at the district level.
        let (cb, ii, _) = run_both(&db, &coarse);
        assert_eq!(cb.cells, ii.cells);
    }

    #[test]
    fn p_drill_down_refines_from_coarse() {
        let db = fig8_db();
        let coarse = spec_with(&db, &["X", "Y"], 1, false);
        let fine = spec_with(&db, &["X", "Y"], 0, false);
        let groups = build_sequence_groups(&db, &coarse.seq).unwrap();
        let store = IndexStore::default();
        let ex = IiExecutor::new(&db, &groups, 42, &store, SetBackend::List);
        let mut meter = ScanMeter::new();
        let mut stats = ExecStats::default();
        ex.execute(&coarse, &mut meter, &mut stats).unwrap();
        let ok = ex
            .prepare_p_drill_down(&coarse.template, &fine, &mut meter, &mut stats)
            .unwrap();
        assert!(ok);
        let mut meter2 = ScanMeter::new();
        let mut stats2 = ExecStats::default();
        let ii = ex.execute(&fine, &mut meter2, &mut stats2).unwrap();
        assert_eq!(stats2.indices_built, 0, "refined index must be reused");
        let mut m3 = ScanMeter::new();
        let cb = counter_based(&db, &groups, &fine, CounterMode::Hash, &mut m3).unwrap();
        assert_eq!(cb.cells, ii.cells);
    }

    #[test]
    fn prepend_joins_left() {
        let db = fig8_db();
        let prev = spec_with(&db, &["X", "Y"], 0, false);
        let new = spec_with(&db, &["Z", "X", "Y"], 0, false);
        let groups = build_sequence_groups(&db, &prev.seq).unwrap();
        let store = IndexStore::default();
        let ex = IiExecutor::new(&db, &groups, 42, &store, SetBackend::List);
        let mut meter = ScanMeter::new();
        let mut stats = ExecStats::default();
        ex.execute(&prev, &mut meter, &mut stats).unwrap();
        let ok = ex
            .prepare_prepend(&prev.template, &new.template, &mut meter, &mut stats)
            .unwrap();
        assert!(ok);
        let mut meter2 = ScanMeter::new();
        let mut stats2 = ExecStats::default();
        let ii = ex.execute(&new, &mut meter2, &mut stats2).unwrap();
        assert_eq!(stats2.indices_built, 0);
        let mut m3 = ScanMeter::new();
        let cb = counter_based(&db, &groups, &new, CounterMode::Hash, &mut m3).unwrap();
        assert_eq!(cb.cells, ii.cells);
    }

    #[test]
    fn bitmap_backend_equals_list_backend() {
        let db = fig8_db();
        let spec = spec_with(&db, &["X", "Y", "Y"], 0, true);
        let groups = build_sequence_groups(&db, &spec.seq).unwrap();
        let store_l = IndexStore::default();
        let ex_l = IiExecutor::new(&db, &groups, 1, &store_l, SetBackend::List);
        let store_b = IndexStore::default();
        let ex_b = IiExecutor::new(&db, &groups, 2, &store_b, SetBackend::Bitmap);
        let mut m = ScanMeter::new();
        let mut s = ExecStats::default();
        let a = ex_l.execute(&spec, &mut m, &mut s).unwrap();
        let mut m2 = ScanMeter::new();
        let mut s2 = ExecStats::default();
        let b = ex_b.execute(&spec, &mut m2, &mut s2).unwrap();
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn precompute_generic_builds_l2() {
        let db = fig8_db();
        let spec = spec_with(&db, &["X", "Y"], 0, true);
        let groups = build_sequence_groups(&db, &spec.seq).unwrap();
        let store = IndexStore::default();
        let ex = IiExecutor::new(&db, &groups, 42, &store, SetBackend::List);
        let bytes = ex
            .precompute_generic(2, 0, 2, PatternKind::Substring)
            .unwrap();
        assert!(bytes > 0);
        // The following query builds nothing new.
        let mut meter = ScanMeter::new();
        let mut stats = ExecStats::default();
        ex.execute(&spec, &mut meter, &mut stats).unwrap();
        assert_eq!(stats.indices_built, 0);
    }
}
