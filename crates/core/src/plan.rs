//! Cost-based planning over the S-cube lattice.
//!
//! The paper's §5 evaluation *measures* the cost structure of the two
//! construction strategies (per-event scan work for CB, per-sequence join
//! work for II); this module *uses* it. A [`CostModel`] holds calibrated
//! unit costs (seeded from the relative magnitudes the §5 experiments
//! exhibit, updated online via an EWMA over per-query actuals, persisted
//! alongside durable engines), and a [`Planner`] enumerates the executable
//! alternatives for a query —
//!
//! * a counter-based scan (§4.2.1),
//! * an inverted-index join ladder (§4.2.2), and
//! * reuse of a materialized finer cuboid from the repository, rolled up
//!   through the lattice partial order ([`crate::lattice::spec_le`]) —
//!
//! costs each one, and picks the cheapest. The engine executes the winner
//! under the ordinary [`QueryGovernor`] limits and feeds the observed
//! elapsed time back into the model, closing the loop the ROADMAP's
//! "cost-based planning" item left open.
//!
//! The module also owns the index-materialization advisor (formerly
//! `advisor.rs`): [`Planner::advise`] answers §4.2.2's open problem of
//! which generic indices to precompute for a workload, with its inputs
//! gathered into a [`PlanContext`] so future knobs stop multiplying
//! function arities.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use solap_eventdb::{AttrId, Error, EventDb, QueryGovernor, Result, SequenceGroups};
use solap_index::{build_index, SetBackend};
use solap_pattern::{AggFunc, AggValue, CellRestriction, PatternKind, PatternTemplate};

use crate::cuboid::{CellKey, SCuboid};
use crate::lattice::spec_le;
use crate::spec::SCuboidSpec;

/// EWMA smoothing factor for online calibration: one observation moves a
/// unit cost 20% of the way to the sample, so the model adapts within a
/// handful of queries without thrashing on one outlier.
const EWMA_ALPHA: f64 = 0.2;

/// Fallback events-per-sequence ratio when the sequence groups have not
/// been built yet (EXPLAIN must not build them): `D ≈ E / 4`.
const ESTIMATED_EVENTS_PER_SEQUENCE: u64 = 4;

/// Seed unit costs in nanoseconds. The *ratios* are what matters — they
/// are chosen so that, before any calibration, the planner reproduces the
/// legacy `Strategy::Auto` heuristic exactly (II for indexable templates,
/// CB for subsequence templates with `m > 3`); absolute values converge to
/// the host machine via the EWMA.
const SEED_CB_SCAN_NS: f64 = 120.0;
/// Seed per-event cost of the II base-index build scan.
const SEED_II_BUILD_NS: f64 = 60.0;
/// Seed per-sequence, per-ladder-rung cost of the II join phase.
const SEED_II_JOIN_NS: f64 = 10.0;
/// Seed per-source-cell cost of an ancestor roll-up merge.
const SEED_REUSE_MERGE_NS: f64 = 150.0;

/// How many repository-backed reuse candidates the planner costs per
/// query (most-recently-executed first).
const MAX_REUSE_CANDIDATES: usize = 4;

/// Minimum work units (events, joins or cells) a query must have executed
/// for its timing to calibrate the model. Below this, elapsed time is
/// dominated by fixed per-query overhead (lock acquisition, allocation,
/// cache probes), and dividing it by a tiny unit count would teach the
/// model wildly inflated per-unit costs.
const MIN_CALIBRATION_UNITS: u64 = 1_000;

/// The join-ladder rung count per sequence, as a function of template
/// length and kind: a SUBSTRING ladder joins adjacent positions (`m - 1`
/// rungs), while a SUBSEQUENCE ladder must enumerate gapped combinations,
/// which grows combinatorially — modeled as `4^(m-1)`, matching the
/// legacy heuristic's crossover at `m > 3`.
fn ladder(m: usize, kind: PatternKind) -> f64 {
    match kind {
        PatternKind::Substring => m.saturating_sub(1).max(1) as f64,
        PatternKind::Subsequence => {
            let rungs = m.saturating_sub(1).min(31) as i32;
            4f64.powi(rungs)
        }
    }
}

/// A costed prediction of what one plan alternative will do.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostEstimate {
    /// Events the plan scans (CB: all of them; II: base build only).
    pub events_scanned: u64,
    /// Events scanned specifically to build missing base indices.
    pub index_build_events: u64,
    /// Predicted join-ladder operations (sequences × rungs).
    pub index_joins: u64,
    /// Source cells merged (ancestor-reuse plans only).
    pub cells_merged: u64,
    /// Predicted total cost in nanoseconds — the argmin key.
    pub total_nanos: f64,
}

/// One executable alternative for a query.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanChoice {
    /// Counter-based scan of every group (§4.2.1).
    CounterBased,
    /// QUERYINDICES join ladder over inverted lists (§4.2.2).
    InvertedIndex,
    /// Roll a materialized finer cuboid up the lattice instead of touching
    /// the event data at all.
    AncestorRollUp {
        /// The materialized finer spec whose cuboid is merged up
        /// (boxed: a spec is ~280 bytes, the other variants are empty).
        source: Box<SCuboidSpec>,
    },
}

/// A fully costed plan alternative.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// What the plan does.
    pub choice: PlanChoice,
    /// What the model predicts it costs.
    pub cost: CostEstimate,
    /// A one-line human rationale ("counter scan of 16 events", …).
    pub why: String,
}

impl QueryPlan {
    /// The plan's short strategy label (`"CB"`, `"II"`, `"reuse"`).
    pub fn label(&self) -> &'static str {
        match self.choice {
            PlanChoice::CounterBased => "CB",
            PlanChoice::InvertedIndex => "II",
            PlanChoice::AncestorRollUp { .. } => "reuse",
        }
    }
}

/// What the planner knows about a query before executing it.
#[derive(Debug, Clone)]
pub struct PlanInputs<'a> {
    /// The query.
    pub spec: &'a SCuboidSpec,
    /// Events in the database snapshot.
    pub events: u64,
    /// Sequence count when the groups are already built/cached; `None`
    /// makes the model estimate `E / 4`.
    pub sequences: Option<u64>,
    /// Whether a base inverted index (any cached signature prefix ≥ 2) is
    /// already stored, making the II build phase free.
    pub base_index_cached: bool,
    /// Materialized finer cuboids eligible for roll-up reuse, as
    /// `(source spec, source cell count)` — pre-filtered by
    /// [`reuse_safe`].
    pub ancestors: Vec<(SCuboidSpec, usize)>,
}

/// One alternative of a [`PlanReport`], render-ready.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAlternative {
    /// Strategy label (`"CB"`, `"II"`, `"reuse"`).
    pub label: String,
    /// One-line description of what the alternative would do.
    pub detail: String,
    /// The model's prediction for it.
    pub cost: CostEstimate,
    /// Whether the planner picked it.
    pub chosen: bool,
}

/// The structured result of `EXPLAIN`: everything a surface needs to
/// render the plan as text or JSON. Produced by the engine; rendering
/// lives in the dispatch layer so the wire protocol and the REPL cannot
/// drift apart.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// The query, rendered in the Figure-3 language.
    pub query: String,
    /// How the strategy was chosen: `"cost"` (planner), `"heuristic"`
    /// (`SOLAP_PLAN=off` legacy auto rule) or `"configured"` (fixed).
    pub mode: &'static str,
    /// The chosen strategy label.
    pub strategy: String,
    /// Why it was chosen.
    pub why: String,
    /// Sid-set backend, rendered.
    pub backend: String,
    /// Worker threads.
    pub threads: usize,
    /// Events the select/cluster steps scan.
    pub events: u64,
    /// The `WHERE` filter, rendered (`"TRUE"` when absent).
    pub filter: String,
    /// `SEQUENCE BY` key count.
    pub sort_keys: usize,
    /// `SEQUENCE GROUP BY` attribute count.
    pub group_attrs: usize,
    /// Template kind, rendered (`"Substring"` / `"Subsequence"`).
    pub template_kind: String,
    /// Template length.
    pub m: usize,
    /// Iceberg minimum support, when set.
    pub min_support: Option<u64>,
    /// Whether the cuboid repository may answer the query outright.
    pub use_cuboid_repo: bool,
    /// Every alternative the planner considered, chosen one flagged.
    pub alternatives: Vec<PlanAlternative>,
}

impl PlanReport {
    /// The chosen alternative, if any was flagged.
    pub fn chosen(&self) -> Option<&PlanAlternative> {
        self.alternatives.iter().find(|a| a.chosen)
    }
}

/// Calibrated unit costs mapping the paper's §5 quantities (events
/// scanned, sequences joined, cells touched) to predicted nanoseconds.
///
/// All four units are `f64`s stored as atomic bit patterns, so estimation
/// and calibration are lock-free and safe from any thread; estimates
/// tolerate any interleaving of concurrent updates.
#[derive(Debug)]
pub struct CostModel {
    /// CB: nanoseconds per event scanned.
    cb_scan_ns: AtomicU64,
    /// II build: nanoseconds per event scanned into base lists.
    ii_build_ns: AtomicU64,
    /// II join: nanoseconds per sequence per ladder rung.
    ii_join_ns: AtomicU64,
    /// Reuse: nanoseconds per source cell merged.
    reuse_merge_ns: AtomicU64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::seeded()
    }
}

impl CostModel {
    /// A model at the seed constants (uncalibrated).
    pub fn seeded() -> Self {
        CostModel {
            cb_scan_ns: AtomicU64::new(SEED_CB_SCAN_NS.to_bits()),
            ii_build_ns: AtomicU64::new(SEED_II_BUILD_NS.to_bits()),
            ii_join_ns: AtomicU64::new(SEED_II_JOIN_NS.to_bits()),
            reuse_merge_ns: AtomicU64::new(SEED_REUSE_MERGE_NS.to_bits()),
        }
    }

    fn read(cell: &AtomicU64) -> f64 {
        // ord: each unit cost is an independent cell; estimates tolerate
        // any interleaving with concurrent calibration stores
        f64::from_bits(cell.load(Ordering::Relaxed))
    }

    fn write(cell: &AtomicU64, value: f64) {
        if !value.is_finite() || value <= 0.0 {
            return;
        }
        // ord: see read() — last-writer-wins is fine for a smoothed estimate
        cell.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Blends one observed sample into a unit cost (EWMA).
    fn blend(cell: &AtomicU64, sample: f64) {
        if !sample.is_finite() || sample <= 0.0 {
            return;
        }
        let old = Self::read(cell);
        Self::write(cell, EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * old);
    }

    /// The current unit costs as `(name, nanoseconds)` pairs — the
    /// persistence format and the `.repo`/bench surfaces use these names.
    pub fn units(&self) -> [(&'static str, f64); 4] {
        [
            ("cb_scan_ns", Self::read(&self.cb_scan_ns)),
            ("ii_build_ns", Self::read(&self.ii_build_ns)),
            ("ii_join_ns", Self::read(&self.ii_join_ns)),
            ("reuse_merge_ns", Self::read(&self.reuse_merge_ns)),
        ]
    }

    /// Predicted cost of a counter-based scan over `events` events.
    pub fn estimate_cb(&self, events: u64) -> CostEstimate {
        CostEstimate {
            events_scanned: events,
            total_nanos: Self::read(&self.cb_scan_ns) * events as f64,
            ..Default::default()
        }
    }

    /// Predicted cost of the inverted-index path: a base-build scan over
    /// `events` (free when `base_cached`), then a join ladder over
    /// `sequences` at [`ladder`]`(m, kind)` rungs each.
    pub fn estimate_ii(
        &self,
        events: u64,
        sequences: u64,
        m: usize,
        kind: PatternKind,
        base_cached: bool,
    ) -> CostEstimate {
        let build_events = if base_cached { 0 } else { events };
        let joins = sequences as f64 * ladder(m, kind);
        CostEstimate {
            events_scanned: build_events,
            index_build_events: build_events,
            index_joins: joins as u64,
            cells_merged: 0,
            total_nanos: Self::read(&self.ii_build_ns) * build_events as f64
                + Self::read(&self.ii_join_ns) * joins,
        }
    }

    /// Predicted cost of rolling up a materialized cuboid with
    /// `source_cells` cells.
    pub fn estimate_reuse(&self, source_cells: u64) -> CostEstimate {
        CostEstimate {
            cells_merged: source_cells,
            total_nanos: Self::read(&self.reuse_merge_ns) * source_cells as f64,
            ..Default::default()
        }
    }

    /// Calibrates the CB unit from an executed counter scan. Queries below
    /// [`MIN_CALIBRATION_UNITS`] events are ignored — their elapsed time is
    /// fixed overhead, not per-event work.
    pub fn observe_cb(&self, elapsed_ns: u64, events: u64) {
        if events >= MIN_CALIBRATION_UNITS {
            Self::blend(&self.cb_scan_ns, elapsed_ns as f64 / events as f64);
        }
    }

    /// Calibrates the II build unit from a query that built base indices
    /// (the build scan dominates such queries).
    pub fn observe_ii_build(&self, elapsed_ns: u64, events: u64) {
        if events >= MIN_CALIBRATION_UNITS {
            Self::blend(&self.ii_build_ns, elapsed_ns as f64 / events as f64);
        }
    }

    /// Calibrates the II join unit from a build-free query, given the
    /// predicted join count it executed.
    pub fn observe_ii_join(&self, elapsed_ns: u64, joins: u64) {
        if joins >= MIN_CALIBRATION_UNITS {
            Self::blend(&self.ii_join_ns, elapsed_ns as f64 / joins as f64);
        }
    }

    /// Calibrates the reuse unit from an executed ancestor roll-up.
    pub fn observe_reuse(&self, elapsed_ns: u64, cells_merged: u64) {
        if cells_merged >= MIN_CALIBRATION_UNITS {
            Self::blend(
                &self.reuse_merge_ns,
                elapsed_ns as f64 / cells_merged as f64,
            );
        }
    }

    /// Predicted joins for an II execution of `spec` over `sequences`
    /// sequences — the denominator [`CostModel::observe_ii_join`] expects.
    pub fn predicted_joins(spec: &SCuboidSpec, sequences: u64) -> u64 {
        (sequences as f64 * ladder(spec.template.m(), spec.template.kind)) as u64
    }

    /// Persists the unit costs as `name value` lines.
    pub fn save_to(&self, path: &Path) -> Result<()> {
        let mut out = String::new();
        for (name, v) in self.units() {
            out.push_str(&format!("{name} {v}\n"));
        }
        std::fs::write(path, out)
            .map_err(|e| Error::Internal(format!("cost model save to {}: {e}", path.display())))
    }

    /// Loads persisted unit costs, falling back to the seeds for missing,
    /// unparseable or non-positive entries (and entirely when the file is
    /// absent — a fresh durable engine starts at the seeds).
    pub fn load_from(path: &Path) -> Self {
        let model = CostModel::seeded();
        let Ok(text) = std::fs::read_to_string(path) else {
            return model;
        };
        for line in text.lines() {
            let mut it = line.split_whitespace();
            let (Some(name), Some(raw)) = (it.next(), it.next()) else {
                continue;
            };
            let Ok(v) = raw.parse::<f64>() else { continue };
            match name {
                "cb_scan_ns" => Self::write(&model.cb_scan_ns, v),
                "ii_build_ns" => Self::write(&model.ii_build_ns, v),
                "ii_join_ns" => Self::write(&model.ii_join_ns, v),
                "reuse_merge_ns" => Self::write(&model.reuse_merge_ns, v),
                _ => {}
            }
        }
        model
    }
}

/// Whether the cuboid of `source` can be rolled up into the cuboid of
/// `target` with guaranteed bit-identical results to direct construction.
///
/// Sound merges require `target ≤ source` in the lattice order plus
/// restrictions the partial order alone does not capture:
///
/// * equal template length — a shorter window changes which occurrences
///   exist, so DE-HEAD/DE-TAIL derivations must re-match;
/// * no iceberg threshold on the target — `min_support` filtered cells
///   out of the source, so merged counts would undercount (and `spec_le`
///   forces equal thresholds, so a thresholded pair is rejected here);
/// * no AVG — finished averages cannot be re-merged without their counts;
/// * a pattern dimension may only coarsen if its symbol occurs once
///   (repeated symbols mean value-equality constraints, which differ
///   across levels) and the restriction is ALL-MATCHED — the
///   LEFT-MAXIMALITY restrictions count per `(sequence, cell)`, so
///   merging fine cells into one coarse cell would double-count a
///   sequence that hit several fine cells. Global-dimension roll-ups and
///   removals are safe under any restriction: they re-bucket whole
///   groups without changing per-group match sets.
pub fn reuse_safe(target: &SCuboidSpec, source: &SCuboidSpec) -> bool {
    if target.fingerprint() == source.fingerprint() {
        return false; // identity: the repository fast path handles it
    }
    if !spec_le(target, source) {
        return false;
    }
    if target.template.m() != source.template.m() {
        return false;
    }
    if target.min_support.is_some() || matches!(target.agg, AggFunc::Avg(..)) {
        return false;
    }
    // Equal m ⇒ the template_le window offset is 0: dimension i of the
    // target corresponds to the source dimension at the same positions.
    let mut pattern_coarsened = false;
    for (i, td) in target.template.dims.iter().enumerate() {
        let Some(p) = target.template.symbols.iter().position(|&s| s == i) else {
            return false;
        };
        let Some(sd) = source
            .template
            .symbols
            .get(p)
            .and_then(|&sj| source.template.dims.get(sj))
        else {
            return false;
        };
        if sd.attr != td.attr || td.level < sd.level {
            return false;
        }
        if td.level > sd.level {
            pattern_coarsened = true;
            if target.template.symbols.iter().filter(|&&s| s == i).count() != 1 {
                return false;
            }
        }
    }
    if pattern_coarsened && target.restriction != CellRestriction::AllMatchedGo {
        return false;
    }
    for t in &target.seq.group_by {
        let Some(s) = source.seq.group_by.iter().find(|s| s.attr == t.attr) else {
            return false;
        };
        if t.level < s.level {
            return false;
        }
    }
    true
}

/// Merges two finished aggregate values under `agg`. `None` when the
/// aggregate is not merge-closed (AVG) or the shapes disagree.
fn merge_values(agg: AggFunc, a: AggValue, b: AggValue) -> Option<AggValue> {
    match (agg, a, b) {
        (AggFunc::Count, AggValue::Count(x), AggValue::Count(y)) => Some(AggValue::Count(x + y)),
        (AggFunc::Sum(..), AggValue::Float(x), AggValue::Float(y)) => Some(AggValue::Float(x + y)),
        (AggFunc::Sum(..), AggValue::Count(x), AggValue::Count(y)) => Some(AggValue::Count(x + y)),
        (AggFunc::Min(_), AggValue::Float(x), AggValue::Float(y)) => {
            Some(AggValue::Float(x.min(y)))
        }
        (AggFunc::Min(_), AggValue::Count(x), AggValue::Count(y)) => {
            Some(AggValue::Count(x.min(y)))
        }
        (AggFunc::Max(_), AggValue::Float(x), AggValue::Float(y)) => {
            Some(AggValue::Float(x.max(y)))
        }
        (AggFunc::Max(_), AggValue::Count(x), AggValue::Count(y)) => {
            Some(AggValue::Count(x.max(y)))
        }
        _ => None,
    }
}

/// Rolls a materialized `source` cuboid up to `target`'s dimensionality:
/// every cell key is mapped through the concept hierarchies
/// ([`EventDb::map_up`]), dropped global dimensions are projected away,
/// and colliding cells merge their aggregates. Returns the rolled-up
/// cuboid and the number of source cells merged.
///
/// The caller must have established [`reuse_safe`]`(target, source_spec)`;
/// structural surprises (incomplete hierarchies, mismatched dimensions)
/// surface as errors so the engine can fall back to direct construction.
/// Runs under the governor: one tick per source cell, one cell charge per
/// distinct output cell.
pub fn roll_up_cuboid(
    db: &EventDb,
    source_spec: &SCuboidSpec,
    source: &SCuboid,
    target: &SCuboidSpec,
    gov: &QueryGovernor,
) -> Result<(SCuboid, u64)> {
    let bad = |msg: &str| Error::InvalidOperation(format!("ancestor reuse: {msg}"));
    // (source key index, attr, from level, to level) per target dimension.
    let mut global_map: Vec<(usize, AttrId, usize, usize)> =
        Vec::with_capacity(target.seq.group_by.len());
    for t in &target.seq.group_by {
        let Some((si, s)) = source_spec
            .seq
            .group_by
            .iter()
            .enumerate()
            .find(|(_, s)| s.attr == t.attr)
        else {
            return Err(bad("target global dimension missing from source"));
        };
        if t.level < s.level {
            return Err(bad("target global dimension finer than source"));
        }
        global_map.push((si, t.attr, s.level, t.level));
    }
    let mut pattern_map: Vec<(usize, AttrId, usize, usize)> =
        Vec::with_capacity(target.template.dims.len());
    for (i, td) in target.template.dims.iter().enumerate() {
        let Some(p) = target.template.symbols.iter().position(|&s| s == i) else {
            return Err(bad("unreferenced target pattern dimension"));
        };
        let Some((sj, sd)) = source
            .pattern_dims
            .get(
                source_spec
                    .template
                    .symbols
                    .get(p)
                    .copied()
                    .unwrap_or(usize::MAX),
            )
            .map(|sd| {
                (
                    source_spec.template.symbols.get(p).copied().unwrap_or(0),
                    sd,
                )
            })
        else {
            return Err(bad("template windows do not line up"));
        };
        if sd.attr != td.attr || td.level < sd.level {
            return Err(bad("target pattern dimension incompatible with source"));
        }
        pattern_map.push((sj, td.attr, sd.level, td.level));
    }
    let mut out = SCuboid::new(
        target.seq.group_by.clone(),
        target.template.dims.clone(),
        target.agg,
    );
    let mut merged: u64 = 0;
    for (key, value) in &source.cells {
        gov.tick()?;
        merged += 1;
        let mut global = Vec::with_capacity(global_map.len());
        for &(si, attr, from, to) in &global_map {
            let v = key
                .global
                .get(si)
                .copied()
                .ok_or_else(|| bad("source cell key narrower than its dimensions"))?;
            global.push(if to == from {
                v
            } else {
                db.map_up(attr, from, v, to)?
            });
        }
        let mut pattern = Vec::with_capacity(pattern_map.len());
        for &(sj, attr, from, to) in &pattern_map {
            let v = key
                .pattern
                .get(sj)
                .copied()
                .ok_or_else(|| bad("source cell key narrower than its dimensions"))?;
            pattern.push(if to == from {
                v
            } else {
                db.map_up(attr, from, v, to)?
            });
        }
        match out.cells.entry(CellKey { global, pattern }) {
            Entry::Occupied(mut e) => {
                let combined = merge_values(target.agg, *e.get(), *value)
                    .ok_or_else(|| bad("aggregate values are not merge-closed"))?;
                e.insert(combined);
            }
            Entry::Vacant(e) => {
                gov.charge_cells(1)?;
                e.insert(*value);
            }
        }
    }
    Ok((out, merged))
}

/// The cost-based planner: enumerates alternatives, costs them against a
/// [`CostModel`], and picks the cheapest.
#[derive(Debug, Clone, Copy)]
pub struct Planner<'a> {
    model: &'a CostModel,
}

impl<'a> Planner<'a> {
    /// A planner over the given (shared, concurrently calibrated) model.
    pub fn new(model: &'a CostModel) -> Self {
        Planner { model }
    }

    /// Enumerates and costs every alternative for `inputs`, returning the
    /// index of the cheapest (ties keep the earliest) and the full list —
    /// CB first, II second, then each reuse candidate in the order given.
    pub fn plan(&self, inputs: &PlanInputs<'_>) -> (usize, Vec<QueryPlan>) {
        let m = inputs.spec.template.m();
        let kind = inputs.spec.template.kind;
        let sequences = inputs
            .sequences
            .unwrap_or_else(|| (inputs.events / ESTIMATED_EVENTS_PER_SEQUENCE).max(1));
        let ii =
            self.model
                .estimate_ii(inputs.events, sequences, m, kind, inputs.base_index_cached);
        let mut plans = vec![
            QueryPlan {
                choice: PlanChoice::CounterBased,
                cost: self.model.estimate_cb(inputs.events),
                why: format!("counter scan of {} events", inputs.events),
            },
            QueryPlan {
                choice: PlanChoice::InvertedIndex,
                cost: ii,
                why: if inputs.base_index_cached {
                    format!(
                        "join ladder over cached base lists ({} joins)",
                        ii.index_joins
                    )
                } else {
                    format!(
                        "build base lists over {} events, then {} joins",
                        inputs.events, ii.index_joins
                    )
                },
            },
        ];
        for (source, cells) in &inputs.ancestors {
            plans.push(QueryPlan {
                choice: PlanChoice::AncestorRollUp {
                    source: Box::new(source.clone()),
                },
                cost: self.model.estimate_reuse(*cells as u64),
                why: format!("roll up {cells} cells from a materialized finer cuboid"),
            });
        }
        let mut chosen = 0;
        let mut best = f64::INFINITY;
        for (i, p) in plans.iter().enumerate() {
            if p.cost.total_nanos < best {
                best = p.cost.total_nanos;
                chosen = i;
            }
        }
        (chosen, plans)
    }

    /// Gathers reuse candidates for `target` from `candidates` (most
    /// recently executed first): the [`reuse_safe`] ones whose cuboid
    /// `lookup` can actually produce, deduplicated by fingerprint and
    /// capped at [`MAX_REUSE_CANDIDATES`].
    pub fn reuse_candidates(
        target: &SCuboidSpec,
        candidates: impl Iterator<Item = SCuboidSpec>,
        mut lookup: impl FnMut(&SCuboidSpec) -> Option<usize>,
    ) -> Vec<(SCuboidSpec, usize)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for c in candidates {
            if out.len() >= MAX_REUSE_CANDIDATES {
                break;
            }
            if !seen.insert(c.fingerprint()) || !reuse_safe(target, &c) {
                continue;
            }
            if let Some(cells) = lookup(&c) {
                out.push((c, cells));
            }
        }
        out
    }

    /// Recommends which generic indices to precompute for the workload in
    /// `ctx`, within its byte budget — the one advisory entry point (the
    /// former `advisor::advise` / `advise_with_backend` pair).
    pub fn advise(ctx: &PlanContext<'_>) -> Result<Advice> {
        let total_seqs = ctx.groups.total_sequences as f64;
        let mut candidates = Vec::new();
        for (attr, level, kind, m) in candidates_for(ctx.workload, 6) {
            let estimated_bytes = estimate_bytes(
                ctx.db,
                ctx.groups,
                attr,
                level,
                kind,
                m,
                ctx.sample,
                ctx.backend,
            )?;
            // Benefit: every query on this lane with template length ≥ m
            // avoids the full base-build scan (D sequences) on its first
            // run, and deeper prefixes save join/verify rungs —
            // approximated as one D-scan per rung covered.
            let mut benefit = 0.0;
            for q in ctx.workload {
                let t = &q.spec.template;
                let on_lane =
                    t.dims.iter().any(|d| d.attr == attr && d.level == level) && t.kind == kind;
                if on_lane && t.m() >= m {
                    benefit += q.frequency * total_seqs * (m - 1) as f64;
                }
            }
            candidates.push(Candidate {
                attr,
                level,
                m,
                kind,
                estimated_bytes,
                benefit,
            });
        }
        // Greedy by marginal benefit per byte. A longer index on the same
        // lane subsumes the shorter ones' benefit, so after picking one,
        // re-derive marginal benefits: shorter prefixes on the lane become
        // redundant for the queries the pick covers; longer ones only add
        // their extra rungs.
        let mut advice = Advice::default();
        let mut remaining = candidates;
        let mut picked_per_lane: HashMap<(AttrId, usize, PatternKind), usize> = HashMap::new();
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (i, c) in remaining.iter().enumerate() {
                let lane = (c.attr, c.level, c.kind);
                let covered = picked_per_lane.get(&lane).copied().unwrap_or(1);
                if c.m <= covered {
                    continue; // subsumed
                }
                let marginal = c.benefit * ((c.m - covered) as f64 / (c.m - 1) as f64);
                if c.estimated_bytes + advice.total_bytes > ctx.byte_budget {
                    continue;
                }
                let score = marginal / (c.estimated_bytes.max(1) as f64);
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((i, score));
                }
            }
            let Some((i, _)) = best else { break };
            let c = remaining.remove(i);
            picked_per_lane.insert((c.attr, c.level, c.kind), c.m);
            advice.total_bytes += c.estimated_bytes;
            advice.chosen.push(c);
        }
        advice.rejected = remaining;
        Ok(advice)
    }
}

/// Everything [`Planner::advise`] consumes, in one place: adding a future
/// input (e.g. observed per-lane hit rates) extends this struct instead of
/// growing a free function's arity.
#[derive(Clone, Copy)]
pub struct PlanContext<'a> {
    /// The event database.
    pub db: &'a EventDb,
    /// Prebuilt sequence groups of the workload's (shared) sequence spec.
    pub groups: &'a SequenceGroups,
    /// The representative workload with frequencies.
    pub workload: &'a [WorkloadQuery],
    /// Byte budget for materialized indices.
    pub byte_budget: usize,
    /// Sequences to sample for size estimation.
    pub sample: usize,
    /// Sid-set encoding the estimates are sized under.
    pub backend: SetBackend,
}

/// A candidate generic index.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The attribute the index keys on.
    pub attr: AttrId,
    /// The abstraction level.
    pub level: usize,
    /// Pattern length `m`.
    pub m: usize,
    /// Substring or subsequence.
    pub kind: PatternKind,
    /// Estimated bytes (from the sample build, scaled).
    pub estimated_bytes: usize,
    /// Estimated benefit (frequency-weighted sequences-scanned saved).
    pub benefit: f64,
}

/// The advisor's output: chosen candidates, in pick order.
#[derive(Debug, Clone, Default)]
pub struct Advice {
    /// The picks, highest benefit-per-byte first.
    pub chosen: Vec<Candidate>,
    /// Candidates considered but not chosen.
    pub rejected: Vec<Candidate>,
    /// Total estimated bytes of the chosen set.
    pub total_bytes: usize,
}

/// Workload entry: a query and how often it is expected to run.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// The query.
    pub spec: SCuboidSpec,
    /// Relative frequency (weight).
    pub frequency: f64,
}

/// Builds candidate generic indices for a workload: for every `(attr,
/// level, kind)` lane used by some query template, lengths `2..=max_m`
/// (capped by the longest template on that lane).
fn candidates_for(
    workload: &[WorkloadQuery],
    max_m: usize,
) -> Vec<(AttrId, usize, PatternKind, usize)> {
    let mut lanes: HashMap<(AttrId, usize, PatternKind), usize> = HashMap::new();
    for q in workload {
        let t = &q.spec.template;
        for d in &t.dims {
            let e = lanes.entry((d.attr, d.level, t.kind)).or_insert(0);
            *e = (*e).max(t.m());
        }
    }
    let mut out = Vec::new();
    for ((attr, level, kind), longest) in lanes {
        for m in 2..=longest.min(max_m) {
            out.push((attr, level, kind, m));
        }
    }
    out.sort_by_key(|&(a, l, k, m)| (a, l, k == PatternKind::Subsequence, m));
    out
}

/// Estimates a candidate's size by building it over a sample of sequences
/// and scaling linearly (list entries grow linearly with sequence count;
/// the key space saturates, so linear scaling is a safe over-estimate).
#[allow(clippy::too_many_arguments)]
fn estimate_bytes(
    db: &EventDb,
    groups: &SequenceGroups,
    attr: AttrId,
    level: usize,
    kind: PatternKind,
    m: usize,
    sample: usize,
    backend: SetBackend,
) -> Result<usize> {
    let names: Vec<String> = (0..m).map(|i| format!("P{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let bindings: Vec<(&str, AttrId, usize)> =
        name_refs.iter().map(|&n| (n, attr, level)).collect();
    let template = PatternTemplate::new(kind, &name_refs, &bindings)?;
    let total = groups.total_sequences.max(1);
    let take = sample.min(total);
    let seqs = groups.iter_sequences().take(take);
    let (index, _) = build_index(db, seqs, &template, backend)?;
    Ok(index.heap_bytes() * total / take.max(1))
}

/// Materializes the advice into an engine's index store; returns the bytes
/// actually built.
pub fn apply_advice(
    engine: &crate::engine::Engine,
    workload: &[WorkloadQuery],
    advice: &Advice,
) -> Result<usize> {
    let mut built = 0;
    for c in &advice.chosen {
        // Precompute against every distinct sequence-group spec in the
        // workload that uses this lane.
        let mut done = std::collections::HashSet::new();
        for q in workload {
            let uses = q
                .spec
                .template
                .dims
                .iter()
                .any(|d| d.attr == c.attr && d.level == c.level);
            if uses && done.insert(q.spec.seq.fingerprint()) {
                built += engine.precompute_index(&q.spec, c.attr, c.level, c.m)?;
            }
        }
    }
    Ok(built)
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{AttrLevel, ColumnType, EventDbBuilder, SortKey, Value};
    use solap_pattern::PatternTemplate;

    fn db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .build()
            .unwrap();
        for (sid, st) in [
            (0, "Pentagon"),
            (0, "Wheaton"),
            (1, "Clarendon"),
            (1, "Glenmont"),
        ] {
            db.push_row(&[Value::Int(sid), Value::from(st)]).unwrap();
        }
        db.set_base_level_name(1, "station");
        db.attach_str_level(1, "district", |s| {
            if s == "Pentagon" || s == "Clarendon" {
                "D10".into()
            } else {
                "D20".into()
            }
        })
        .unwrap();
        db
    }

    fn spec(syms: &[&str], levels: &[usize], kind: PatternKind) -> SCuboidSpec {
        let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
        for (i, &s) in syms.iter().enumerate() {
            if !bindings.iter().any(|(n, _, _)| *n == s) {
                bindings.push((s, 1, levels[i]));
            }
        }
        let t = PatternTemplate::new(kind, syms, &bindings).unwrap();
        SCuboidSpec::new(
            t,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 0,
                ascending: true,
            }],
        )
    }

    fn inputs<'a>(s: &'a SCuboidSpec, events: u64, sequences: u64) -> PlanInputs<'a> {
        PlanInputs {
            spec: s,
            events,
            sequences: Some(sequences),
            base_index_cached: false,
            ancestors: Vec::new(),
        }
    }

    #[test]
    fn ladder_models_the_combinatorial_cliff() {
        assert_eq!(ladder(2, PatternKind::Substring), 1.0);
        assert_eq!(ladder(5, PatternKind::Substring), 4.0);
        assert_eq!(ladder(2, PatternKind::Subsequence), 4.0);
        assert_eq!(ladder(4, PatternKind::Subsequence), 64.0);
        assert!(ladder(40, PatternKind::Subsequence).is_finite());
    }

    #[test]
    fn seed_costs_reproduce_the_legacy_auto_heuristic() {
        let model = CostModel::seeded();
        let planner = Planner::new(&model);
        // Indexable substring: II wins cold (fig-8 shape, E=16, D=4).
        let s = spec(&["X", "Y"], &[0, 0], PatternKind::Substring);
        let (chosen, plans) = planner.plan(&inputs(&s, 16, 4));
        assert_eq!(plans[chosen].label(), "II");
        // Short subsequences still index.
        let s = spec(&["A", "B", "C"], &[0; 3], PatternKind::Subsequence);
        let (chosen, plans) = planner.plan(&inputs(&s, 16, 4));
        assert_eq!(plans[chosen].label(), "II");
        // m > 3 subsequences fall back to counters, even with cached base
        // lists (the join ladder alone is combinatorial).
        let s = spec(&["A", "B", "C", "D"], &[0; 4], PatternKind::Subsequence);
        let (chosen, plans) = planner.plan(&inputs(&s, 16, 4));
        assert_eq!(plans[chosen].label(), "CB");
        let mut cached = inputs(&s, 16, 4);
        cached.base_index_cached = true;
        let (chosen, plans) = planner.plan(&cached);
        assert_eq!(plans[chosen].label(), "CB");
    }

    #[test]
    fn cheap_ancestor_reuse_wins() {
        let model = CostModel::seeded();
        let planner = Planner::new(&model);
        let s = spec(&["X", "Y"], &[1, 1], PatternKind::Substring);
        let source = spec(&["X", "Y"], &[0, 0], PatternKind::Substring);
        let mut i = inputs(&s, 100_000, 25_000);
        i.ancestors = vec![(source, 10)];
        let (chosen, plans) = planner.plan(&i);
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[chosen].label(), "reuse");
        assert!(plans[chosen].cost.total_nanos < plans[0].cost.total_nanos);
        assert!(plans[chosen].cost.total_nanos < plans[1].cost.total_nanos);
    }

    #[test]
    fn ewma_calibration_moves_units() {
        let model = CostModel::seeded();
        let before = model.units()[0].1;
        // Observe a much slower CB scan than seeded: 1µs per event.
        model.observe_cb(1_000_000, 1_000);
        let after = model.units()[0].1;
        assert!(after > before, "{before} -> {after}");
        // Blend is bounded by the sample.
        assert!(after < 1_000.0);
        // Degenerate observations are ignored.
        model.observe_ii_join(1_000, 0);
        model.observe_reuse(0, 10);
        assert_eq!(model.units()[3].1, SEED_REUSE_MERGE_NS);
    }

    #[test]
    fn persistence_roundtrips_and_tolerates_garbage() {
        let dir = std::env::temp_dir().join(format!("solap-plan-model-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("cost_model.tsv");
        let model = CostModel::seeded();
        model.observe_cb(1_000_000, 1_000);
        model.save_to(&path).unwrap();
        let loaded = CostModel::load_from(&path);
        assert_eq!(loaded.units(), model.units());
        // Garbage lines and bad values fall back to seeds.
        std::fs::write(
            &path,
            "cb_scan_ns nan\nii_build_ns -4\nwhat\nii_join_ns 2.5\n",
        )
        .unwrap();
        let partial = CostModel::load_from(&path);
        assert_eq!(partial.units()[0].1, SEED_CB_SCAN_NS);
        assert_eq!(partial.units()[1].1, SEED_II_BUILD_NS);
        assert_eq!(partial.units()[2].1, 2.5);
        // Absent file: pure seeds.
        let absent = CostModel::load_from(&dir.join("nope.tsv"));
        assert_eq!(absent.units()[0].1, SEED_CB_SCAN_NS);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reuse_safe_accepts_global_rollup_and_rejects_unsound_merges() {
        let fine = spec(&["X", "Y"], &[0, 0], PatternKind::Substring)
            .with_group_by(vec![AttrLevel::new(1, 0)]);
        // Global roll-up: safe under the default LEFT-MAXIMALITY.
        let mut coarse = fine.clone();
        coarse.seq.group_by = vec![AttrLevel::new(1, 1)];
        assert!(reuse_safe(&coarse, &fine));
        // Global-dimension removal: safe.
        let mut dropped = fine.clone();
        dropped.seq.group_by.clear();
        assert!(reuse_safe(&dropped, &fine));
        // Identity is not a reuse.
        assert!(!reuse_safe(&fine, &fine));
        // The finer spec cannot be derived from the coarser one.
        assert!(!reuse_safe(&fine, &coarse));
        // Pattern roll-up needs ALL-MATCHED (left-maximality counts per
        // (sequence, cell), so cell merges would double-count).
        let mut proll = fine.clone();
        proll.template.dims[0].level = 1;
        proll.template.dims[1].level = 1;
        assert!(!reuse_safe(&proll, &fine));
        let all_fine = fine.clone().with_restriction(CellRestriction::AllMatchedGo);
        let all_proll = proll
            .clone()
            .with_restriction(CellRestriction::AllMatchedGo);
        assert!(reuse_safe(&all_proll, &all_fine));
        // Repeated symbols must not coarsen: equality constraints differ.
        let rep_fine = spec(&["X", "Y", "X"], &[0, 0, 0], PatternKind::Substring)
            .with_restriction(CellRestriction::AllMatchedGo);
        let mut rep_coarse = rep_fine.clone();
        rep_coarse.template.dims[0].level = 1;
        assert!(!reuse_safe(&rep_coarse, &rep_fine));
        // Shorter windows must re-match.
        let short =
            spec(&["X"], &[0], PatternKind::Substring).with_group_by(vec![AttrLevel::new(1, 0)]);
        assert!(!reuse_safe(&short, &fine));
        // Iceberg thresholds filtered the source; AVG is not merge-closed.
        let mut iceberg = coarse.clone();
        iceberg.min_support = Some(2);
        assert!(!reuse_safe(&iceberg, &fine));
        let mut avg = coarse.clone();
        avg.agg = AggFunc::Avg(1, solap_pattern::SumMode::AllEvents);
        assert!(!reuse_safe(&avg, &fine));
    }

    #[test]
    fn roll_up_cuboid_merges_global_dimension() {
        let db = db();
        let fine = spec(&["X", "Y"], &[0, 0], PatternKind::Substring)
            .with_group_by(vec![AttrLevel::new(1, 0)]);
        let mut coarse = fine.clone();
        coarse.seq.group_by = vec![AttrLevel::new(1, 1)];
        assert!(reuse_safe(&coarse, &fine));
        let pentagon = db.parse_level_value(1, 0, "Pentagon").unwrap();
        let clarendon = db.parse_level_value(1, 0, "Clarendon").unwrap();
        let wheaton = db.parse_level_value(1, 0, "Wheaton").unwrap();
        let mut source = SCuboid::new(
            fine.seq.group_by.clone(),
            fine.template.dims.clone(),
            AggFunc::Count,
        );
        let key = |g: u64, p: &[u64]| CellKey {
            global: vec![g],
            pattern: p.to_vec(),
        };
        // Pentagon and Clarendon are both D10: their groups merge.
        source
            .cells
            .insert(key(pentagon, &[pentagon, wheaton]), AggValue::Count(2));
        source
            .cells
            .insert(key(clarendon, &[pentagon, wheaton]), AggValue::Count(3));
        source
            .cells
            .insert(key(wheaton, &[wheaton, pentagon]), AggValue::Count(5));
        let gov = QueryGovernor::new(None, None, None);
        let (rolled, merged) = roll_up_cuboid(&db, &fine, &source, &coarse, &gov).unwrap();
        assert_eq!(merged, 3);
        assert_eq!(rolled.len(), 2);
        let d10 = db.parse_level_value(1, 1, "D10").unwrap();
        let d20 = db.parse_level_value(1, 1, "D20").unwrap();
        assert_eq!(
            rolled.get(&[d10], &[pentagon, wheaton]),
            Some(&AggValue::Count(5))
        );
        assert_eq!(
            rolled.get(&[d20], &[wheaton, pentagon]),
            Some(&AggValue::Count(5))
        );
        assert_eq!(gov.events_ticked(), 3);
        assert_eq!(gov.cells_consumed(), 2);
    }

    #[test]
    fn roll_up_cuboid_maps_pattern_dimensions() {
        let db = db();
        let fine = spec(&["X", "Y"], &[0, 0], PatternKind::Substring)
            .with_restriction(CellRestriction::AllMatchedGo);
        let mut coarse = fine.clone();
        coarse.template.dims[0].level = 1;
        coarse.template.dims[1].level = 1;
        assert!(reuse_safe(&coarse, &fine));
        let pentagon = db.parse_level_value(1, 0, "Pentagon").unwrap();
        let clarendon = db.parse_level_value(1, 0, "Clarendon").unwrap();
        let wheaton = db.parse_level_value(1, 0, "Wheaton").unwrap();
        let mut source = SCuboid::new(vec![], fine.template.dims.clone(), AggFunc::Count);
        let key = |p: &[u64]| CellKey {
            global: vec![],
            pattern: p.to_vec(),
        };
        source
            .cells
            .insert(key(&[pentagon, wheaton]), AggValue::Count(1));
        source
            .cells
            .insert(key(&[clarendon, wheaton]), AggValue::Count(4));
        let gov = QueryGovernor::new(None, None, None);
        let (rolled, merged) = roll_up_cuboid(&db, &fine, &source, &coarse, &gov).unwrap();
        assert_eq!(merged, 2);
        let d10 = db.parse_level_value(1, 1, "D10").unwrap();
        let d20 = db.parse_level_value(1, 1, "D20").unwrap();
        assert_eq!(rolled.len(), 1);
        assert_eq!(rolled.get(&[], &[d10, d20]), Some(&AggValue::Count(5)));
    }

    #[test]
    fn roll_up_respects_the_cell_budget() {
        let db = db();
        let fine = spec(&["X", "Y"], &[0, 0], PatternKind::Substring);
        let mut coarse = fine.clone();
        coarse.seq.group_by.clear();
        let pentagon = db.parse_level_value(1, 0, "Pentagon").unwrap();
        let wheaton = db.parse_level_value(1, 0, "Wheaton").unwrap();
        let mut source = SCuboid::new(vec![], fine.template.dims.clone(), AggFunc::Count);
        source.cells.insert(
            CellKey {
                global: vec![],
                pattern: vec![pentagon, wheaton],
            },
            AggValue::Count(1),
        );
        source.cells.insert(
            CellKey {
                global: vec![],
                pattern: vec![wheaton, pentagon],
            },
            AggValue::Count(1),
        );
        let gov = QueryGovernor::new(None, Some(1), None);
        let err = roll_up_cuboid(&db, &fine, &source, &coarse, &gov).unwrap_err();
        assert_eq!(err.code(), "resource_exhausted");
    }

    #[test]
    fn reuse_candidates_dedupe_filter_and_cap() {
        let fine = spec(&["X", "Y"], &[0, 0], PatternKind::Substring)
            .with_group_by(vec![AttrLevel::new(1, 0)]);
        let mut coarse = fine.clone();
        coarse.seq.group_by = vec![AttrLevel::new(1, 1)];
        let unrelated = spec(&["X", "Y", "Z"], &[0, 0, 0], PatternKind::Substring);
        let pool = vec![fine.clone(), fine.clone(), unrelated, coarse.clone()];
        let picked = Planner::reuse_candidates(&coarse, pool.into_iter(), |s| {
            (s.fingerprint() == fine.fingerprint()).then_some(7)
        });
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].0.fingerprint(), fine.fingerprint());
        assert_eq!(picked[0].1, 7);
    }

    #[test]
    fn planner_advise_matches_the_legacy_entry_points() {
        let db = db();
        let workload = vec![WorkloadQuery {
            spec: spec(&["X", "Y"], &[0, 0], PatternKind::Substring),
            frequency: 1.0,
        }];
        let groups = solap_eventdb::build_sequence_groups(&db, &workload[0].spec.seq).unwrap();
        let ctx = PlanContext {
            db: &db,
            groups: &groups,
            workload: &workload,
            byte_budget: usize::MAX,
            sample: 10,
            backend: SetBackend::default(),
        };
        let advice = Planner::advise(&ctx).unwrap();
        assert!(!advice.chosen.is_empty());
        let zero = Planner::advise(&PlanContext {
            byte_budget: 0,
            ..ctx
        })
        .unwrap();
        assert!(zero.chosen.is_empty());
    }
}
