//! The S-cuboid specification (Figure 3 of the paper).

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use solap_eventdb::{AttrLevel, EventDb, LevelValue, Pred, Result, SeqQuerySpec, SortKey};
use solap_pattern::{AggFunc, CellRestriction, MatchPred, PatternTemplate};

/// A complete S-cuboid specification: the six parts of §3.2 plus the slice
/// state accumulated by OLAP navigation and the iceberg extension of §6.
#[derive(Debug, Clone, PartialEq)]
pub struct SCuboidSpec {
    /// Part 6: the aggregate function of the `SELECT` clause.
    pub agg: AggFunc,
    /// Parts 1–4: `WHERE`, `CLUSTER BY`, `SEQUENCE BY`, `SEQUENCE GROUP BY`.
    pub seq: SeqQuerySpec,
    /// Part 5(a): the pattern template of the `CUBOID BY` clause.
    pub template: PatternTemplate,
    /// Part 5(b): the cell restriction.
    pub restriction: CellRestriction,
    /// Part 5(c): the matching predicate over event placeholders.
    pub mpred: MatchPred,
    /// Slice state on global dimensions: `global dim index → fixed value`.
    /// A sliced cuboid only reports groups matching every fixed value.
    pub global_slice: BTreeMap<usize, LevelValue>,
    /// Slice state on pattern dimensions: `pattern dim index →
    /// (abstraction level, fixed value)`. Kept separate from the matching
    /// predicate so slicing works at any abstraction level (the paper's Q2
    /// encodes the same thing as placeholder equality predicates at the
    /// base level). The slice level may be **coarser** than the
    /// dimension's current level — §5.1's Qb slices (Assortment, Legwear)
    /// at the category level and then drills Y down to raw pages, keeping
    /// the Legwear restriction.
    pub pattern_slice: BTreeMap<usize, (usize, LevelValue)>,
    /// §6 iceberg extension: drop cells whose COUNT is below this.
    pub min_support: Option<u64>,
}

impl SCuboidSpec {
    /// A minimal specification: count pattern occurrences of `template`
    /// over sequences clustered by `cluster_by`, ordered by `sequence_by`.
    pub fn new(
        template: PatternTemplate,
        cluster_by: Vec<AttrLevel>,
        sequence_by: Vec<SortKey>,
    ) -> Self {
        SCuboidSpec {
            agg: AggFunc::Count,
            seq: SeqQuerySpec {
                filter: Pred::True,
                cluster_by,
                sequence_by,
                group_by: Vec::new(),
            },
            template,
            restriction: CellRestriction::LeftMaximalityMatchedGo,
            mpred: MatchPred::True,
            global_slice: BTreeMap::new(),
            pattern_slice: BTreeMap::new(),
            min_support: None,
        }
    }

    /// Sets the `WHERE` filter.
    pub fn with_filter(mut self, filter: Pred) -> Self {
        self.seq.filter = filter;
        self
    }

    /// Sets the `SEQUENCE GROUP BY` global dimensions.
    pub fn with_group_by(mut self, group_by: Vec<AttrLevel>) -> Self {
        self.seq.group_by = group_by;
        self
    }

    /// Sets the matching predicate.
    pub fn with_mpred(mut self, mpred: MatchPred) -> Self {
        self.mpred = mpred;
        self
    }

    /// Sets the cell restriction.
    pub fn with_restriction(mut self, restriction: CellRestriction) -> Self {
        self.restriction = restriction;
        self
    }

    /// Sets the aggregate function.
    pub fn with_agg(mut self, agg: AggFunc) -> Self {
        self.agg = agg;
        self
    }

    /// Sets the iceberg minimum support.
    pub fn with_min_support(mut self, min_support: u64) -> Self {
        self.min_support = Some(min_support);
        self
    }

    /// Validates the spec against a database: level bounds, predicate
    /// placeholder positions, and slice indices.
    pub fn validate(&self, db: &EventDb) -> Result<()> {
        use solap_eventdb::Error;
        for al in self.seq.cluster_by.iter().chain(self.seq.group_by.iter()) {
            if al.level >= db.level_count(al.attr) {
                return Err(Error::UnknownLevel {
                    attribute: db.schema().column(al.attr).name.clone(),
                    level: format!("#{}", al.level),
                });
            }
        }
        for d in &self.template.dims {
            if d.level >= db.level_count(d.attr) {
                return Err(Error::UnknownLevel {
                    attribute: db.schema().column(d.attr).name.clone(),
                    level: format!("#{}", d.level),
                });
            }
        }
        if let Some(p) = self.mpred.max_pos() {
            if p >= self.template.m() {
                return Err(Error::InvalidOperation(format!(
                    "matching predicate references placeholder #{p} but the template has only {} symbols",
                    self.template.m()
                )));
            }
        }
        for &g in self.global_slice.keys() {
            if g >= self.seq.group_by.len() {
                return Err(Error::InvalidOperation(format!(
                    "global slice on dimension #{g} but there are only {} global dimensions",
                    self.seq.group_by.len()
                )));
            }
        }
        for (&p, &(level, _)) in &self.pattern_slice {
            if p >= self.template.n() {
                return Err(Error::InvalidOperation(format!(
                    "pattern slice on dimension #{p} but there are only {} pattern dimensions",
                    self.template.n()
                )));
            }
            let d = &self.template.dims[p];
            if level < d.level || level >= db.level_count(d.attr) {
                return Err(Error::InvalidOperation(format!(
                    "pattern slice on `{}` at level #{level} is finer than the dimension's level #{} or out of range",
                    d.name, d.level
                )));
            }
        }
        Ok(())
    }

    /// A stable fingerprint for cuboid-repository keys.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash_into(&mut h);
        h.finish()
    }

    fn hash_into<H: Hasher>(&self, h: &mut H) {
        self.agg.hash(h);
        self.seq.hash(h);
        self.template.hash(h);
        self.restriction.hash(h);
        self.mpred.hash(h);
        self.global_slice.hash(h);
        self.pattern_slice.hash(h);
        self.min_support.hash(h);
    }

    /// Renders the specification in the query language of Figure 3 (the
    /// parser in `solap-query` accepts this output — print → reparse is a
    /// fixpoint tested there).
    pub fn render(&self, db: &EventDb) -> String {
        let mut out = String::new();
        out.push_str(&format!("SELECT {}\nFROM Event\n", self.agg.render(db)));
        if self.seq.filter != Pred::True {
            out.push_str(&format!("WHERE {}\n", self.seq.filter.render(db)));
        }
        let attr_at = |al: &AttrLevel| {
            format!(
                "{} AT {}",
                db.schema().column(al.attr).name,
                db.level_name(al.attr, al.level)
            )
        };
        if !self.seq.cluster_by.is_empty() {
            let items: Vec<String> = self.seq.cluster_by.iter().map(attr_at).collect();
            out.push_str(&format!("CLUSTER BY {}\n", items.join(", ")));
        }
        if !self.seq.sequence_by.is_empty() {
            let items: Vec<String> = self
                .seq
                .sequence_by
                .iter()
                .map(|k| {
                    format!(
                        "{} {}",
                        db.schema().column(k.attr).name,
                        if k.ascending {
                            "ASCENDING"
                        } else {
                            "DESCENDING"
                        }
                    )
                })
                .collect();
            out.push_str(&format!("SEQUENCE BY {}\n", items.join(", ")));
        }
        if !self.seq.group_by.is_empty() {
            let items: Vec<String> = self.seq.group_by.iter().map(attr_at).collect();
            out.push_str(&format!("SEQUENCE GROUP BY {}\n", items.join(", ")));
        }
        out.push_str(&format!("CUBOID BY {}\n", self.template.render_head()));
        let bindings: Vec<String> = self
            .template
            .dims
            .iter()
            .map(|d| {
                format!(
                    "{} AS {} AT {}",
                    d.name,
                    db.schema().column(d.attr).name,
                    db.level_name(d.attr, d.level)
                )
            })
            .collect();
        out.push_str(&format!("  WITH {}\n", bindings.join(", ")));
        let names = MatchPred::placeholder_names(&self.template);
        out.push_str(&format!(
            "  {} ({})\n",
            self.restriction.keyword(),
            names.join(", ")
        ));
        if !self.mpred.is_true() {
            out.push_str(&format!("  WITH {}\n", self.mpred.render(db, &names)));
        }
        for (&dim, &(level, v)) in &self.pattern_slice {
            let d = &self.template.dims[dim];
            out.push_str(&format!(
                "SLICE PATTERN {} = \"{}\" AT {}\n",
                d.name,
                db.render_level(d.attr, level, v),
                db.level_name(d.attr, level)
            ));
        }
        for (&g, &v) in &self.global_slice {
            let al = &self.seq.group_by[g];
            out.push_str(&format!(
                "SLICE GROUP {} = \"{}\"\n",
                db.schema().column(al.attr).name,
                db.render_level(al.attr, al.level, v)
            ));
        }
        if let Some(ms) = self.min_support {
            out.push_str(&format!("HAVING COUNT >= {ms}\n"));
        }
        out
    }
}

// Hash is implemented manually so the BTreeMaps participate determinately.
impl Hash for SCuboidSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.hash_into(state);
    }
}

impl Eq for SCuboidSpec {}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{CmpOp, ColumnType, EventDbBuilder, TimeHierarchy, Value};
    use solap_pattern::PatternKind;

    fn db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("time", ColumnType::Time)
            .dimension("card-id", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .measure("amount", ColumnType::Float)
            .build()
            .unwrap();
        db.set_time_hierarchy(0, TimeHierarchy::time_day_week())
            .unwrap();
        db.set_base_level_name(2, "station");
        db.push_row(&[
            Value::from("2007-10-01T00:01"),
            Value::Int(688),
            Value::from("Pentagon"),
            Value::from("in"),
            Value::Float(0.0),
        ])
        .unwrap();
        db.attach_str_level(2, "district", |_| "D10".into())
            .unwrap();
        db.set_base_level_name(1, "individual");
        db.attach_int_level(1, "fare-group", |_| "regular".into())
            .unwrap();
        db
    }

    /// The paper's Q1 (Figure 3).
    fn q1(db: &EventDb) -> SCuboidSpec {
        let template = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y", "Y", "X"],
            &[("X", 2, 0), ("Y", 2, 0)],
        )
        .unwrap();
        let action = db.attr("action").unwrap();
        SCuboidSpec::new(
            template,
            vec![AttrLevel::new(1, 0), AttrLevel::new(0, 1)],
            vec![SortKey {
                attr: 0,
                ascending: true,
            }],
        )
        .with_filter(
            Pred::cmp(0, CmpOp::Ge, Value::from("2007-10-01T00:00")).and(Pred::cmp(
                0,
                CmpOp::Lt,
                Value::from("2007-12-31T24:00"),
            )),
        )
        .with_group_by(vec![AttrLevel::new(1, 1), AttrLevel::new(0, 1)])
        .with_mpred(MatchPred::all([
            MatchPred::cmp(0, action, CmpOp::Eq, "in"),
            MatchPred::cmp(1, action, CmpOp::Eq, "out"),
            MatchPred::cmp(2, action, CmpOp::Eq, "in"),
            MatchPred::cmp(3, action, CmpOp::Eq, "out"),
        ]))
    }

    #[test]
    fn q1_validates() {
        let db = db();
        q1(&db).validate(&db).unwrap();
    }

    #[test]
    fn bad_levels_rejected() {
        let db = db();
        let mut s = q1(&db);
        s.seq.cluster_by[0].level = 9;
        assert!(s.validate(&db).is_err());
        let mut s = q1(&db);
        s.template.dims[0].level = 9;
        assert!(s.validate(&db).is_err());
    }

    #[test]
    fn bad_placeholder_rejected() {
        let db = db();
        let mut s = q1(&db);
        s.mpred = MatchPred::cmp(9, 3, CmpOp::Eq, "in");
        assert!(s.validate(&db).is_err());
    }

    #[test]
    fn bad_slices_rejected() {
        let db = db();
        let mut s = q1(&db);
        s.global_slice.insert(5, 0);
        assert!(s.validate(&db).is_err());
        let mut s = q1(&db);
        s.pattern_slice.insert(5, (0, 0));
        assert!(s.validate(&db).is_err());
        let mut s = q1(&db);
        s.pattern_slice.insert(0, (9, 0)); // out-of-range slice level
        assert!(s.validate(&db).is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let db = db();
        let a = q1(&db);
        assert_eq!(a.fingerprint(), q1(&db).fingerprint());
        let b = q1(&db).with_restriction(CellRestriction::AllMatchedGo);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = q1(&db);
        c.pattern_slice.insert(0, (0, 3));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn render_contains_all_clauses() {
        let db = db();
        let s = q1(&db).with_min_support(5);
        let text = s.render(&db);
        for needle in [
            "SELECT COUNT(*)",
            "FROM Event",
            "WHERE",
            "CLUSTER BY card-id AT individual, time AT day",
            "SEQUENCE BY time ASCENDING",
            "SEQUENCE GROUP BY card-id AT fare-group, time AT day",
            "CUBOID BY SUBSTRING (X, Y, Y, X)",
            "WITH X AS location AT station, Y AS location AT station",
            "LEFT-MAXIMALITY (x1, y1, y2, x2)",
            "x1.action = \"in\"",
            "HAVING COUNT >= 5",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}
