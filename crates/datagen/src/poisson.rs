//! A Poisson sampler (sequence lengths: "its length l, with mean L, is …
//! determined by a random variable following a Poisson distribution").
//!
//! Knuth's multiplication method is exact and fast for the means the
//! experiments use (L ≤ ~60); larger means switch to a rejection-free
//! normal approximation, which is accurate to within the experiments'
//! granularity.

use rand::Rng;

/// A Poisson(λ) sampler.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a sampler with mean `lambda > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "Poisson mean must be positive");
        Poisson { lambda }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        if self.lambda < 64.0 {
            // Knuth: count multiplications until the product drops below
            // e^{-λ}.
            let limit = (-self.lambda).exp();
            let mut product: f64 = rng.gen();
            let mut k = 0u64;
            while product > limit {
                product *= rng.gen::<f64>();
                k += 1;
            }
            k
        } else {
            // Normal approximation with continuity correction.
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let x = self.lambda + self.lambda.sqrt() * z + 0.5;
            if x < 0.0 {
                0
            } else {
                x as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_var(lambda: f64, n: usize, seed: u64) -> (f64, f64) {
        let p = Poisson::new(lambda);
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n).map(|_| p.sample(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn knuth_regime_matches_moments() {
        let (mean, var) = mean_var(20.0, 100_000, 3);
        assert!((mean - 20.0).abs() < 0.2, "mean {mean}");
        assert!((var - 20.0).abs() < 0.8, "variance {var}");
    }

    #[test]
    fn small_mean() {
        let (mean, _) = mean_var(1.5, 100_000, 4);
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_regime_matches_moments() {
        let (mean, var) = mean_var(200.0, 100_000, 5);
        assert!((mean - 200.0).abs() < 1.5, "mean {mean}");
        assert!((var - 200.0).abs() < 8.0, "variance {var}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Poisson::new(20.0);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(p.sample(&mut a), p.sample(&mut b));
        }
        assert_eq!(p.mean(), 20.0);
    }
}
