//! A clickstream simulator shaped like the Gazelle KDD-Cup-2000 dataset.
//!
//! The paper's real-data experiment (§5.1) used Gazelle.com's clickstream:
//! after crawler filtering, 50,524 sessions over 148,924 click events, a
//! `page` attribute with a manually built `raw-page → page-category`
//! hierarchy (44 categories, 279 raw pages at the drill-down the paper
//! reports), a dominant (Assortment, Legwear) two-step path (count 2,201 —
//! the highest cell), a visible (Assortment, Legcare) path (count 150), and
//! product-page popularity led by a null-product page and the DKNY
//! Skin/Tanga collection pages. The original download is no longer
//! distributable, so this simulator reproduces those *shape* properties —
//! which are the only properties the experiment exercises — from a seed.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use solap_eventdb::{time, ColumnType, EventDb, EventDbBuilder, Result, Value};

use crate::poisson::Poisson;
use crate::zipf::Zipf;

/// Simulator parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClickstreamConfig {
    /// Number of sessions (the paper's filtered dataset has 50,524).
    pub sessions: usize,
    /// Mean clicks per session beyond the first
    /// (148,924 / 50,524 ≈ 2.95 clicks per session overall).
    pub mean_extra_clicks: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClickstreamConfig {
    fn default() -> Self {
        ClickstreamConfig {
            sessions: 50_524,
            mean_extra_clicks: 1.95,
            seed: 2000,
        }
    }
}

/// Column indices of the generated schema.
pub mod columns {
    /// `session-id` (Int): the cluster key.
    pub const SESSION_ID: u32 = 0;
    /// `request-time` (Time): the ordering key.
    pub const REQUEST_TIME: u32 = 1;
    /// `page` (Str) with the `raw-page → page-category` hierarchy.
    pub const PAGE: u32 = 2;
}

/// Number of page categories (the paper's hierarchy has 44).
pub const N_CATEGORIES: usize = 44;

fn category_names() -> Vec<String> {
    let mut names = vec![
        "Assortment".to_owned(),
        "Legwear".to_owned(),
        "Legcare".to_owned(),
        "Main Pages".to_owned(),
        "Checkout".to_owned(),
        "Search".to_owned(),
    ];
    for i in names.len()..N_CATEGORIES {
        names.push(format!("Category{i:02}"));
    }
    names
}

/// The raw pages of each category. Legwear and Legcare carry product pages
/// (ids in the DKNY ranges the paper mentions, plus the null-product page);
/// other categories carry a handful of content pages. Totals ≈ 279 raw
/// pages, matching the paper's drill-down cuboid width.
fn pages_per_category(names: &[String]) -> Vec<Vec<String>> {
    names
        .iter()
        .map(|name| match name.as_str() {
            "Legwear" => {
                let mut v = vec!["product-id-null".to_owned()];
                // DKNY Skin collection (34885…34896) and Tanga (34897…),
                // then filler products.
                for id in 34_885..=34_940 {
                    v.push(format!("product-id-{id}"));
                }
                v
            }
            "Legcare" => (35_000..35_020)
                .map(|id| format!("product-id-{id}"))
                .collect(),
            "Assortment" => (0..8).map(|i| format!("assortment-{i}")).collect(),
            _ => (0..5)
                .map(|i| format!("{}-page-{i}", name.replace(' ', "-")))
                .collect(),
        })
        .collect()
}

/// Generates the clickstream event database with the page hierarchy
/// attached.
pub fn generate_clickstream(cfg: &ClickstreamConfig) -> Result<EventDb> {
    let mut db = EventDbBuilder::new()
        .dimension("session-id", ColumnType::Int)
        .dimension("request-time", ColumnType::Time)
        .dimension("page", ColumnType::Str)
        .build()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let names = category_names();
    let pages = pages_per_category(&names);
    let page_to_category: HashMap<String, String> = pages
        .iter()
        .zip(&names)
        .flat_map(|(ps, cat)| ps.iter().map(move |p| (p.clone(), cat.clone())))
        .collect();
    // Category popularity: Assortment, Main Pages and Legwear dominate.
    let start_zipf = Zipf::new(names.len(), 1.05);
    // Rank → category: put the hot categories first.
    let start_order: Vec<usize> = {
        let mut order: Vec<usize> = (0..names.len()).collect();
        // Assortment(0) first, Main Pages(3), Legwear(1), Search(5), rest.
        order.swap(1, 3);
        order.swap(2, 1); // after swaps: [0, 2→? ] — keep it simple below.
        let mut o = vec![0, 3, 1, 5, 4, 2];
        for i in 0..names.len() {
            if !o.contains(&i) {
                o.push(i);
            }
        }
        let _ = order;
        o
    };
    let within = Zipf::new(64, 1.1); // page-within-category skew
    let extra = Poisson::new(cfg.mean_extra_clicks);
    let t0 = time::timestamp(2000, 3, 1, 0, 0, 0);
    for session in 0..cfg.sessions {
        let mut t = t0 + rng.gen_range(0..(120 * time::SECS_PER_DAY)) + session as i64 % 60;
        let clicks = 1 + extra.sample(&mut rng) as usize;
        let mut cat = start_order[start_zipf.sample(&mut rng)];
        for click in 0..clicks {
            let ps = &pages[cat];
            let page = &ps[within.sample(&mut rng) % ps.len()];
            db.push_row(&[
                Value::Int(session as i64),
                Value::Time(t),
                Value::from(page.as_str()),
            ])?;
            t += rng.gen_range(5..180i64);
            if click + 1 == clicks {
                break;
            }
            // Transition: the Assortment → Legwear path dominates;
            // Assortment → Legcare is visible but ~15× rarer.
            cat = if names[cat] == "Assortment" {
                let u = rng.gen::<f64>();
                if u < 0.42 {
                    1 // Legwear — the dominant path (§5.1's count 2,201)
                } else if u < 0.45 {
                    2 // Legcare — visible but ~15× rarer (count 150)
                } else if u < 0.52 {
                    0 // stay in Assortment
                } else {
                    start_order[start_zipf.sample(&mut rng)]
                }
            } else if rng.gen::<f64>() < 0.18 {
                cat // dwell within the category
            } else {
                start_order[start_zipf.sample(&mut rng)]
            };
        }
    }
    db.set_base_level_name(columns::PAGE, "raw-page");
    db.attach_str_level(columns::PAGE, "page-category", move |p| {
        page_to_category
            .get(p)
            .cloned()
            .expect("every generated page is mapped")
    })?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClickstreamConfig {
        ClickstreamConfig {
            sessions: 3_000,
            ..Default::default()
        }
    }

    #[test]
    fn shape_matches_the_paper() {
        let db = generate_clickstream(&small()).unwrap();
        // ~2.95 clicks per session.
        let per_session = db.len() as f64 / 3_000.0;
        assert!(
            (2.4..3.6).contains(&per_session),
            "clicks/session {per_session}"
        );
        // 44 categories available, ≥ 100 raw pages actually visited.
        assert_eq!(
            db.level_domain_size(columns::PAGE, 1)
                .map(|n| n <= N_CATEGORIES),
            Some(true)
        );
        assert!(db.level_domain_size(columns::PAGE, 0).unwrap() >= 100);
    }

    #[test]
    fn assortment_to_legwear_dominates() {
        let db = generate_clickstream(&small()).unwrap();
        // Count adjacent (category) pairs per session, first occurrence only.
        let mut by_session: HashMap<i64, Vec<(i64, u64)>> = HashMap::new();
        for r in 0..db.len() as u32 {
            let sid = db.int(r, columns::SESSION_ID).unwrap();
            let t = db.int(r, columns::REQUEST_TIME).unwrap();
            let cat = db.value_at_level(r, columns::PAGE, 1).unwrap();
            by_session.entry(sid).or_default().push((t, cat));
        }
        let mut pair_counts: HashMap<(u64, u64), usize> = HashMap::new();
        for (_, mut events) in by_session {
            events.sort();
            let mut seen = std::collections::HashSet::new();
            for w in events.windows(2) {
                let pair = (w[0].1, w[1].1);
                if seen.insert(pair) {
                    *pair_counts.entry(pair).or_default() += 1;
                }
            }
        }
        let assortment = db
            .parse_level_value(columns::PAGE, 1, "Assortment")
            .unwrap();
        let legwear = db.parse_level_value(columns::PAGE, 1, "Legwear").unwrap();
        let legcare = db.parse_level_value(columns::PAGE, 1, "Legcare").unwrap();
        let al = pair_counts
            .get(&(assortment, legwear))
            .copied()
            .unwrap_or(0);
        let ac = pair_counts
            .get(&(assortment, legcare))
            .copied()
            .unwrap_or(0);
        let max = pair_counts.values().copied().max().unwrap_or(0);
        assert!(
            al >= max / 2,
            "(Assortment,Legwear)={al} must be near the top (max {max})"
        );
        assert!(
            al > 5 * ac.max(1),
            "(Assortment,Legcare)={ac} must be much rarer than {al}"
        );
        assert!(ac > 0, "(Assortment,Legcare) must exist");
    }

    #[test]
    fn null_product_page_is_hottest_legwear_page() {
        let db = generate_clickstream(&small()).unwrap();
        let mut counts: HashMap<String, usize> = HashMap::new();
        for r in 0..db.len() as u32 {
            let page = db.value(r, columns::PAGE).to_string();
            if page.starts_with("product-id-") {
                *counts.entry(page).or_default() += 1;
            }
        }
        let top = counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(p, _)| p.clone())
            .unwrap();
        assert_eq!(top, "product-id-null");
        assert!(counts.contains_key("product-id-34885"));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_clickstream(&small()).unwrap();
        let b = generate_clickstream(&small()).unwrap();
        assert_eq!(a.len(), b.len());
        for r in (0..a.len() as u32).step_by(101) {
            assert_eq!(a.value(r, columns::PAGE), b.value(r, columns::PAGE));
        }
    }
}
