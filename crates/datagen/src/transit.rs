//! A transit (RFID smart-card) event simulator.
//!
//! Substitute for the proprietary Octopus/SmarTrip logs behind the paper's
//! motivating application (§1, §6): every passenger carries a smart card
//! and registers an event on entering (`action = "in"`) and leaving
//! (`action = "out"`) a station; occasional `deposit` events add value to
//! the card (Figure 1's third row). A controllable fraction of trips are
//! round trips `(X, Y) → (Y, X)`, which is what queries Q1/Q2 measure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use solap_eventdb::{time, ColumnType, EventDb, EventDbBuilder, Result, TimeHierarchy, Value};

use crate::zipf::Zipf;

/// Simulator parameters.
#[derive(Debug, Clone, Copy)]
pub struct TransitConfig {
    /// Number of passengers (cards).
    pub passengers: usize,
    /// Number of days starting 2007-10-01 (inside Figure 3's Q4-2007
    /// window).
    pub days: usize,
    /// Number of stations.
    pub stations: usize,
    /// Number of districts the stations roll up into.
    pub districts: usize,
    /// Probability that a passenger's day is a round trip
    /// (in X, out Y, in Y, out X).
    pub round_trip_rate: f64,
    /// Probability of a deposit event before travel on a given day.
    pub deposit_rate: f64,
    /// Mean extra one-way trips per day beyond the first.
    pub extra_trips: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransitConfig {
    fn default() -> Self {
        TransitConfig {
            passengers: 200,
            days: 5,
            stations: 12,
            districts: 4,
            round_trip_rate: 0.45,
            deposit_rate: 0.05,
            extra_trips: 0.4,
            seed: 1,
        }
    }
}

/// Column indices of the generated schema (Figure 1's layout).
pub mod columns {
    /// `time` (Time) with the `time → day → week` hierarchy.
    pub const TIME: u32 = 0;
    /// `card-id` (Int) with the `individual → fare-group` hierarchy.
    pub const CARD_ID: u32 = 1;
    /// `location` (Str) with the `station → district` hierarchy.
    pub const LOCATION: u32 = 2;
    /// `action` (Str): `in`, `out` or `deposit`.
    pub const ACTION: u32 = 3;
    /// `amount` (Float measure).
    pub const AMOUNT: u32 = 4;
}

/// Names the fare group of a card id (deterministic: ids are dealt
/// round-robin across groups).
pub fn fare_group_of(card_id: i64) -> &'static str {
    match card_id % 10 {
        0..=5 => "regular",
        6 | 7 => "student",
        _ => "senior",
    }
}

/// Generates the transit event database with all three hierarchies
/// attached.
pub fn generate_transit(cfg: &TransitConfig) -> Result<EventDb> {
    assert!(cfg.districts >= 1 && cfg.districts <= cfg.stations);
    let mut db = EventDbBuilder::new()
        .dimension("time", ColumnType::Time)
        .dimension("card-id", ColumnType::Int)
        .dimension("location", ColumnType::Str)
        .dimension("action", ColumnType::Str)
        .measure("amount", ColumnType::Float)
        .build()?;
    db.set_time_hierarchy(columns::TIME, TimeHierarchy::time_day_week())?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let station_pick = Zipf::new(cfg.stations, 0.7);
    let station_names: Vec<String> = (0..cfg.stations).map(|s| format!("ST{s:03}")).collect();
    let day0 = time::timestamp(2007, 10, 1, 0, 0, 0);
    let in_v = Value::from("in");
    let out_v = Value::from("out");
    for day in 0..cfg.days {
        for card in 0..cfg.passengers {
            let card_id = 1000 + card as i64;
            // Not everyone travels every day.
            if rng.gen::<f64>() < 0.25 {
                continue;
            }
            let mut t =
                day0 + (day as i64) * time::SECS_PER_DAY + rng.gen_range(5 * 3600..11 * 3600i64);
            if rng.gen::<f64>() < cfg.deposit_rate {
                let st = station_pick.sample(&mut rng);
                db.push_row(&[
                    Value::Time(t),
                    Value::Int(card_id),
                    Value::from(station_names[st].as_str()),
                    Value::from("deposit"),
                    Value::Float(100.0),
                ])?;
                t += rng.gen_range(60..300i64);
            }
            let origin = station_pick.sample(&mut rng);
            let mut dest = station_pick.sample(&mut rng);
            if dest == origin {
                dest = (dest + 1) % cfg.stations;
            }
            let fare = -(1.0 + rng.gen_range(0..6) as f64 * 0.5);
            let push_trip = |db: &mut EventDb,
                             rng: &mut StdRng,
                             t: &mut i64,
                             from: usize,
                             to: usize|
             -> Result<()> {
                db.push_row(&[
                    Value::Time(*t),
                    Value::Int(card_id),
                    Value::from(station_names[from].as_str()),
                    in_v.clone(),
                    Value::Float(0.0),
                ])?;
                *t += rng.gen_range(10 * 60..50 * 60i64);
                db.push_row(&[
                    Value::Time(*t),
                    Value::Int(card_id),
                    Value::from(station_names[to].as_str()),
                    out_v.clone(),
                    Value::Float(fare),
                ])?;
                *t += rng.gen_range(30 * 60..5 * 3600i64);
                Ok(())
            };
            push_trip(&mut db, &mut rng, &mut t, origin, dest)?;
            let mut here = dest;
            if rng.gen::<f64>() < cfg.round_trip_rate {
                push_trip(&mut db, &mut rng, &mut t, dest, origin)?;
                here = origin;
            }
            let extras = (rng.gen::<f64>() * 2.0 * cfg.extra_trips) as usize;
            for _ in 0..extras {
                let mut next = station_pick.sample(&mut rng);
                if next == here {
                    next = (next + 1) % cfg.stations;
                }
                push_trip(&mut db, &mut rng, &mut t, here, next)?;
                here = next;
            }
        }
    }
    // Hierarchies: station → district (contiguous blocks), card-id →
    // fare-group.
    db.set_base_level_name(columns::LOCATION, "station");
    let per_district = cfg.stations.div_ceil(cfg.districts);
    db.attach_str_level(columns::LOCATION, "district", |name| {
        let s: usize = name[2..].parse().expect("station names are ST###");
        format!("D{:02}", s / per_district)
    })?;
    db.set_base_level_name(columns::CARD_ID, "individual");
    db.attach_int_level(columns::CARD_ID, "fare-group", |id| {
        fare_group_of(id).to_owned()
    })?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_hierarchies() {
        let db = generate_transit(&TransitConfig::default()).unwrap();
        assert_eq!(db.schema().len(), 5);
        assert_eq!(db.level_by_name(columns::LOCATION, "district").unwrap(), 1);
        assert_eq!(db.level_by_name(columns::CARD_ID, "fare-group").unwrap(), 1);
        assert_eq!(db.level_by_name(columns::TIME, "day").unwrap(), 1);
        assert_eq!(db.level_by_name(columns::TIME, "week").unwrap(), 2);
        assert!(db.len() > 1000);
        assert_eq!(
            db.level_domain_size(columns::LOCATION, 1),
            Some(4),
            "12 stations / 4 districts"
        );
    }

    #[test]
    fn in_out_alternate_per_trip() {
        let db = generate_transit(&TransitConfig {
            passengers: 20,
            days: 2,
            ..Default::default()
        })
        .unwrap();
        // Scan one card's events in time order; ignoring deposits, actions
        // must alternate in/out starting with in.
        let mut events: Vec<(i64, String)> = (0..db.len() as u32)
            .filter(|&r| db.int(r, columns::CARD_ID) == Some(1000))
            .map(|r| {
                (
                    db.int(r, columns::TIME).unwrap(),
                    db.value(r, columns::ACTION).to_string(),
                )
            })
            .collect();
        events.sort();
        let travel: Vec<&str> = events
            .iter()
            .map(|(_, a)| a.as_str())
            .filter(|a| *a != "deposit")
            .collect();
        assert!(!travel.is_empty());
        for (i, a) in travel.iter().enumerate() {
            assert_eq!(*a, if i % 2 == 0 { "in" } else { "out" });
        }
    }

    #[test]
    fn round_trips_exist_at_configured_rate() {
        let db = generate_transit(&TransitConfig {
            passengers: 300,
            days: 3,
            round_trip_rate: 1.0,
            extra_trips: 0.0,
            deposit_rate: 0.0,
            ..Default::default()
        })
        .unwrap();
        // With rate 1.0 and no extras, every traveling passenger-day emits
        // exactly 4 travel events (in,out,in,out) forming (X,Y,Y,X).
        assert_eq!(db.len() % 4, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_transit(&TransitConfig::default()).unwrap();
        let b = generate_transit(&TransitConfig::default()).unwrap();
        assert_eq!(a.len(), b.len());
        for r in (0..a.len() as u32).step_by(13) {
            assert_eq!(a.value(r, 2), b.value(r, 2));
            assert_eq!(a.value(r, 0), b.value(r, 0));
        }
    }

    #[test]
    fn fare_groups_cover_all_three() {
        let db = generate_transit(&TransitConfig::default()).unwrap();
        assert_eq!(db.level_domain_size(columns::CARD_ID, 1), Some(3));
        assert_eq!(fare_group_of(1000), "regular");
        assert_eq!(fare_group_of(1006), "student");
        assert_eq!(fare_group_of(1009), "senior");
    }

    #[test]
    fn amounts_negative_for_fares_positive_for_deposits() {
        let db = generate_transit(&TransitConfig {
            deposit_rate: 1.0,
            ..Default::default()
        })
        .unwrap();
        for r in 0..db.len() as u32 {
            let action = db.value(r, columns::ACTION).to_string();
            let amount = db.float(r, columns::AMOUNT).unwrap();
            match action.as_str() {
                "deposit" => assert!(amount > 0.0),
                "out" => assert!(amount < 0.0),
                "in" => assert_eq!(amount, 0.0),
                other => panic!("unexpected action {other}"),
            }
        }
    }
}
