//! # solap-datagen
//!
//! Seeded data generators for the S-OLAP reproduction:
//!
//! * [`synthetic`] — the paper's §5.2 generator, verbatim: `D` sequences,
//!   lengths Poisson with mean `L`, first symbol Zipf(`I`, `θ`), subsequent
//!   symbols from a degree-1 Markov chain whose conditional distributions
//!   are Zipf-skewed; plus the 3-level concept hierarchy (100 symbols → 20
//!   groups → 5 super-groups, Zipf-sized) of QuerySet B.
//! * [`transit`] — a substitute for the proprietary Octopus/SmarTrip RFID
//!   logs motivating the paper: Figure-1-shaped events (time, card-id,
//!   location, action, amount) with station → district,
//!   individual → fare-group and time → day → week hierarchies and a
//!   controllable round-trip rate.
//! * [`clickstream`] — a substitute for the Gazelle KDD-Cup-2000 dataset of
//!   §5.1: sessions over a `page` dimension with a raw-page → page-category
//!   hierarchy, a dominant (Assortment → Legwear) path and skewed product
//!   popularity, sized like the paper's post-filtering dataset.
//!
//! All generators are deterministic for a given seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clickstream;
pub mod poisson;
pub mod synthetic;
pub mod transit;
pub mod zipf;

pub use clickstream::{generate_clickstream, ClickstreamConfig};
pub use poisson::Poisson;
pub use synthetic::{generate_synthetic, SyntheticConfig};
pub use transit::{generate_transit, TransitConfig};
pub use zipf::Zipf;
