//! The paper's synthetic sequence generator (§5.2), verbatim:
//!
//! "The generator takes 4 parameters: L, I, θ, and D. The generated
//! sequence database has D sequences. Each sequence s … is generated
//! independently. Its length l, with mean L, is first determined by a
//! random variable following a Poisson distribution. … The first event
//! symbol is randomly selected according to a pre-determined distribution
//! following Zipf's law with parameter I and θ … Subsequent events are
//! generated one after the other using a Markov chain of degree 1. The
//! conditional probabilities are pre-determined and are skewed according to
//! Zipf's law. All the generated sequences form a single sequence group."
//!
//! For QuerySet B the events are organised into 3 concept levels: "The 100
//! event symbols are divided into 20 groups, with group sizes following
//! Zipf's law (I=20, θ=0.9). Similarly, the 20 groups are divided into 5
//! super-groups, with super-group sizes following Zipf's law (I=5, θ=0.9)."

use rand::rngs::StdRng;
use rand::SeedableRng;

use solap_eventdb::{ColumnType, EventDb, EventDbBuilder, Result, Value};

use crate::poisson::Poisson;
use crate::zipf::Zipf;

/// Parameters of the synthetic generator. The paper's dataset
/// `I100.L20.θ0.9.D500K` is `SyntheticConfig { i: 100, l: 20.0,
/// theta: 0.9, d: 500_000, .. }`.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Number of possible event symbols `I`.
    pub i: usize,
    /// Mean sequence length `L`.
    pub l: f64,
    /// Zipf skew `θ`.
    pub theta: f64,
    /// Number of sequences `D`.
    pub d: usize,
    /// RNG seed.
    pub seed: u64,
    /// Attach the 3-level QuerySet-B hierarchy
    /// (symbol → group → super-group).
    pub hierarchy: bool,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            i: 100,
            l: 20.0,
            theta: 0.9,
            d: 1000,
            seed: 1,
            hierarchy: true,
        }
    }
}

impl SyntheticConfig {
    /// The dataset name in the paper's notation, e.g. `I100.L20.θ0.9.D500K`.
    pub fn name(&self) -> String {
        let d = if self.d.is_multiple_of(1000) && self.d >= 1000 {
            format!("{}K", self.d / 1000)
        } else {
            self.d.to_string()
        };
        format!("I{}.L{}.θ{}.D{}", self.i, self.l, self.theta, d)
    }
}

/// Column indices of the generated schema.
pub mod columns {
    /// `seq-id` (Int): the cluster key.
    pub const SEQ_ID: u32 = 0;
    /// `pos` (Int): the ordering key.
    pub const POS: u32 = 1;
    /// `symbol` (Str): the event symbol, with the optional 3-level
    /// hierarchy `symbol → group → super-group`.
    pub const SYMBOL: u32 = 2;
}

/// Generates the synthetic event database. Events carry `(seq-id, pos,
/// symbol)`; clustering by `seq-id` and ordering by `pos` reconstructs the
/// paper's sequences, all in a single sequence group.
pub fn generate_synthetic(cfg: &SyntheticConfig) -> Result<EventDb> {
    let mut db = EventDbBuilder::new()
        .dimension("seq-id", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("symbol", ColumnType::Str)
        .build()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let initial = Zipf::new(cfg.i, cfg.theta);
    let conditional = Zipf::new(cfg.i, cfg.theta);
    let length = Poisson::new(cfg.l);
    // Pre-intern every symbol so dictionary ids are dense and stable, and
    // pre-build the Value once per symbol.
    let symbols: Vec<Value> = (0..cfg.i).map(|s| Value::Str(format!("s{s:03}"))).collect();
    for sid in 0..cfg.d {
        let l = length.sample(&mut rng).max(1) as usize;
        // First symbol: Zipf rank straight onto the symbol alphabet.
        let mut current = initial.sample(&mut rng);
        for pos in 0..l {
            db.push_row(&[
                Value::Int(sid as i64),
                Value::Int(pos as i64),
                symbols[current].clone(),
            ])?;
            // Degree-1 Markov step: the conditional distribution of state
            // `s` is a Zipf over the alphabet rotated by `s mod 4` — a
            // fixed ("pre-determined"), state-dependent, Zipf-skewed row of
            // the transition matrix. The small rotation keeps rows distinct
            // per state while the stationary distribution stays skewed.
            let rank = conditional.sample(&mut rng);
            current = (current % 4 + rank) % cfg.i;
        }
    }
    db.set_base_level_name(columns::SYMBOL, "symbol");
    if cfg.hierarchy {
        attach_three_level_hierarchy(&mut db, cfg.i)?;
    }
    Ok(db)
}

/// Divides `i` symbols into 20 Zipf-sized groups and those into 5 Zipf-sized
/// super-groups (θ = 0.9), attaching both levels to the symbol column.
pub fn attach_three_level_hierarchy(db: &mut EventDb, i: usize) -> Result<()> {
    let group_of = zipf_partition(i, 20.min(i), 0.9);
    db.attach_str_level(columns::SYMBOL, "group", |name| {
        let idx: usize = name[1..].parse().expect("symbol names are s###");
        format!("g{:02}", group_of[idx])
    })?;
    let n_groups = *group_of.iter().max().expect("non-empty") + 1;
    let super_of = zipf_partition(n_groups, 5.min(n_groups), 0.9);
    db.attach_str_level(columns::SYMBOL, "super-group", |name| {
        let idx: usize = name[1..].parse().expect("group names are g##");
        format!("u{}", super_of[idx])
    })?;
    Ok(())
}

/// Partitions `n` items into `k` contiguous buckets whose sizes follow
/// Zipf(`k`, `theta`); every bucket gets at least one item. Returns the
/// bucket of each item.
pub fn zipf_partition(n: usize, k: usize, theta: f64) -> Vec<usize> {
    assert!(k >= 1 && k <= n);
    let z = Zipf::new(k, theta);
    let mut sizes: Vec<usize> = (0..k)
        .map(|g| (n as f64 * z.pmf(g)).round() as usize)
        .collect();
    for s in &mut sizes {
        *s = (*s).max(1);
    }
    // Adjust to sum exactly n, nibbling from / adding to the largest bucket.
    loop {
        let total: usize = sizes.iter().sum();
        match total.cmp(&n) {
            std::cmp::Ordering::Equal => break,
            std::cmp::Ordering::Less => sizes[0] += n - total,
            std::cmp::Ordering::Greater => {
                let excess = total - n;
                let big = sizes
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &s)| s)
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let take = excess.min(sizes[big] - 1);
                if take == 0 {
                    // Cannot shrink further without emptying a bucket.
                    sizes[big] -= excess.min(sizes[big].saturating_sub(1));
                    break;
                }
                sizes[big] -= take;
            }
        }
    }
    let mut out = Vec::with_capacity(n);
    for (g, &s) in sizes.iter().enumerate() {
        for _ in 0..s {
            out.push(g);
        }
    }
    out.truncate(n);
    while out.len() < n {
        out.push(k - 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_d_sequences_with_mean_length_l() {
        let cfg = SyntheticConfig {
            i: 50,
            l: 10.0,
            theta: 0.9,
            d: 500,
            seed: 7,
            hierarchy: false,
        };
        let db = generate_synthetic(&cfg).unwrap();
        // Count sequences and total length.
        let mut max_sid = 0;
        for row in 0..db.len() as u32 {
            max_sid = max_sid.max(db.int(row, 0).unwrap());
        }
        assert_eq!(max_sid as usize + 1, 500);
        let mean_len = db.len() as f64 / 500.0;
        assert!((mean_len - 10.0).abs() < 0.5, "mean length {mean_len}");
    }

    #[test]
    fn symbols_within_alphabet_and_skewed() {
        let cfg = SyntheticConfig {
            i: 20,
            l: 8.0,
            theta: 1.2,
            d: 300,
            seed: 11,
            hierarchy: false,
        };
        let db = generate_synthetic(&cfg).unwrap();
        let dict = db.dict(2).unwrap();
        assert!(dict.len() <= 20);
        // Frequency skew: the most common symbol clearly beats the median.
        let mut counts = vec![0usize; dict.len()];
        for row in 0..db.len() as u32 {
            counts[db.str_id(row, 2).unwrap() as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts[0] > counts[counts.len() / 2] * 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig {
            d: 50,
            ..Default::default()
        };
        let a = generate_synthetic(&cfg).unwrap();
        let b = generate_synthetic(&cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for row in 0..a.len() as u32 {
            assert_eq!(a.value(row, 2), b.value(row, 2));
        }
        let c = generate_synthetic(&SyntheticConfig { seed: 2, ..cfg }).unwrap();
        // A different seed produces different data (with high probability).
        let differs = a.len() != c.len()
            || (0..a.len().min(c.len()) as u32).any(|r| a.value(r, 2) != c.value(r, 2));
        assert!(differs);
    }

    #[test]
    fn hierarchy_has_three_levels() {
        let cfg = SyntheticConfig {
            d: 200,
            ..Default::default()
        };
        let db = generate_synthetic(&cfg).unwrap();
        assert_eq!(db.level_count(2), 3);
        assert_eq!(db.level_by_name(2, "group").unwrap(), 1);
        assert_eq!(db.level_by_name(2, "super-group").unwrap(), 2);
        let groups = db.level_domain_size(2, 1).unwrap();
        assert!(groups <= 20);
        let supers = db.level_domain_size(2, 2).unwrap();
        assert!(supers <= 5);
        // Every symbol maps all the way up.
        for row in (0..db.len() as u32).step_by(97) {
            db.value_at_level(row, 2, 2).unwrap();
        }
    }

    #[test]
    fn zipf_partition_properties() {
        let p = zipf_partition(100, 20, 0.9);
        assert_eq!(p.len(), 100);
        let mut sizes = vec![0usize; 20];
        for &g in &p {
            sizes[g] += 1;
        }
        assert!(sizes.iter().all(|&s| s >= 1), "no empty groups: {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        assert!(sizes[0] >= sizes[10], "sizes follow Zipf: {sizes:?}");
        // Monotone bucket assignment (contiguous).
        assert!(p.windows(2).all(|w| w[0] <= w[1]));
        // Degenerate cases.
        assert_eq!(zipf_partition(5, 5, 0.9), vec![0, 1, 2, 3, 4]);
        assert_eq!(zipf_partition(3, 1, 0.9), vec![0, 0, 0]);
    }

    #[test]
    fn dataset_names() {
        let cfg = SyntheticConfig {
            i: 100,
            l: 20.0,
            theta: 0.9,
            d: 500_000,
            seed: 0,
            hierarchy: false,
        };
        assert_eq!(cfg.name(), "I100.L20.θ0.9.D500K");
    }
}
