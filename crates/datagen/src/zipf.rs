//! A Zipf(`I`, `θ`) sampler.
//!
//! The paper's generator draws symbols "according to a pre-determined
//! distribution following Zipf's law with parameter I and θ (I is the
//! number of possible symbols and θ is the skew factor)": rank `i`
//! (1-based) has probability proportional to `1 / i^θ`. `θ = 0` is uniform;
//! larger `θ` is more skewed.

use rand::Rng;

/// A precomputed-CDF Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with skew `theta`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(theta >= 0.0, "Zipf skew must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the tail.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Samples a rank in `0..n` (rank 0 is the most probable).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i,
        }
        .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(10, 0.9);
        for i in 1..10 {
            assert!(z.pmf(i - 1) > z.pmf(i), "rank {i} must be rarer");
        }
        // θ=0.9 over 10 ranks: top rank well above uniform.
        assert!(z.pmf(0) > 0.2);
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let observed = count as f64 / n as f64;
            assert!(
                (observed - z.pmf(i)).abs() < 0.01,
                "rank {i}: observed {observed}, expected {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(100, 0.9);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }
}
