//! Recursive-descent parser producing [`SCuboidSpec`].

use solap_core::SCuboidSpec;
use solap_eventdb::{
    AttrId, AttrLevel, CmpOp, ColumnType, Error, EventDb, Pred, Result, SortKey, Value,
};
use solap_pattern::{AggFunc, CellRestriction, MatchPred, PatternKind, PatternTemplate, SumMode};

use crate::lexer::{tokenize, Token, TokenKind};

/// Parses one S-cuboid specification against a database schema.
pub fn parse_query(db: &EventDb, src: &str) -> Result<SCuboidSpec> {
    Ok(parse_statement(db, src)?.spec)
}

/// How a statement wants its query surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainMode {
    /// Execute and return the cuboid (no prefix).
    #[default]
    Normal,
    /// Render the execution plan without running the query (`EXPLAIN`).
    Explain,
    /// Execute the query and report its per-stage profile (`PROFILE`).
    Profile,
}

/// A parsed statement: an optional `EXPLAIN`/`PROFILE` prefix plus the
/// S-cuboid query it applies to.
#[derive(Debug, Clone)]
pub struct Statement {
    /// The requested surface.
    pub mode: ExplainMode,
    /// The query itself.
    pub spec: SCuboidSpec,
}

/// Parses `[EXPLAIN | PROFILE] <query>` (prefix keywords are
/// case-insensitive, like every other keyword).
pub fn parse_statement(db: &EventDb, src: &str) -> Result<Statement> {
    let tokens = tokenize(src)?;
    let mut p = ClauseParser::new(db, tokens);
    let mode = if p.eat_kw("EXPLAIN") {
        ExplainMode::Explain
    } else if p.eat_kw("PROFILE") {
        ExplainMode::Profile
    } else {
        ExplainMode::Normal
    };
    let spec = p.query()?;
    p.finish()?;
    spec.validate(db)?;
    Ok(Statement { mode, spec })
}

/// A parsed `STORE` statement: the literal event rows to append to the
/// event table — the ingestion half of the language (the paper's Figure 3
/// stores events into the sequence data warehouse; queries then see them
/// through the incremental-update path of §6).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStatement {
    /// One decoded value row per `VALUES` tuple, in statement order.
    pub rows: Vec<Vec<Value>>,
}

/// Parses `STORE INTO <table> VALUES (v, …), (v, …) [;]`.
///
/// Every tuple must match the schema's arity; literals are normalized
/// against the column they land in (string timestamps against time
/// columns become [`Value::Time`]), and deeper type checking happens in
/// the engine's store path, which validates the whole batch before
/// appending any of it.
pub fn parse_store(db: &EventDb, src: &str) -> Result<StoreStatement> {
    let tokens = tokenize(src)?;
    let mut p = ClauseParser::new(db, tokens);
    p.expect_kw("STORE")?;
    p.expect_kw("INTO")?;
    let _table = p.ident("a table name")?;
    p.expect_kw("VALUES")?;
    let mut rows = Vec::new();
    loop {
        rows.push(p.value_tuple()?);
        if !p.eat_comma() {
            break;
        }
    }
    p.finish()?;
    Ok(StoreStatement { rows })
}

/// The clause-level parser shared between the main query language and the
/// regex-query extension (`crate::regex_parser`).
pub(crate) struct ClauseParser<'a> {
    db: &'a EventDb,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> ClauseParser<'a> {
    /// Creates a parser over pre-lexed tokens.
    pub(crate) fn new(db: &'a EventDb, tokens: Vec<Token>) -> Self {
        ClauseParser { db, tokens, pos: 0 }
    }

    /// The kind of the next token.
    pub(crate) fn peek_kind(&self) -> Option<TokenKind> {
        self.peek().map(|t| t.kind.clone())
    }

    /// Consumes the next token unconditionally.
    pub(crate) fn bump(&mut self) {
        self.pos += 1;
    }

    /// Eats a `+` token.
    pub(crate) fn eat_plus(&mut self) -> bool {
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Plus)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Eats a `?` token.
    pub(crate) fn eat_question(&mut self) -> bool {
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Question)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes optional semicolons and demands end of input.
    pub(crate) fn finish(&mut self) -> Result<()> {
        self.skip_semi();
        if self.pos != self.tokens.len() {
            return Err(self.err("trailing input after query"));
        }
        Ok(())
    }

    /// Parses `[WHERE …] [CLUSTER BY …] [SEQUENCE BY …]
    /// [SEQUENCE GROUP BY …]` into a [`solap_eventdb::SeqQuerySpec`].
    pub(crate) fn sequence_clauses(&mut self) -> Result<solap_eventdb::SeqQuerySpec> {
        let filter = if self.eat_kw("WHERE") {
            self.pred()?
        } else {
            Pred::True
        };
        let mut cluster_by = Vec::new();
        if self.peek_kw("CLUSTER") {
            self.pos += 1;
            self.expect_kw("BY")?;
            loop {
                cluster_by.push(self.attr_level()?);
                if !self.eat_comma() {
                    break;
                }
            }
        }
        let mut sequence_by = Vec::new();
        if self.peek_kw("SEQUENCE") && self.peek2_kw("BY") {
            self.pos += 2;
            loop {
                let attr = self.attr()?;
                let ascending = if self.eat_kw("ASCENDING") || self.eat_kw("ASC") {
                    true
                } else {
                    !(self.eat_kw("DESCENDING") || self.eat_kw("DESC"))
                };
                sequence_by.push(SortKey { attr, ascending });
                if !self.eat_comma() {
                    break;
                }
            }
        }
        let mut group_by = Vec::new();
        if self.peek_kw("SEQUENCE") && self.peek2_kw("GROUP") {
            self.pos += 2;
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.attr_level()?);
                if !self.eat_comma() {
                    break;
                }
            }
        }
        Ok(solap_eventdb::SeqQuerySpec {
            filter,
            cluster_by,
            sequence_by,
            group_by,
        })
    }

    pub(crate) fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            message: message.into(),
            offset: self
                .tokens
                .get(self.pos)
                .map(|t| t.offset)
                .unwrap_or(usize::MAX),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn peek2_kw(&self, kw: &str) -> bool {
        self.tokens.get(self.pos + 1).is_some_and(|t| t.is_kw(kw))
    }

    pub(crate) fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    pub(crate) fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    pub(crate) fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn skip_semi(&mut self) {
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Semi)) {
            self.pos += 1;
        }
    }

    fn attr(&mut self) -> Result<AttrId> {
        let name = self.ident("an attribute name")?;
        self.db.attr(&name)
    }

    pub(crate) fn attr_level(&mut self) -> Result<AttrLevel> {
        let attr = self.attr()?;
        self.expect_kw("AT")?;
        let level_name = self.ident("an abstraction level")?;
        let level = self.db.level_by_name(attr, &level_name)?;
        Ok(AttrLevel::new(attr, level))
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Eq) => CmpOp::Eq,
            Some(TokenKind::Ne) => CmpOp::Ne,
            Some(TokenKind::Lt) => CmpOp::Lt,
            Some(TokenKind::Le) => CmpOp::Le,
            Some(TokenKind::Gt) => CmpOp::Gt,
            Some(TokenKind::Ge) => CmpOp::Ge,
            _ => return Err(self.err("expected a comparison operator")),
        };
        self.pos += 1;
        Ok(op)
    }

    /// A literal, normalized to the column's type where sensible (string
    /// timestamps against time columns become `Value::Time` so fingerprints
    /// are canonical).
    fn literal(&mut self, attr: AttrId) -> Result<Value> {
        let v = match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Str(s)) => {
                self.pos += 1;
                Value::Str(s)
            }
            Some(TokenKind::Int(i)) => {
                self.pos += 1;
                Value::Int(i)
            }
            Some(TokenKind::Float(f)) => {
                self.pos += 1;
                Value::Float(f)
            }
            _ => return Err(self.err("expected a literal")),
        };
        Ok(normalize_literal(self.db, attr, v))
    }

    /// A parenthesized tuple of literals with exactly one value per schema
    /// column, each normalized against the column it lands in.
    fn value_tuple(&mut self) -> Result<Vec<Value>> {
        let arity = self.db.schema().columns().len();
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut row = Vec::with_capacity(arity);
        loop {
            if row.len() >= arity {
                return Err(self.err(format!(
                    "too many values in tuple — the event table has {arity} columns"
                )));
            }
            row.push(self.literal(row.len() as AttrId)?);
            if !self.eat_comma() {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        if row.len() != arity {
            return Err(self.err(format!(
                "tuple has {} values but the event table has {arity} columns",
                row.len()
            )));
        }
        Ok(row)
    }

    // ------------------------------------------------------------------
    // Clauses
    // ------------------------------------------------------------------

    fn query(&mut self) -> Result<SCuboidSpec> {
        self.expect_kw("SELECT")?;
        let agg = self.agg()?;
        self.expect_kw("FROM")?;
        let _table = self.ident("a table name")?;

        let seq = self.sequence_clauses()?;
        let (filter, cluster_by, sequence_by, group_by) =
            (seq.filter, seq.cluster_by, seq.sequence_by, seq.group_by);

        self.expect_kw("CUBOID")?;
        self.expect_kw("BY")?;
        let (template, placeholder_names, restriction) = self.cuboid_by()?;

        let mpred = if self.eat_kw("WITH") {
            self.match_pred(&template, &placeholder_names)?
        } else {
            MatchPred::True
        };

        let mut spec = SCuboidSpec::new(template, cluster_by, sequence_by)
            .with_agg(agg)
            .with_filter(filter)
            .with_group_by(group_by)
            .with_restriction(restriction)
            .with_mpred(mpred);

        // Extension clauses: SLICE PATTERN / SLICE GROUP / HAVING COUNT >=.
        while self.peek_kw("SLICE") {
            self.pos += 1;
            if self.eat_kw("PATTERN") {
                let sym = self.ident("a pattern symbol")?;
                self.expect(&TokenKind::Eq, "`=`")?;
                let dim = spec
                    .template
                    .dims
                    .iter()
                    .position(|d| d.name == sym)
                    .ok_or_else(|| self.err(format!("unknown pattern symbol `{sym}`")))?;
                let d = spec.template.dims[dim].clone();
                let text = self.slice_value_text()?;
                let level = if self.eat_kw("AT") {
                    let name = self.ident("an abstraction level")?;
                    self.db.level_by_name(d.attr, &name)?
                } else {
                    d.level
                };
                let v = self.db.parse_level_value(d.attr, level, &text)?;
                spec.pattern_slice.insert(dim, (level, v));
            } else if self.eat_kw("GROUP") {
                let attr = self.attr()?;
                self.expect(&TokenKind::Eq, "`=`")?;
                let g = spec
                    .seq
                    .group_by
                    .iter()
                    .position(|al| al.attr == attr)
                    .ok_or_else(|| self.err("attribute is not a global dimension"))?;
                let al = spec.seq.group_by[g];
                let text = self.slice_value_text()?;
                let v = self.db.parse_level_value(al.attr, al.level, &text)?;
                spec.global_slice.insert(g, v);
            } else {
                return Err(self.err("expected PATTERN or GROUP after SLICE"));
            }
        }
        if self.eat_kw("HAVING") {
            self.expect_kw("COUNT")?;
            self.expect(&TokenKind::Ge, "`>=`")?;
            match self.peek().map(|t| t.kind.clone()) {
                Some(TokenKind::Int(n)) if n >= 0 => {
                    self.pos += 1;
                    spec.min_support = Some(n as u64);
                }
                _ => return Err(self.err("expected a non-negative integer")),
            }
        }
        Ok(spec)
    }

    fn slice_value_text(&mut self) -> Result<String> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(TokenKind::Str(s)) => {
                self.pos += 1;
                Ok(s)
            }
            Some(TokenKind::Int(i)) => {
                self.pos += 1;
                Ok(i.to_string())
            }
            _ => Err(self.err("expected a slice value")),
        }
    }

    fn agg(&mut self) -> Result<AggFunc> {
        let name = self.ident("an aggregate function")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let agg = if name.eq_ignore_ascii_case("COUNT") {
            self.expect(&TokenKind::Star, "`*`")?;
            AggFunc::Count
        } else {
            let upper = name.to_ascii_uppercase();
            if !matches!(
                upper.as_str(),
                "SUM" | "SUM-FIRST" | "AVG" | "AVG-FIRST" | "MIN" | "MAX"
            ) {
                return Err(self.err(format!("unknown aggregate `{name}`")));
            }
            let attr = self.attr()?;
            match upper.as_str() {
                "SUM" => AggFunc::Sum(attr, SumMode::AllEvents),
                "SUM-FIRST" => AggFunc::Sum(attr, SumMode::FirstEvent),
                "AVG" => AggFunc::Avg(attr, SumMode::AllEvents),
                "AVG-FIRST" => AggFunc::Avg(attr, SumMode::FirstEvent),
                "MIN" => AggFunc::Min(attr),
                "MAX" => AggFunc::Max(attr),
                _ => unreachable!("validated above"),
            }
        };
        self.expect(&TokenKind::RParen, "`)`")?;
        Ok(agg)
    }

    fn cuboid_by(&mut self) -> Result<(PatternTemplate, Vec<String>, CellRestriction)> {
        let kind_name = self.ident("SUBSTRING or SUBSEQUENCE")?;
        let kind = match kind_name.to_ascii_uppercase().as_str() {
            "SUBSTRING" => PatternKind::Substring,
            "SUBSEQUENCE" => PatternKind::Subsequence,
            other => return Err(self.err(format!("unknown pattern kind `{other}`"))),
        };
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut symbols = Vec::new();
        loop {
            symbols.push(self.ident("a pattern symbol")?);
            if !self.eat_comma() {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect_kw("WITH")?;
        let mut bindings: Vec<(String, AttrId, usize)> = Vec::new();
        loop {
            let sym = self.ident("a pattern symbol")?;
            self.expect_kw("AS")?;
            let al = self.attr_level()?;
            bindings.push((sym, al.attr, al.level));
            if !self.eat_comma() {
                break;
            }
        }
        let restriction_name = self.ident("a cell restriction")?;
        let restriction = match restriction_name.to_ascii_uppercase().as_str() {
            "LEFT-MAXIMALITY" => CellRestriction::LeftMaximalityMatchedGo,
            "LEFT-MAXIMALITY-DATA" => CellRestriction::LeftMaximalityDataGo,
            "ALL-MATCHED" => CellRestriction::AllMatchedGo,
            other => return Err(self.err(format!("unknown cell restriction `{other}`"))),
        };
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut placeholders = Vec::new();
        loop {
            placeholders.push(self.ident("a placeholder")?);
            if !self.eat_comma() {
                break;
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        if placeholders.len() != symbols.len() {
            return Err(self.err(format!(
                "restriction lists {} placeholders but the template has {} symbols",
                placeholders.len(),
                symbols.len()
            )));
        }
        let symbol_refs: Vec<&str> = symbols.iter().map(String::as_str).collect();
        let binding_refs: Vec<(&str, AttrId, usize)> = bindings
            .iter()
            .map(|(s, a, l)| (s.as_str(), *a, *l))
            .collect();
        let template = PatternTemplate::new(kind, &symbol_refs, &binding_refs)?;
        Ok((template, placeholders, restriction))
    }

    pub(crate) fn eat_comma(&mut self) -> bool {
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Comma)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // WHERE predicates
    // ------------------------------------------------------------------

    fn pred(&mut self) -> Result<Pred> {
        let mut left = self.pred_and()?;
        while self.eat_kw("OR") {
            let right = self.pred_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> Result<Pred> {
        let mut left = self.pred_atom()?;
        while self.eat_kw("AND") {
            let right = self.pred_atom()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn pred_atom(&mut self) -> Result<Pred> {
        if self.eat_kw("NOT") {
            return Ok(self.pred_atom()?.not());
        }
        if self.eat_kw("TRUE") {
            return Ok(Pred::True);
        }
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
            self.pos += 1;
            let inner = self.pred()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(inner);
        }
        let attr = self.attr()?;
        if self.eat_kw("IN") {
            self.expect(&TokenKind::LParen, "`(`")?;
            let mut values = Vec::new();
            loop {
                values.push(self.literal(attr)?);
                if !self.eat_comma() {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(Pred::In { attr, values });
        }
        let op = self.cmp_op()?;
        let value = self.literal(attr)?;
        Ok(Pred::Cmp { attr, op, value })
    }

    // ------------------------------------------------------------------
    // Matching predicates
    // ------------------------------------------------------------------

    fn match_pred(
        &mut self,
        template: &PatternTemplate,
        placeholders: &[String],
    ) -> Result<MatchPred> {
        let mut left = self.mpred_and(template, placeholders)?;
        while self.eat_kw("OR") {
            let right = self.mpred_and(template, placeholders)?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn mpred_and(
        &mut self,
        template: &PatternTemplate,
        placeholders: &[String],
    ) -> Result<MatchPred> {
        let mut left = self.mpred_atom(template, placeholders)?;
        while self.eat_kw("AND") {
            let right = self.mpred_atom(template, placeholders)?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn mpred_atom(
        &mut self,
        template: &PatternTemplate,
        placeholders: &[String],
    ) -> Result<MatchPred> {
        if self.eat_kw("NOT") {
            return Ok(self.mpred_atom(template, placeholders)?.not());
        }
        if self.eat_kw("TRUE") {
            return Ok(MatchPred::True);
        }
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LParen)) {
            self.pos += 1;
            let inner = self.match_pred(template, placeholders)?;
            self.expect(&TokenKind::RParen, "`)`")?;
            return Ok(inner);
        }
        let ph = self.ident("a placeholder")?;
        let pos = placeholders
            .iter()
            .position(|p| *p == ph)
            .ok_or_else(|| self.err(format!("unknown placeholder `{ph}`")))?;
        self.expect(&TokenKind::Dot, "`.`")?;
        let attr = self.attr()?;
        let op = self.cmp_op()?;
        let value = self.literal(attr)?;
        let _ = template;
        Ok(MatchPred::Cmp {
            pos,
            attr,
            op,
            value,
        })
    }
}

/// Normalizes a literal to the column's storage type where the coercion is
/// canonical: string timestamps on time columns parse to `Value::Time`,
/// integers on float columns widen to `Value::Float`.
fn normalize_literal(db: &EventDb, attr: AttrId, v: Value) -> Value {
    match (db.schema().column(attr).ctype, &v) {
        (ColumnType::Time, Value::Str(s)) => match solap_eventdb::time::parse_timestamp(s) {
            Some(t) => Value::Time(t),
            None => v,
        },
        (ColumnType::Time, Value::Int(t)) => Value::Time(*t),
        (ColumnType::Float, Value::Int(i)) => Value::Float(*i as f64),
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{EventDbBuilder, TimeHierarchy};

    fn db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("time", ColumnType::Time)
            .dimension("card-id", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .measure("amount", ColumnType::Float)
            .build()
            .unwrap();
        db.set_time_hierarchy(0, TimeHierarchy::time_day_week())
            .unwrap();
        for (st, d) in [("Pentagon", "D10"), ("Wheaton", "D20"), ("Glenmont", "D20")] {
            db.push_row(&[
                Value::from("2007-10-01T00:01"),
                Value::Int(688),
                Value::from(st),
                Value::from("in"),
                Value::Float(0.0),
            ])
            .unwrap();
            let _ = d;
        }
        db.set_base_level_name(2, "station");
        db.attach_str_level(2, "district", |s| {
            if s == "Pentagon" {
                "D10".into()
            } else {
                "D20".into()
            }
        })
        .unwrap();
        db.set_base_level_name(1, "individual");
        db.attach_int_level(1, "fare-group", |_| "regular".into())
            .unwrap();
        db
    }

    /// Figure 3 verbatim (modulo whitespace).
    const Q1: &str = r#"
        SELECT COUNT(*)
        FROM Event
        WHERE time >= "2007-10-01T00:00" AND time < "2007-12-31T24:00"
        CLUSTER BY card-id AT individual, time AT day
        SEQUENCE BY time ASCENDING
        SEQUENCE GROUP BY card-id AT fare-group, time AT day
        CUBOID BY SUBSTRING (X, Y, Y, X)
          WITH X AS location AT station, Y AS location AT station
          LEFT-MAXIMALITY (x1, y1, y2, x2)
          WITH x1.action = "in" AND y1.action = "out"
           AND y2.action = "in" AND x2.action = "out"
    "#;

    #[test]
    fn parses_figure_3() {
        let db = db();
        let spec = parse_query(&db, Q1).unwrap();
        assert_eq!(spec.agg, AggFunc::Count);
        assert_eq!(spec.template.render_head(), "SUBSTRING (X, Y, Y, X)");
        assert_eq!(spec.seq.cluster_by.len(), 2);
        assert_eq!(spec.seq.group_by.len(), 2);
        assert_eq!(spec.seq.sequence_by.len(), 1);
        assert!(spec.seq.sequence_by[0].ascending);
        assert_eq!(spec.restriction, CellRestriction::LeftMaximalityMatchedGo);
        assert_eq!(spec.mpred.max_pos(), Some(3));
        // The WHERE clause normalized its timestamps.
        match &spec.seq.filter {
            Pred::And(a, _) => match a.as_ref() {
                Pred::Cmp { value, .. } => assert!(matches!(value, Value::Time(_))),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn render_parse_fixpoint() {
        let db = db();
        let spec = parse_query(&db, Q1).unwrap();
        let rendered = spec.render(&db);
        let reparsed = parse_query(&db, &rendered).unwrap();
        assert_eq!(
            spec.fingerprint(),
            reparsed.fingerprint(),
            "render → parse must be a fixpoint:\n{rendered}"
        );
    }

    #[test]
    fn parses_q3_and_aggregates() {
        let db = db();
        let q3 = r#"
            SELECT SUM(amount) FROM Event
            CLUSTER BY card-id AT individual
            SEQUENCE BY time
            CUBOID BY SUBSTRING (X, Y)
              WITH X AS location AT station, Y AS location AT station
              LEFT-MAXIMALITY (x1, y1)
              WITH x1.action = "in" AND y1.action = "out"
        "#;
        let spec = parse_query(&db, q3).unwrap();
        assert!(matches!(spec.agg, AggFunc::Sum(_, SumMode::AllEvents)));
        let sf = q3.replace("SUM(", "SUM-FIRST(");
        assert!(matches!(
            parse_query(&db, &sf).unwrap().agg,
            AggFunc::Sum(_, SumMode::FirstEvent)
        ));
        let mn = q3.replace("SUM(", "MIN(");
        assert!(matches!(
            parse_query(&db, &mn).unwrap().agg,
            AggFunc::Min(_)
        ));
    }

    #[test]
    fn parses_subsequence_and_restrictions() {
        let db = db();
        let q = r#"
            SELECT COUNT(*) FROM Event
            CLUSTER BY card-id AT individual
            SEQUENCE BY time DESCENDING
            CUBOID BY SUBSEQUENCE (A, B)
              WITH A AS location AT district, B AS location AT district
              ALL-MATCHED (a1, b1)
        "#;
        let spec = parse_query(&db, q).unwrap();
        assert_eq!(spec.template.kind, PatternKind::Subsequence);
        assert_eq!(spec.restriction, CellRestriction::AllMatchedGo);
        assert!(!spec.seq.sequence_by[0].ascending);
        assert_eq!(spec.template.dims[0].level, 1);
        assert!(spec.mpred.is_true());
    }

    #[test]
    fn parses_slices_and_having() {
        let db = db();
        let q = r#"
            SELECT COUNT(*) FROM Event
            CLUSTER BY card-id AT individual
            SEQUENCE BY time
            SEQUENCE GROUP BY card-id AT fare-group
            CUBOID BY SUBSTRING (X, Y)
              WITH X AS location AT station, Y AS location AT station
              LEFT-MAXIMALITY (x1, y1)
            SLICE PATTERN X = "Pentagon"
            SLICE GROUP card-id = "regular"
            HAVING COUNT >= 3
        "#;
        let spec = parse_query(&db, q).unwrap();
        assert_eq!(spec.pattern_slice.len(), 1);
        assert_eq!(spec.global_slice.len(), 1);
        assert_eq!(spec.min_support, Some(3));
        let rendered = spec.render(&db);
        let reparsed = parse_query(&db, &rendered).unwrap();
        assert_eq!(spec.fingerprint(), reparsed.fingerprint());
    }

    #[test]
    fn error_cases_carry_positions() {
        let db = db();
        for (q, needle) in [
            ("SELECT COUNT(*) FROM", "expected a table name"),
            ("SELECT NOPE(x) FROM Event CUBOID BY SUBSTRING (X) WITH X AS location AT station LEFT-MAXIMALITY (x1)", "unknown aggregate"),
            (
                "SELECT COUNT(*) FROM Event CUBOID BY SUBSTRING (X, Y) WITH X AS location AT station LEFT-MAXIMALITY (x1, y1)",
                "no WITH binding",
            ),
            (
                "SELECT COUNT(*) FROM Event CUBOID BY SUBSTRING (X) WITH X AS location AT station LEFT-MAXIMALITY (x1, x2)",
                "placeholders",
            ),
            (
                "SELECT COUNT(*) FROM Event CUBOID BY SUBSTRING (X) WITH X AS location AT galaxy LEFT-MAXIMALITY (x1)",
                "no abstraction level",
            ),
            (
                "SELECT COUNT(*) FROM Event CUBOID BY SUBSTRING (X) WITH X AS location AT station LEFT-MAXIMALITY (x1) WITH z9.action = \"in\"",
                "unknown placeholder",
            ),
        ] {
            let err = parse_query(&db, q).unwrap_err().to_string();
            assert!(err.contains(needle), "query {q:?}: got `{err}`");
        }
    }

    #[test]
    fn unknown_attribute_is_reported() {
        let db = db();
        let q = "SELECT COUNT(*) FROM Event WHERE bogus = 1 CUBOID BY SUBSTRING (X) WITH X AS location AT station LEFT-MAXIMALITY (x1)";
        assert!(matches!(
            parse_query(&db, q),
            Err(Error::UnknownAttribute(_))
        ));
    }

    #[test]
    fn where_supports_in_and_boolean_shapes() {
        let db = db();
        let q = r#"
            SELECT COUNT(*) FROM Event
            WHERE (location IN ("Pentagon", "Wheaton") OR NOT action = "in") AND amount >= 0
            CLUSTER BY card-id AT individual
            SEQUENCE BY time
            CUBOID BY SUBSTRING (X)
              WITH X AS location AT station
              LEFT-MAXIMALITY (x1)
        "#;
        let spec = parse_query(&db, q).unwrap();
        match &spec.seq.filter {
            Pred::And(..) => {}
            other => panic!("expected AND, got {other:?}"),
        }
        // Int literal on the float column must widen.
        let rendered = spec.render(&db);
        assert!(rendered.contains("amount >= 0"), "{rendered}");
        let reparsed = parse_query(&db, &rendered).unwrap();
        assert_eq!(spec.fingerprint(), reparsed.fingerprint());
    }

    #[test]
    fn explain_and_profile_prefixes_parse() {
        let db = db();
        let base = "SELECT COUNT(*) FROM Event CLUSTER BY card-id AT individual SEQUENCE BY time CUBOID BY SUBSTRING (X) WITH X AS location AT station LEFT-MAXIMALITY (x1)";
        let plain = parse_statement(&db, base).unwrap();
        assert_eq!(plain.mode, ExplainMode::Normal);
        let ex = parse_statement(&db, &format!("EXPLAIN {base}")).unwrap();
        assert_eq!(ex.mode, ExplainMode::Explain);
        assert_eq!(ex.spec.fingerprint(), plain.spec.fingerprint());
        let pr = parse_statement(&db, &format!("profile {base}")).unwrap();
        assert_eq!(pr.mode, ExplainMode::Profile, "prefix is case-insensitive");
        assert_eq!(pr.spec.fingerprint(), plain.spec.fingerprint());
        // The prefix must be followed by a complete query.
        assert!(parse_statement(&db, "EXPLAIN").is_err());
        assert!(parse_statement(&db, &format!("EXPLAIN EXPLAIN {base}")).is_err());
    }

    #[test]
    fn trailing_tokens_rejected_but_semicolon_ok() {
        let db = db();
        let base = "SELECT COUNT(*) FROM Event CLUSTER BY card-id AT individual SEQUENCE BY time CUBOID BY SUBSTRING (X) WITH X AS location AT station LEFT-MAXIMALITY (x1)";
        assert!(parse_query(&db, &format!("{base};")).is_ok());
        assert!(parse_query(&db, &format!("{base} garbage")).is_err());
    }

    #[test]
    fn store_statement_parses_tuples() {
        let db = db();
        let stmt = parse_store(
            &db,
            r#"STORE INTO Event VALUES
                ("2007-10-01T08:00", 700, "Pentagon", "in", 1.25),
                ("2007-10-01T08:30", 700, "Wheaton", "out", 0.0);"#,
        )
        .unwrap();
        assert_eq!(stmt.rows.len(), 2);
        assert_eq!(stmt.rows[0][1], Value::Int(700));
        assert_eq!(stmt.rows[1][2], Value::Str("Wheaton".into()));
        assert!(
            matches!(stmt.rows[0][0], Value::Time(_)),
            "string timestamps normalize against the time column"
        );
        // Parsed rows must be appendable as-is.
        let mut db = db;
        for row in &stmt.rows {
            db.push_row(row).unwrap();
        }
    }

    #[test]
    fn store_statement_rejects_bad_shapes() {
        let db = db();
        // Arity too short and too long.
        assert!(parse_store(&db, r#"STORE INTO Event VALUES (1, 2)"#).is_err());
        assert!(parse_store(
            &db,
            r#"STORE INTO Event VALUES ("2007-10-01T08:00", 1, "a", "in", 0.0, 9)"#
        )
        .is_err());
        // Missing VALUES keyword and trailing garbage.
        assert!(parse_store(&db, "STORE INTO Event (1)").is_err());
        assert!(parse_store(
            &db,
            r#"STORE INTO Event VALUES ("2007-10-01T08:00", 1, "a", "in", 0.0) garbage"#
        )
        .is_err());
        // A query is not a STORE.
        assert!(parse_store(&db, "SELECT COUNT(*) FROM Event").is_err());
    }
}
