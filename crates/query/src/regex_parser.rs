//! Parsing for regex-template queries (the §3.2 extension).
//!
//! Grammar (sharing every clause with the main language except the
//! `CUBOID BY` head and the placeholder machinery, which regex templates
//! do not have):
//!
//! ```text
//! regex-query = "SELECT" "COUNT" "(" "*" ")" "FROM" ident
//!               [ "WHERE" pred ]
//!               [ "CLUSTER BY" attr-level {"," attr-level} ]
//!               [ "SEQUENCE BY" sort-key {"," sort-key} ]
//!               [ "SEQUENCE GROUP BY" attr-level {"," attr-level} ]
//!               "CUBOID BY" "REGEX" "(" elem {"," elem} ")"
//!               "WITH" binding {"," binding}
//!               [ "LEFT-MAXIMALITY" | "ALL-MATCHED" ]
//! elem        = symbol ["?" | "+" | "*"] | ".*"
//! ```
//!
//! `.*` is lexed as DOT-STAR; `X?`/`X+`/`X*` attach the quantifier to the
//! preceding symbol.

use solap_eventdb::{EventDb, Result, SeqQuerySpec};
use solap_pattern::{CellRestriction, PatternDim, RegexElem, RegexTemplate};

use crate::lexer::{tokenize, TokenKind};

/// A parsed regex query: the sequence-formation clauses, the regex
/// template and the cell restriction.
#[derive(Debug, Clone)]
pub struct RegexQuery {
    /// Steps 1–4.
    pub seq: SeqQuerySpec,
    /// The regex template.
    pub template: RegexTemplate,
    /// LEFT-MAXIMALITY (default) or ALL-MATCHED.
    pub restriction: CellRestriction,
}

/// Parses a regex-template COUNT query.
pub fn parse_regex_query(db: &EventDb, src: &str) -> Result<RegexQuery> {
    let tokens = tokenize(src)?;
    let mut p = RegexParser {
        inner: crate::parser::ClauseParser::new(db, tokens),
    };
    p.query()
}

struct RegexParser<'a> {
    inner: crate::parser::ClauseParser<'a>,
}

impl<'a> RegexParser<'a> {
    fn query(&mut self) -> Result<RegexQuery> {
        let p = &mut self.inner;
        p.expect_kw("SELECT")?;
        p.expect_kw("COUNT")?;
        p.expect(&TokenKind::LParen, "`(`")?;
        p.expect(&TokenKind::Star, "`*`")?;
        p.expect(&TokenKind::RParen, "`)`")?;
        p.expect_kw("FROM")?;
        let _ = p.ident("a table name")?;
        let seq = p.sequence_clauses()?;
        p.expect_kw("CUBOID")?;
        p.expect_kw("BY")?;
        p.expect_kw("REGEX")?;
        p.expect(&TokenKind::LParen, "`(`")?;
        // Elements: names with optional quantifier, or `.` `*` for a gap.
        #[derive(Debug)]
        enum RawElem {
            Sym(String, Option<char>),
            Gap,
        }
        let mut raw = Vec::new();
        loop {
            match p.peek_kind() {
                Some(TokenKind::Dot) => {
                    p.bump();
                    p.expect(&TokenKind::Star, "`*` after `.`")?;
                    raw.push(RawElem::Gap);
                }
                Some(TokenKind::Ident(_)) => {
                    let name = p.ident("a symbol")?;
                    // Quantifier, if any: `*`, `+` or `?` tokens.
                    let q = match p.peek_kind() {
                        Some(TokenKind::Star) => {
                            p.bump();
                            Some('*')
                        }
                        _ if p.eat_plus() => Some('+'),
                        _ if p.eat_question() => Some('?'),
                        _ => None,
                    };
                    raw.push(RawElem::Sym(name, q));
                }
                _ => return Err(p.err("expected a regex element")),
            }
            if !p.eat_comma() {
                break;
            }
        }
        p.expect(&TokenKind::RParen, "`)`")?;
        p.expect_kw("WITH")?;
        let mut bindings: Vec<(String, u32, usize)> = Vec::new();
        loop {
            let sym = p.ident("a symbol")?;
            p.expect_kw("AS")?;
            let al = p.attr_level()?;
            bindings.push((sym, al.attr, al.level));
            if !p.eat_comma() {
                break;
            }
        }
        let restriction = if p.eat_kw("ALL-MATCHED") {
            CellRestriction::AllMatchedGo
        } else {
            let _ = p.eat_kw("LEFT-MAXIMALITY");
            CellRestriction::LeftMaximalityMatchedGo
        };
        p.finish()?;

        // Assemble the template: dims in first-appearance order.
        let mut dims: Vec<PatternDim> = Vec::new();
        let mut elems = Vec::new();
        for e in raw {
            match e {
                RawElem::Gap => elems.push(RegexElem::Gap),
                RawElem::Sym(name, q) => {
                    let idx = match dims.iter().position(|d| d.name == name) {
                        Some(i) => i,
                        None => {
                            let (_, attr, level) = bindings
                                .iter()
                                .find(|(n, _, _)| *n == name)
                                .ok_or_else(|| solap_eventdb::Error::Parse {
                                    message: format!("symbol `{name}` has no WITH binding"),
                                    offset: 0,
                                })?;
                            dims.push(PatternDim {
                                name: name.clone(),
                                attr: *attr,
                                level: *level,
                            });
                            dims.len() - 1
                        }
                    };
                    elems.push(match q {
                        None => RegexElem::One(idx),
                        Some('?') => RegexElem::Optional(idx),
                        Some('+') => RegexElem::Plus(idx),
                        Some('*') => RegexElem::Star(idx),
                        _ => unreachable!(),
                    });
                }
            }
        }
        let template = RegexTemplate::new(dims, elems)?;
        Ok(RegexQuery {
            seq,
            template,
            restriction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{ColumnType, EventDbBuilder, Value};

    fn db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("location", ColumnType::Str)
            .build()
            .unwrap();
        db.push_row(&[Value::Int(0), Value::Int(0), Value::from("P")])
            .unwrap();
        db.set_base_level_name(2, "station");
        db
    }

    #[test]
    fn parses_layover_round_trip() {
        let db = db();
        let q = parse_regex_query(
            &db,
            r#"
            SELECT COUNT(*) FROM Event
            CLUSTER BY sid AT raw
            SEQUENCE BY pos ASCENDING
            CUBOID BY REGEX (X, Y, .*, Y, X)
              WITH X AS location AT station, Y AS location AT station
              LEFT-MAXIMALITY
            "#,
        )
        .unwrap();
        assert_eq!(q.template.render(), "(X, Y, .*, Y, X)");
        assert_eq!(q.restriction, CellRestriction::LeftMaximalityMatchedGo);
        assert_eq!(q.seq.cluster_by.len(), 1);
    }

    #[test]
    fn parses_quantifiers() {
        let db = db();
        let q = parse_regex_query(
            &db,
            r#"
            SELECT COUNT(*) FROM Event
            CLUSTER BY sid AT raw
            SEQUENCE BY pos
            CUBOID BY REGEX (X, Y+, X*)
              WITH X AS location AT station, Y AS location AT station
              ALL-MATCHED
            "#,
        )
        .unwrap();
        assert_eq!(q.template.render(), "(X, Y+, X*)");
        assert_eq!(q.restriction, CellRestriction::AllMatchedGo);
    }

    #[test]
    fn rejects_unbound_symbols_and_bad_elems() {
        let db = db();
        assert!(parse_regex_query(
            &db,
            "SELECT COUNT(*) FROM Event CLUSTER BY sid AT raw SEQUENCE BY pos CUBOID BY REGEX (X) WITH Y AS location AT station",
        )
        .is_err());
        assert!(parse_regex_query(
            &db,
            "SELECT COUNT(*) FROM Event CLUSTER BY sid AT raw SEQUENCE BY pos CUBOID BY REGEX (.*) WITH X AS location AT station",
        )
        .is_err(), "gap-only template has no mandatory element");
    }
}
