//! # solap-query
//!
//! The S-cuboid specification language of Figure 3 — a lexer and
//! recursive-descent parser producing [`solap_core::SCuboidSpec`].
//!
//! The grammar (inspired by SQL-TS; the paper's full grammar lived in a
//! technical report that is no longer accessible, so this reconstruction
//! covers every construct shown in Figures 3, 5 and 11 plus the navigation
//! extensions this implementation adds):
//!
//! ```text
//! query      := SELECT agg FROM ident
//!               [WHERE pred]
//!               [CLUSTER BY attr-level ("," attr-level)*]
//!               [SEQUENCE BY ident [ASCENDING|DESCENDING] ("," …)*]
//!               [SEQUENCE GROUP BY attr-level ("," attr-level)*]
//!               CUBOID BY (SUBSTRING | SUBSEQUENCE) "(" sym ("," sym)* ")"
//!               WITH sym AS ident AT ident ("," …)*
//!               restriction "(" placeholder ("," placeholder)* ")"
//!               [WITH match-pred]
//!               (SLICE PATTERN sym "=" string)*
//!               (SLICE GROUP ident "=" string)*
//!               [HAVING COUNT ">=" integer]
//! agg        := COUNT "(" "*" ")" | (SUM|SUM-FIRST|AVG|AVG-FIRST|MIN|MAX) "(" ident ")"
//! attr-level := ident AT ident
//! restriction:= LEFT-MAXIMALITY | LEFT-MAXIMALITY-DATA | ALL-MATCHED
//! pred       := or over and over (NOT | "(" pred ")" | ident op literal | ident IN "(" literal,* ")")
//! match-pred := same shape, with placeholder "." ident op literal atoms
//! ```
//!
//! Keywords are case-insensitive; identifiers may contain hyphens
//! (`card-id`, `fare-group`), and string literals use double quotes.
//! [`solap_core::SCuboidSpec::render`] emits this language; parse ∘ render
//! is a fixpoint (property-tested).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod regex_parser;

pub use lexer::{tokenize, Token, TokenKind};
pub use parser::{
    parse_query, parse_statement, parse_store, ExplainMode, Statement, StoreStatement,
};
pub use regex_parser::{parse_regex_query, RegexQuery};
