//! Tokenizer for the S-cuboid specification language.

use solap_eventdb::{Error, Result};

/// A token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`card-id`, `SELECT`, `LEFT-MAXIMALITY`).
    Ident(String),
    /// Double-quoted string literal, unescaped.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;` (optional statement terminator)
    Semi,
    /// `+` (regex quantifier)
    Plus,
    /// `?` (regex quantifier)
    Question,
}

/// A token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source text.
    pub offset: usize,
}

impl Token {
    /// Whether this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-'
}

/// Tokenizes source text.
///
/// Hyphens bind into identifiers (`fare-group` is one token); a hyphen is
/// only a minus sign when it starts a numeric literal in operand position,
/// which this grammar only needs directly before digits.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let start = i;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                // SQL-style comment to end of line.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                i += 1;
            }
            b')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                i += 1;
            }
            b',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                i += 1;
            }
            b'.' => {
                out.push(Token {
                    kind: TokenKind::Dot,
                    offset: start,
                });
                i += 1;
            }
            b'*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    offset: start,
                });
                i += 1;
            }
            b';' => {
                out.push(Token {
                    kind: TokenKind::Semi,
                    offset: start,
                });
                i += 1;
            }
            b'+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                i += 1;
            }
            b'?' => {
                out.push(Token {
                    kind: TokenKind::Question,
                    offset: start,
                });
                i += 1;
            }
            b'=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                i += 1;
            }
            b'!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Token {
                    kind: TokenKind::Ne,
                    offset: start,
                });
                i += 2;
            }
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Token {
                        kind: TokenKind::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'"' | b'\'' => {
                let quote = c;
                i += 1;
                let s0 = i;
                while i < b.len() && b[i] != quote {
                    i += 1;
                }
                if i >= b.len() {
                    return Err(Error::Parse {
                        message: "unterminated string literal".into(),
                        offset: start,
                    });
                }
                out.push(Token {
                    kind: TokenKind::Str(src[s0..i].to_owned()),
                    offset: start,
                });
                i += 1;
            }
            b'0'..=b'9' => {
                i = lex_number(src, b, i, &mut out)?;
            }
            b'-' if i + 1 < b.len() && b[i + 1].is_ascii_digit() => {
                i = lex_number(src, b, i, &mut out)?;
            }
            _ if is_ident_start(c) => {
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_owned()),
                    offset: start,
                });
            }
            _ => {
                return Err(Error::Parse {
                    message: format!(
                        "unexpected character `{}`",
                        src[start..].chars().next().unwrap()
                    ),
                    offset: start,
                })
            }
        }
    }
    Ok(out)
}

fn lex_number(src: &str, b: &[u8], start: usize, out: &mut Vec<Token>) -> Result<usize> {
    let mut i = start;
    if b[i] == b'-' {
        i += 1;
    }
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
        is_float = true;
        i += 1;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
    }
    let text = &src[start..i];
    let kind = if is_float {
        TokenKind::Float(text.parse().map_err(|_| Error::Parse {
            message: format!("bad float `{text}`"),
            offset: start,
        })?)
    } else {
        TokenKind::Int(text.parse().map_err(|_| Error::Parse {
            message: format!("bad integer `{text}`"),
            offset: start,
        })?)
    };
    out.push(Token {
        kind,
        offset: start,
    });
    Ok(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn hyphenated_identifiers() {
        assert_eq!(
            kinds("card-id AT fare-group"),
            vec![
                TokenKind::Ident("card-id".into()),
                TokenKind::Ident("AT".into()),
                TokenKind::Ident("fare-group".into()),
            ]
        );
        assert_eq!(
            kinds("LEFT-MAXIMALITY"),
            vec![TokenKind::Ident("LEFT-MAXIMALITY".into())]
        );
    }

    #[test]
    fn numbers_and_negatives() {
        assert_eq!(
            kinds("42 -3 2.5 -0.25"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(-3),
                TokenKind::Float(2.5),
                TokenKind::Float(-0.25),
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
            ]
        );
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(
            kinds("\"Pentagon\" 'in'"),
            vec![
                TokenKind::Str("Pentagon".into()),
                TokenKind::Str("in".into())
            ]
        );
        assert!(tokenize("\"unterminated").is_err());
    }

    #[test]
    fn placeholders_and_punctuation() {
        assert_eq!(
            kinds("x1.action = \"in\""),
            vec![
                TokenKind::Ident("x1".into()),
                TokenKind::Dot,
                TokenKind::Ident("action".into()),
                TokenKind::Eq,
                TokenKind::Str("in".into()),
            ]
        );
        assert_eq!(
            kinds("COUNT(*);"),
            vec![
                TokenKind::Ident("COUNT".into()),
                TokenKind::LParen,
                TokenKind::Star,
                TokenKind::RParen,
                TokenKind::Semi,
            ]
        );
    }

    #[test]
    fn regex_quantifier_tokens() {
        assert_eq!(
            kinds("X+ Y? .*"),
            vec![
                TokenKind::Ident("X".into()),
                TokenKind::Plus,
                TokenKind::Ident("Y".into()),
                TokenKind::Question,
                TokenKind::Dot,
                TokenKind::Star,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- the aggregate\nCOUNT"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("COUNT".into())
            ]
        );
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let toks = tokenize("select").unwrap();
        assert!(toks[0].is_kw("SELECT"));
        assert!(!toks[0].is_kw("FROM"));
    }

    #[test]
    fn bad_character_reports_offset() {
        let err = tokenize("SELECT @").unwrap_err();
        match err {
            Error::Parse { offset, .. } => assert_eq!(offset, 7),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
