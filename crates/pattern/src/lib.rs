//! # solap-pattern
//!
//! Pattern-based grouping machinery for S-OLAP ("OLAP on Sequence Data",
//! SIGMOD 2008, §3.2 step 5): the biggest distinction of an S-OLAP system
//! from a traditional OLAP system is that a sequence can be characterised
//! not only by attribute values but by the substring/subsequence patterns it
//! possesses.
//!
//! This crate provides:
//!
//! * [`template::PatternTemplate`] — `SUBSTRING (X, Y, Y, X)`-style pattern
//!   templates: a list of symbols, each bound to a *pattern dimension*
//!   (an attribute at an abstraction level).
//! * [`template::CellRestriction`] — what content of a data sequence is
//!   assigned to a cell when it matches: *left-maximality-matched-go*,
//!   *left-maximality-data-go*, or *all-matched-go*.
//! * [`mpred::MatchPred`] — matching predicates over event placeholders
//!   (`x1.action = "in" AND y1.action = "out"` …).
//! * [`matcher`] — occurrence enumeration and per-sequence cell assignment
//!   for both substring and subsequence templates.
//! * [`agg`] — the aggregate functions applied to each S-cuboid cell
//!   (COUNT, and the SUM/AVG/MIN/MAX extensions the paper sketches).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod matcher;
pub mod mpred;
pub mod regex;
pub mod template;

pub use agg::{AggFunc, AggState, AggValue, SumMode};
pub use matcher::{AssignedContent, Assignment, Matcher, Occurrence};
pub use mpred::MatchPred;
pub use regex::{regex_counts, RegexElem, RegexMatcher, RegexOccurrence, RegexTemplate};
pub use template::{CellRestriction, PatternDim, PatternKind, PatternTemplate, TemplateSignature};
