//! Occurrence enumeration and cell assignment.
//!
//! Given a data sequence and a pattern template, the matcher enumerates
//! *occurrences* — position lists whose level values instantiate the
//! template and whose events satisfy the matching predicate — and converts
//! them to *cell assignments* under a [`CellRestriction`]:
//!
//! * left-maximality-matched-go: the leftmost satisfying occurrence per
//!   cell (each sequence contributes at most once per cell — this is what
//!   makes Figure 12 of the paper count `(Pentagon, Wheaton) = 2`);
//! * all-matched-go: every satisfying occurrence;
//! * left-maximality-data-go: leftmost per cell, but the whole sequence is
//!   the assigned content.

use std::cell::Cell;
use std::collections::HashMap;

use solap_eventdb::{EventDb, LevelValue, QueryGovernor, Result, RowId, Sequence};

use crate::mpred::MatchPred;
use crate::template::{CellRestriction, PatternTemplate};

/// One occurrence of a template in a sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Occurrence {
    /// Indices into the sequence's event list, strictly increasing;
    /// contiguous for substring templates.
    pub positions: Vec<u32>,
    /// The cell key: one value per pattern dimension.
    pub cell: Vec<LevelValue>,
}

/// What a cell receives when a sequence is assigned to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignedContent {
    /// The matched events (their indices into the sequence).
    Matched(Vec<u32>),
    /// The whole data sequence (the *data-go* restrictions).
    WholeSequence,
}

/// A (cell, content) assignment produced for one sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// The cell key (pattern-dimension values).
    pub cell: Vec<LevelValue>,
    /// The content assigned.
    pub content: AssignedContent,
}

/// A matcher binds a database, a template and a matching predicate, and
/// amortises per-sequence level-value extraction across its methods.
pub struct Matcher<'a> {
    db: &'a EventDb,
    template: &'a PatternTemplate,
    mpred: &'a MatchPred,
    /// Distinct `(attr, level)` pairs used by the template's dimensions and
    /// the index of each dimension's pair within the distinct list.
    lanes: Vec<(u32, usize)>,
    dim_lane: Vec<usize>,
    /// Optional per-query governor ticked per match-window / DFS node, so
    /// explosive occurrence enumeration stays abortable.
    gov: Option<&'a QueryGovernor>,
    /// Candidate windows / DFS nodes attempted since the last
    /// [`Matcher::take_windows`] (observability; matchers are per-thread,
    /// so a non-atomic cell suffices).
    windows: Cell<u64>,
}

/// Per-sequence extracted values: one lane per distinct `(attr, level)`.
struct SeqView {
    lanes: Vec<Vec<LevelValue>>,
    len: usize,
}

impl SeqView {
    #[inline]
    fn value(&self, lane: usize, idx: usize) -> LevelValue {
        self.lanes[lane][idx]
    }
}

impl<'a> Matcher<'a> {
    /// Creates a matcher. `mpred` placeholder positions must fit the
    /// template length.
    pub fn new(db: &'a EventDb, template: &'a PatternTemplate, mpred: &'a MatchPred) -> Self {
        debug_assert!(
            mpred.max_pos().is_none_or(|p| p < template.m()),
            "matching predicate references placeholder beyond template length"
        );
        let mut lanes: Vec<(u32, usize)> = Vec::new();
        let mut dim_lane = Vec::with_capacity(template.n());
        for d in &template.dims {
            let key = (d.attr, d.level);
            let lane = match lanes.iter().position(|&l| l == key) {
                Some(i) => i,
                None => {
                    lanes.push(key);
                    lanes.len() - 1
                }
            };
            dim_lane.push(lane);
        }
        Matcher {
            db,
            template,
            mpred,
            lanes,
            dim_lane,
            gov: None,
            windows: Cell::new(0),
        }
    }

    /// Attaches a [`QueryGovernor`]; enumeration loops then tick it once
    /// per candidate window or DFS node and abort when a limit trips.
    pub fn with_governor(mut self, gov: &'a QueryGovernor) -> Self {
        self.gov = Some(gov);
        self
    }

    #[inline]
    fn tick(&self) -> Result<()> {
        self.windows.set(self.windows.get() + 1);
        match self.gov {
            Some(g) => g.tick(),
            None => Ok(()),
        }
    }

    /// Returns and resets the number of candidate match windows / DFS nodes
    /// attempted since the last call (flushed into the query recorder by
    /// construction loops).
    pub fn take_windows(&self) -> u64 {
        self.windows.replace(0)
    }

    /// The template this matcher works with.
    pub fn template(&self) -> &PatternTemplate {
        self.template
    }

    fn view(&self, seq: &Sequence) -> Result<SeqView> {
        let mut lanes = Vec::with_capacity(self.lanes.len());
        for &(attr, level) in &self.lanes {
            let mut v = Vec::with_capacity(seq.rows.len());
            // solint: allow(governor-tick) O(rows) lane materialization per sequence; the window/DFS scan that consumes it ticks
            for &row in &seq.rows {
                v.push(self.db.value_at_level(row, attr, level)?);
            }
            lanes.push(v);
        }
        Ok(SeqView {
            lanes,
            len: seq.rows.len(),
        })
    }

    #[inline]
    fn lane_of_pos(&self, pos: usize) -> usize {
        self.dim_lane[self.template.symbols[pos]]
    }

    /// Enumerates satisfying occurrences leftmost-first, calling `f` for
    /// each; `f` returns `false` to stop early.
    pub fn for_each_occurrence(
        &self,
        seq: &Sequence,
        mut f: impl FnMut(&Occurrence) -> bool,
    ) -> Result<()> {
        let view = self.view(seq)?;
        self.for_each_occurrence_in_view(seq, &view, &mut f)
    }

    fn for_each_occurrence_in_view(
        &self,
        seq: &Sequence,
        view: &SeqView,
        f: &mut impl FnMut(&Occurrence) -> bool,
    ) -> Result<()> {
        let m = self.template.m();
        if view.len < m {
            return Ok(());
        }
        match self.template.kind {
            crate::template::PatternKind::Substring => {
                let mut rows: Vec<RowId> = vec![0; m];
                'windows: for start in 0..=(view.len - m) {
                    self.tick()?;
                    let mut cell: Vec<Option<LevelValue>> = vec![None; self.template.n()];
                    for p in 0..m {
                        let v = view.value(self.lane_of_pos(p), start + p);
                        let d = self.template.symbols[p];
                        match cell[d] {
                            Some(prev) if prev != v => continue 'windows,
                            Some(_) => {}
                            None => cell[d] = Some(v),
                        }
                    }
                    rows.copy_from_slice(&seq.rows[start..start + m]);
                    if !self.mpred.eval(self.db, &rows)? {
                        continue;
                    }
                    let occ = Occurrence {
                        positions: (start as u32..(start + m) as u32).collect(),
                        cell: cell.into_iter().map(|c| c.expect("filled")).collect(),
                    };
                    if !f(&occ) {
                        return Ok(());
                    }
                }
                Ok(())
            }
            crate::template::PatternKind::Subsequence => {
                let mut positions: Vec<u32> = Vec::with_capacity(m);
                let mut rows: Vec<RowId> = vec![0; m];
                let mut cell: Vec<Option<LevelValue>> = vec![None; self.template.n()];
                let mut stop = false;
                self.dfs(
                    seq,
                    view,
                    0,
                    0,
                    &mut positions,
                    &mut rows,
                    &mut cell,
                    f,
                    &mut stop,
                )?;
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        seq: &Sequence,
        view: &SeqView,
        p: usize,
        from: usize,
        positions: &mut Vec<u32>,
        rows: &mut Vec<RowId>,
        cell: &mut Vec<Option<LevelValue>>,
        f: &mut impl FnMut(&Occurrence) -> bool,
        stop: &mut bool,
    ) -> Result<()> {
        self.tick()?;
        let m = self.template.m();
        if p == m {
            let occ = Occurrence {
                positions: positions.clone(),
                cell: cell.iter().map(|c| c.expect("filled")).collect(),
            };
            if !f(&occ) {
                *stop = true;
            }
            return Ok(());
        }
        // Not enough events left to complete the pattern.
        if view.len < m - p || from > view.len - (m - p) {
            return Ok(());
        }
        let d = self.template.symbols[p];
        let lane = self.dim_lane[d];
        for i in from..=(view.len - (m - p)) {
            let v = view.value(lane, i);
            let had = cell[d];
            if let Some(prev) = had {
                if prev != v {
                    continue;
                }
            }
            cell[d] = Some(v);
            positions.push(i as u32);
            rows[p] = seq.rows[i];
            // Prune with the conjuncts already determined.
            if self.mpred.eval_prefix(self.db, rows, p + 1)? {
                self.dfs(seq, view, p + 1, i + 1, positions, rows, cell, f, stop)?;
            }
            positions.pop();
            cell[d] = had;
            if *stop {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Produces this sequence's cell assignments under `restriction`,
    /// leftmost-first, deterministic.
    pub fn assignments(
        &self,
        seq: &Sequence,
        restriction: CellRestriction,
    ) -> Result<Vec<Assignment>> {
        let mut out: Vec<Assignment> = Vec::new();
        let mut seen: HashMap<Vec<LevelValue>, ()> = HashMap::new();
        self.for_each_occurrence(seq, |occ| {
            match restriction {
                CellRestriction::AllMatchedGo => out.push(Assignment {
                    cell: occ.cell.clone(),
                    content: AssignedContent::Matched(occ.positions.clone()),
                }),
                CellRestriction::LeftMaximalityMatchedGo => {
                    if seen.insert(occ.cell.clone(), ()).is_none() {
                        out.push(Assignment {
                            cell: occ.cell.clone(),
                            content: AssignedContent::Matched(occ.positions.clone()),
                        });
                    }
                }
                CellRestriction::LeftMaximalityDataGo => {
                    if seen.insert(occ.cell.clone(), ()).is_none() {
                        out.push(Assignment {
                            cell: occ.cell.clone(),
                            content: AssignedContent::WholeSequence,
                        });
                    }
                }
            }
            true
        })?;
        Ok(out)
    }

    /// Finds the leftmost satisfying occurrence whose cell equals `cell`.
    pub fn first_occurrence_of_cell(
        &self,
        seq: &Sequence,
        cell: &[LevelValue],
    ) -> Result<Option<Occurrence>> {
        let mut found = None;
        self.for_each_occurrence(seq, |occ| {
            if occ.cell == cell {
                found = Some(occ.clone());
                false
            } else {
                true
            }
        })?;
        Ok(found)
    }

    /// Counts satisfying occurrences whose cell equals `cell`.
    pub fn count_occurrences_of_cell(&self, seq: &Sequence, cell: &[LevelValue]) -> Result<u64> {
        let mut count = 0;
        self.for_each_occurrence(seq, |occ| {
            if occ.cell == cell {
                count += 1;
            }
            true
        })?;
        Ok(count)
    }

    /// Whether `seq` contains the concrete length-`m` value string `values`
    /// (an instantiation of the template), **ignoring the matching
    /// predicate**. This is the containment test the inverted-index
    /// verification scans use (Figure 15 line 9).
    pub fn contains_pattern(&self, seq: &Sequence, values: &[LevelValue]) -> Result<bool> {
        debug_assert_eq!(values.len(), self.template.m());
        let view = self.view(seq)?;
        let m = values.len();
        if view.len < m {
            return Ok(false);
        }
        match self.template.kind {
            crate::template::PatternKind::Substring => {
                'w: for start in 0..=(view.len - m) {
                    self.tick()?;
                    for (p, &v) in values.iter().enumerate() {
                        if view.value(self.lane_of_pos(p), start + p) != v {
                            continue 'w;
                        }
                    }
                    return Ok(true);
                }
                Ok(false)
            }
            crate::template::PatternKind::Subsequence => {
                // Fixed values: greedy leftmost matching decides existence.
                let mut p = 0;
                for i in 0..view.len {
                    self.tick()?;
                    if view.value(self.lane_of_pos(p), i) == values[p] {
                        p += 1;
                        if p == m {
                            return Ok(true);
                        }
                    }
                }
                Ok(false)
            }
        }
    }

    /// Enumerates, ignoring the matching predicate, every **unique**
    /// length-`m` value string of `seq` that instantiates the template
    /// (Figure 9 line 4 of BUILDINDEX). `f` receives each unique string
    /// once, in first-occurrence order.
    pub fn for_each_unique_pattern(
        &self,
        seq: &Sequence,
        mut f: impl FnMut(&[LevelValue]),
    ) -> Result<()> {
        let view = self.view(seq)?;
        let m = self.template.m();
        if view.len < m {
            return Ok(());
        }
        let mut seen: HashMap<Vec<LevelValue>, ()> = HashMap::new();
        match self.template.kind {
            crate::template::PatternKind::Substring => {
                let mut buf: Vec<LevelValue> = vec![0; m];
                'w: for start in 0..=(view.len - m) {
                    self.tick()?;
                    let mut cell: Vec<Option<LevelValue>> = vec![None; self.template.n()];
                    for p in 0..m {
                        let v = view.value(self.lane_of_pos(p), start + p);
                        let d = self.template.symbols[p];
                        match cell[d] {
                            Some(prev) if prev != v => continue 'w,
                            Some(_) => {}
                            None => cell[d] = Some(v),
                        }
                        *buf.get_mut(p).expect("buf sized m") = v;
                    }
                    if seen.insert(buf.clone(), ()).is_none() {
                        f(&buf);
                    }
                }
            }
            crate::template::PatternKind::Subsequence => {
                // Enumerate via the predicate-free DFS; dedupe value strings.
                let trivial = MatchPred::True;
                let mut free = Matcher::new(self.db, self.template, &trivial);
                free.gov = self.gov;
                let walked = free.for_each_occurrence_in_view(seq, &view, &mut |occ| {
                    let values = self.template.expand_cell(&occ.cell);
                    if seen.insert(values.clone(), ()).is_none() {
                        f(&values);
                    }
                    true
                });
                // Fold the nested matcher's window count into ours so
                // take_windows() sees the full enumeration cost.
                self.windows.set(self.windows.get() + free.take_windows());
                walked?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::PatternKind;
    use solap_eventdb::{CmpOp, ColumnType, EventDbBuilder, Value};

    /// Builds a db holding one station-sequence per test sequence; action
    /// alternates in/out by position (as in Figure 8's note).
    fn db_and_seqs(seqs: &[&[&str]]) -> (EventDb, Vec<Sequence>) {
        let mut db = EventDbBuilder::new()
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .build()
            .unwrap();
        let mut out = Vec::new();
        let mut row = 0u32;
        for (sid, stations) in seqs.iter().enumerate() {
            let mut rows = Vec::new();
            for (i, st) in stations.iter().enumerate() {
                let action = if i % 2 == 0 { "in" } else { "out" };
                db.push_row(&[Value::from(*st), Value::from(action)])
                    .unwrap();
                rows.push(row);
                row += 1;
            }
            out.push(Sequence {
                sid: sid as u32,
                cluster_key: vec![],
                rows,
            });
        }
        (db, out)
    }

    fn template(kind: PatternKind, syms: &[&str]) -> PatternTemplate {
        let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
        for &s in syms {
            if !bindings.iter().any(|(n, _, _)| *n == s) {
                bindings.push((s, 0, 0));
            }
        }
        PatternTemplate::new(kind, syms, &bindings).unwrap()
    }

    /// Figure 8's s1: ⟨Glenmont,Pentagon,Pentagon,Wheaton,Wheaton,Pentagon⟩.
    const S1: &[&str] = &[
        "Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon",
    ];

    #[test]
    fn substring_xy_occurrences() {
        let (db, seqs) = db_and_seqs(&[S1]);
        let t = template(PatternKind::Substring, &["X", "Y"]);
        let p = MatchPred::True;
        let m = Matcher::new(&db, &t, &p);
        let mut cells = Vec::new();
        m.for_each_occurrence(&seqs[0], |o| {
            cells.push(o.cell.clone());
            true
        })
        .unwrap();
        assert_eq!(cells.len(), 5); // all adjacent pairs
    }

    #[test]
    fn fig12_counts_with_in_out_predicate() {
        // Q3: SUBSTRING(X, Y) with x1.action = in, y1.action = out.
        let (db, seqs) = db_and_seqs(&[
            S1,
            &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
            &["Clarendon", "Pentagon"],
            &["Wheaton", "Clarendon", "Deanwood", "Wheaton"],
        ]);
        let t = template(PatternKind::Substring, &["X", "Y"]);
        let p = MatchPred::cmp(0, 1, CmpOp::Eq, "in").and(MatchPred::cmp(1, 1, CmpOp::Eq, "out"));
        let m = Matcher::new(&db, &t, &p);
        let mut counts: HashMap<(String, String), u64> = HashMap::new();
        for s in &seqs {
            for a in m
                .assignments(s, CellRestriction::LeftMaximalityMatchedGo)
                .unwrap()
            {
                let x = db.render_level(0, 0, a.cell[0]);
                let y = db.render_level(0, 0, a.cell[1]);
                *counts.entry((x, y)).or_default() += 1;
            }
        }
        // Figure 12 exactly:
        let expect = [
            (("Clarendon", "Pentagon"), 1),
            (("Deanwood", "Wheaton"), 1),
            (("Glenmont", "Pentagon"), 1),
            (("Pentagon", "Wheaton"), 2),
            (("Wheaton", "Clarendon"), 1),
            (("Wheaton", "Pentagon"), 2),
        ];
        assert_eq!(counts.len(), expect.len());
        for ((x, y), c) in expect {
            assert_eq!(counts[&(x.to_owned(), y.to_owned())], c, "({x},{y})");
        }
    }

    #[test]
    fn left_maximality_vs_all_matched() {
        // ⟨a,a,b,a,a⟩ with pattern (A,A): windows (0,1) and (3,4) match.
        let (db, seqs) = db_and_seqs(&[&["a", "a", "b", "a", "a"]]);
        let t = template(PatternKind::Substring, &["A", "A"]);
        let p = MatchPred::True;
        let m = Matcher::new(&db, &t, &p);
        let lm = m
            .assignments(&seqs[0], CellRestriction::LeftMaximalityMatchedGo)
            .unwrap();
        assert_eq!(lm.len(), 1);
        assert_eq!(lm[0].content, AssignedContent::Matched(vec![0, 1]));
        let all = m
            .assignments(&seqs[0], CellRestriction::AllMatchedGo)
            .unwrap();
        assert_eq!(all.len(), 2);
        let dg = m
            .assignments(&seqs[0], CellRestriction::LeftMaximalityDataGo)
            .unwrap();
        assert_eq!(dg.len(), 1);
        assert_eq!(dg[0].content, AssignedContent::WholeSequence);
    }

    #[test]
    fn repeated_symbols_require_equal_values() {
        let (db, seqs) = db_and_seqs(&[S1]);
        let t = template(PatternKind::Substring, &["X", "Y", "Y", "X"]);
        let p = MatchPred::True;
        let m = Matcher::new(&db, &t, &p);
        let a = m
            .assignments(&seqs[0], CellRestriction::LeftMaximalityMatchedGo)
            .unwrap();
        // Only (Pentagon, Wheaton, Wheaton, Pentagon) at positions 2..6.
        assert_eq!(a.len(), 1);
        assert_eq!(db.render_level(0, 0, a[0].cell[0]), "Pentagon".to_owned());
        assert_eq!(a[0].content, AssignedContent::Matched(vec![2, 3, 4, 5]));
    }

    #[test]
    fn subsequence_matches_with_gaps() {
        let (db, seqs) = db_and_seqs(&[&["a", "x", "b", "x", "c"]]);
        let t = template(PatternKind::Subsequence, &["P", "Q", "R"]);
        let p = MatchPred::True;
        let m = Matcher::new(&db, &t, &p);
        let mut found = false;
        m.for_each_occurrence(&seqs[0], |o| {
            if o.positions == vec![0, 2, 4] {
                found = true;
            }
            true
        })
        .unwrap();
        assert!(found, "gapped occurrence (a,b,c) must be enumerated");
        // Substring matcher must NOT find (a,b,c).
        let ts = template(PatternKind::Substring, &["P", "Q", "R"]);
        let ms = Matcher::new(&db, &ts, &p);
        let mut any = Vec::new();
        ms.for_each_occurrence(&seqs[0], |o| {
            any.push(o.cell.clone());
            true
        })
        .unwrap();
        assert_eq!(any.len(), 3); // only the 3 contiguous windows
    }

    #[test]
    fn subsequence_left_maximality_is_leftmost() {
        // haabaai with pattern (a,a): paper §3.2(b) — the first "aa".
        let (db, seqs) = db_and_seqs(&[&["a", "a", "b", "a", "a"]]);
        let t = template(PatternKind::Subsequence, &["A", "A"]);
        let p = MatchPred::True;
        let m = Matcher::new(&db, &t, &p);
        let lm = m
            .assignments(&seqs[0], CellRestriction::LeftMaximalityMatchedGo)
            .unwrap();
        assert_eq!(lm.len(), 1);
        assert_eq!(lm[0].content, AssignedContent::Matched(vec![0, 1]));
        // all-matched-go: subsequence pairs of a's: positions C(4,2)=6.
        let all = m
            .assignments(&seqs[0], CellRestriction::AllMatchedGo)
            .unwrap();
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn substring_occurrences_subset_of_subsequence() {
        let (db, seqs) = db_and_seqs(&[S1]);
        let p = MatchPred::True;
        let tsub = template(PatternKind::Substring, &["X", "Y"]);
        let tseq = template(PatternKind::Subsequence, &["X", "Y"]);
        let msub = Matcher::new(&db, &tsub, &p);
        let mseq = Matcher::new(&db, &tseq, &p);
        let mut sub_occ = Vec::new();
        msub.for_each_occurrence(&seqs[0], |o| {
            sub_occ.push(o.positions.clone());
            true
        })
        .unwrap();
        let mut seq_occ = Vec::new();
        mseq.for_each_occurrence(&seqs[0], |o| {
            seq_occ.push(o.positions.clone());
            true
        })
        .unwrap();
        for o in &sub_occ {
            assert!(seq_occ.contains(o));
        }
        assert!(seq_occ.len() >= sub_occ.len());
    }

    #[test]
    fn contains_pattern_concrete() {
        let (db, seqs) = db_and_seqs(&[S1]);
        let t = template(PatternKind::Substring, &["X", "Y"]);
        let p = MatchPred::True;
        let m = Matcher::new(&db, &t, &p);
        let pent = db.dict(0).unwrap().lookup("Pentagon").unwrap() as u64;
        let whea = db.dict(0).unwrap().lookup("Wheaton").unwrap() as u64;
        let glen = db.dict(0).unwrap().lookup("Glenmont").unwrap() as u64;
        assert!(m.contains_pattern(&seqs[0], &[pent, whea]).unwrap());
        assert!(m.contains_pattern(&seqs[0], &[glen, pent]).unwrap());
        assert!(!m.contains_pattern(&seqs[0], &[whea, glen]).unwrap());
        // Subsequence containment with gaps.
        let ts = template(PatternKind::Subsequence, &["X", "Y"]);
        let ms = Matcher::new(&db, &ts, &p);
        assert!(ms.contains_pattern(&seqs[0], &[glen, whea]).unwrap());
    }

    #[test]
    fn first_and_count_of_cell() {
        let (db, seqs) = db_and_seqs(&[S1]);
        let t = template(PatternKind::Substring, &["X", "Y"]);
        let p = MatchPred::True;
        let m = Matcher::new(&db, &t, &p);
        let pent = db.dict(0).unwrap().lookup("Pentagon").unwrap() as u64;
        let whea = db.dict(0).unwrap().lookup("Wheaton").unwrap() as u64;
        let first = m
            .first_occurrence_of_cell(&seqs[0], &[pent, whea])
            .unwrap()
            .unwrap();
        assert_eq!(first.positions, vec![2, 3]);
        assert_eq!(
            m.count_occurrences_of_cell(&seqs[0], &[pent, whea])
                .unwrap(),
            1
        );
        assert_eq!(
            m.count_occurrences_of_cell(&seqs[0], &[pent, pent])
                .unwrap(),
            1
        );
        assert!(m
            .first_occurrence_of_cell(&seqs[0], &[whea, whea])
            .unwrap()
            .is_some());
    }

    #[test]
    fn unique_patterns_for_index_build() {
        // Fig 10: L2 lists for s1 contain (Glenmont,Pentagon),
        // (Pentagon,Pentagon), (Pentagon,Wheaton), (Wheaton,Wheaton),
        // (Wheaton,Pentagon) — 5 unique pairs.
        let (db, seqs) = db_and_seqs(&[S1]);
        let t = template(PatternKind::Substring, &["X", "Y"]);
        let p = MatchPred::True;
        let m = Matcher::new(&db, &t, &p);
        let mut uniq = Vec::new();
        m.for_each_unique_pattern(&seqs[0], |v| uniq.push(v.to_vec()))
            .unwrap();
        assert_eq!(uniq.len(), 5);
        // Repeated-symbol template restricts enumeration to instantiations.
        let tx = template(PatternKind::Substring, &["X", "X"]);
        let mx = Matcher::new(&db, &tx, &p);
        let mut uniq2 = Vec::new();
        mx.for_each_unique_pattern(&seqs[0], |v| uniq2.push(v.to_vec()))
            .unwrap();
        assert_eq!(uniq2.len(), 2); // (Pentagon,Pentagon) and (Wheaton,Wheaton)
    }

    #[test]
    fn too_short_sequences_produce_nothing() {
        let (db, seqs) = db_and_seqs(&[&["a"]]);
        let t = template(PatternKind::Substring, &["X", "Y"]);
        let p = MatchPred::True;
        let m = Matcher::new(&db, &t, &p);
        assert!(m
            .assignments(&seqs[0], CellRestriction::AllMatchedGo)
            .unwrap()
            .is_empty());
        assert!(!m.contains_pattern(&seqs[0], &[0, 0]).unwrap());
        let ts = template(PatternKind::Subsequence, &["X", "Y"]);
        let ms = Matcher::new(&db, &ts, &p);
        assert!(ms
            .assignments(&seqs[0], CellRestriction::AllMatchedGo)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn early_stop_is_respected() {
        let (db, seqs) = db_and_seqs(&[S1]);
        let t = template(PatternKind::Substring, &["X", "Y"]);
        let p = MatchPred::True;
        let m = Matcher::new(&db, &t, &p);
        let mut n = 0;
        m.for_each_occurrence(&seqs[0], |_| {
            n += 1;
            n < 2
        })
        .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn predicate_prunes_subsequence_dfs() {
        // Predicate forces position 0 to be an "in" event (even index).
        let (db, seqs) = db_and_seqs(&[S1]);
        let t = template(PatternKind::Subsequence, &["X", "Y"]);
        let p = MatchPred::cmp(0, 1, CmpOp::Eq, "in");
        let m = Matcher::new(&db, &t, &p);
        m.for_each_occurrence(&seqs[0], |o| {
            assert!(
                o.positions[0] % 2 == 0,
                "pruned position leaked: {:?}",
                o.positions
            );
            true
        })
        .unwrap();
    }
}
