//! Pattern templates and cell restrictions (§3.2 step 5 of the paper).

use std::hash::{Hash, Hasher};

use solap_eventdb::{AttrId, Error, LevelValue, Result};

/// Whether a template matches contiguous windows (`SUBSTRING`) or ordered
/// gapped occurrences (`SUBSEQUENCE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// Contiguous occurrences.
    Substring,
    /// Order-preserving, possibly gapped occurrences.
    Subsequence,
}

impl PatternKind {
    /// The query-language keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            PatternKind::Substring => "SUBSTRING",
            PatternKind::Subsequence => "SUBSEQUENCE",
        }
    }
}

/// A pattern dimension: a distinct template symbol bound to an attribute at
/// an abstraction level (`X AS location AT station`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternDim {
    /// The symbol name (`X`).
    pub name: String,
    /// The bound attribute.
    pub attr: AttrId,
    /// The abstraction level of the attribute's hierarchy.
    pub level: usize,
}

/// How matched content is assigned to cells (§3.2 step 5(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellRestriction {
    /// *left-maximality-matched-go*: only the leftmost satisfying occurrence
    /// of a cell's pattern is assigned to the cell (so each sequence
    /// contributes at most once per cell). The paper's default.
    #[default]
    LeftMaximalityMatchedGo,
    /// *left-maximality-data-go*: like left-maximality, but the **whole
    /// data sequence** (not just the matched content) is assigned.
    LeftMaximalityDataGo,
    /// *all-matched-go*: every satisfying occurrence is assigned.
    AllMatchedGo,
}

impl CellRestriction {
    /// The query-language keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            CellRestriction::LeftMaximalityMatchedGo => "LEFT-MAXIMALITY",
            CellRestriction::LeftMaximalityDataGo => "LEFT-MAXIMALITY-DATA",
            CellRestriction::AllMatchedGo => "ALL-MATCHED",
        }
    }
}

/// A pattern template: `m` symbols over `n ≤ m` pattern dimensions.
///
/// `symbols[p]` is the index into `dims` of the symbol at position `p`; the
/// template `(X, Y, Y, X)` has `dims = [X, Y]` and `symbols = [0, 1, 1, 0]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternTemplate {
    /// Substring or subsequence.
    pub kind: PatternKind,
    /// The pattern dimensions, in order of first appearance.
    pub dims: Vec<PatternDim>,
    /// Per-position dimension indices (length `m`).
    pub symbols: Vec<usize>,
}

impl PatternTemplate {
    /// Builds a template from a symbol list like `["X", "Y", "Y", "X"]` and
    /// per-dimension bindings `(name, attr, level)`.
    ///
    /// Every symbol must have a binding; every binding must be used.
    pub fn new(
        kind: PatternKind,
        symbol_names: &[&str],
        bindings: &[(&str, AttrId, usize)],
    ) -> Result<Self> {
        if symbol_names.is_empty() {
            return Err(Error::InvalidOperation(
                "pattern template must have at least one symbol".into(),
            ));
        }
        let mut dims: Vec<PatternDim> = Vec::new();
        let mut symbols = Vec::with_capacity(symbol_names.len());
        for &s in symbol_names {
            let idx = match dims.iter().position(|d| d.name == s) {
                Some(i) => i,
                None => {
                    let (_, attr, level) =
                        bindings.iter().find(|(n, _, _)| *n == s).ok_or_else(|| {
                            Error::InvalidOperation(format!("symbol `{s}` has no WITH binding"))
                        })?;
                    dims.push(PatternDim {
                        name: s.to_owned(),
                        attr: *attr,
                        level: *level,
                    });
                    dims.len() - 1
                }
            };
            symbols.push(idx);
        }
        for (n, _, _) in bindings {
            if !dims.iter().any(|d| d.name == *n) {
                return Err(Error::InvalidOperation(format!(
                    "binding for `{n}` is not used by any symbol"
                )));
            }
        }
        Ok(PatternTemplate {
            kind,
            dims,
            symbols,
        })
    }

    /// Number of symbols `m` (the pattern length).
    pub fn m(&self) -> usize {
        self.symbols.len()
    }

    /// Number of pattern dimensions `n`.
    pub fn n(&self) -> usize {
        self.dims.len()
    }

    /// The dimension bound at position `p`.
    pub fn dim_at(&self, p: usize) -> &PatternDim {
        &self.dims[self.symbols[p]]
    }

    /// Whether all symbols are pairwise distinct (`n == m`). Only then may
    /// P-ROLL-UP be answered by merging inverted lists (§4.2.2 item 4: the
    /// paper's s6 counter-example shows repeated symbols break the merge).
    pub fn all_symbols_distinct(&self) -> bool {
        self.n() == self.m()
    }

    /// Whether a concrete length-`m` value string instantiates the template
    /// (repeated symbols must carry equal values).
    pub fn is_instantiation(&self, values: &[LevelValue]) -> bool {
        debug_assert_eq!(values.len(), self.m());
        let mut first_seen: Vec<Option<LevelValue>> = vec![None; self.n()];
        for (p, &v) in values.iter().enumerate() {
            match first_seen[self.symbols[p]] {
                Some(prev) if prev != v => return false,
                Some(_) => {}
                None => first_seen[self.symbols[p]] = Some(v),
            }
        }
        true
    }

    /// Projects a length-`m` instantiation onto the `n` pattern dimensions
    /// (the cell key). Caller must ensure `is_instantiation(values)`.
    pub fn cell_of(&self, values: &[LevelValue]) -> Vec<LevelValue> {
        let mut cell = vec![0; self.n()];
        let mut seen = vec![false; self.n()];
        for (p, &v) in values.iter().enumerate() {
            let d = self.symbols[p];
            if !seen[d] {
                seen[d] = true;
                cell[d] = v;
            }
        }
        cell
    }

    /// Expands a cell key back to the length-`m` value string.
    pub fn expand_cell(&self, cell: &[LevelValue]) -> Vec<LevelValue> {
        debug_assert_eq!(cell.len(), self.n());
        self.symbols.iter().map(|&d| cell[d]).collect()
    }

    /// Renders the template as it appears in the `CUBOID BY` clause, e.g.
    /// `SUBSTRING (X, Y, Y, X)`.
    pub fn render_head(&self) -> String {
        let syms: Vec<&str> = self
            .symbols
            .iter()
            .map(|&d| self.dims[d].name.as_str())
            .collect();
        format!("{} ({})", self.kind.keyword(), syms.join(", "))
    }

    /// The structural signature identifying which inverted index serves this
    /// template. Equality classes are renumbered in first-appearance order,
    /// so templates that differ only in symbol names or in the internal
    /// ordering of `dims` (as produced by PREPEND) share a signature.
    pub fn signature(&self) -> TemplateSignature {
        let mut map: Vec<Option<u8>> = vec![None; self.n()];
        let mut next = 0u8;
        let eq_classes = self
            .symbols
            .iter()
            .map(|&d| {
                let m = &mut map[d];
                if m.is_none() {
                    *m = Some(next);
                    next += 1;
                }
                m.expect("just set")
            })
            .collect();
        TemplateSignature {
            kind: self.kind,
            per_position: self
                .symbols
                .iter()
                .map(|&d| (self.dims[d].attr, self.dims[d].level))
                .collect(),
            eq_classes,
        }
    }

    /// Reconstructs a template from a structural signature, with synthetic
    /// symbol names (`P0`, `P1`, …). Used by the inverted-index engine to
    /// materialise prefix templates when walking the join ladder.
    pub fn from_signature(sig: &TemplateSignature) -> Self {
        let mut dims: Vec<PatternDim> = Vec::new();
        let mut symbols = Vec::with_capacity(sig.eq_classes.len());
        for (p, &class) in sig.eq_classes.iter().enumerate() {
            let idx = class as usize;
            if idx == dims.len() {
                let (attr, level) = sig.per_position[p];
                dims.push(PatternDim {
                    name: format!("P{idx}"),
                    attr,
                    level,
                });
            }
            symbols.push(idx);
        }
        PatternTemplate {
            kind: sig.kind,
            dims,
            symbols,
        }
    }

    /// A fresh, unused symbol name for APPEND/PREPEND (Z, A, B, …).
    pub fn fresh_symbol_name(&self) -> String {
        const CANDIDATES: &[&str] = &[
            "Z", "A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M", "N", "O", "P",
            "Q", "R", "S", "T", "U", "V", "W",
        ];
        for c in CANDIDATES {
            if !self.dims.iter().any(|d| d.name == *c) {
                return (*c).to_owned();
            }
        }
        let mut i = 0;
        loop {
            let name = format!("S{i}");
            if !self.dims.iter().any(|d| d.name == name) {
                return name;
            }
            i += 1;
        }
    }
}

/// The structural identity of a template for index caching: the
/// per-position `(attribute, level)` bindings plus the symbol-equality
/// classes. Two templates with the same signature are served by the same
/// inverted index (e.g. `(X, Y, Y, X)` over stations, regardless of symbol
/// names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateSignature {
    /// Substring or subsequence.
    pub kind: PatternKind,
    /// `(attr, level)` per position.
    pub per_position: Vec<(AttrId, usize)>,
    /// Equality-class id per position (first-appearance order).
    pub eq_classes: Vec<u8>,
}

impl Hash for TemplateSignature {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.kind.hash(state);
        self.per_position.hash(state);
        self.eq_classes.hash(state);
    }
}

impl TemplateSignature {
    /// The prefix signature of the first `k` positions (used to find the
    /// largest available index to join from).
    pub fn prefix(&self, k: usize) -> TemplateSignature {
        let mut eq: Vec<u8> = self.eq_classes[..k].to_vec();
        // Renumber classes in first-appearance order so prefixes of
        // different templates with identical structure collide.
        let mut map: Vec<Option<u8>> = vec![None; 256];
        let mut next = 0u8;
        for c in eq.iter_mut() {
            let m = &mut map[*c as usize];
            if m.is_none() {
                *m = Some(next);
                next += 1;
            }
            *c = m.expect("just set");
        }
        TemplateSignature {
            kind: self.kind,
            per_position: self.per_position[..k].to_vec(),
            eq_classes: eq,
        }
    }

    /// Pattern length.
    pub fn m(&self) -> usize {
        self.per_position.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xyyx() -> PatternTemplate {
        PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y", "Y", "X"],
            &[("X", 2, 0), ("Y", 2, 0)],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let t = xyyx();
        assert_eq!(t.m(), 4);
        assert_eq!(t.n(), 2);
        assert_eq!(t.symbols, vec![0, 1, 1, 0]);
        assert_eq!(t.dim_at(2).name, "Y");
        assert!(!t.all_symbols_distinct());
        assert_eq!(t.render_head(), "SUBSTRING (X, Y, Y, X)");
    }

    #[test]
    fn missing_binding_rejected() {
        let r = PatternTemplate::new(PatternKind::Substring, &["X", "Y"], &[("X", 0, 0)]);
        assert!(r.is_err());
        let r = PatternTemplate::new(PatternKind::Substring, &[], &[]);
        assert!(r.is_err());
        let r = PatternTemplate::new(PatternKind::Substring, &["X"], &[("X", 0, 0), ("Y", 0, 0)]);
        assert!(r.is_err(), "unused binding must be rejected");
    }

    #[test]
    fn instantiation_checks_repeats() {
        let t = xyyx();
        // (Pentagon, Wheaton, Wheaton, Pentagon) instantiates (X,Y,Y,X)…
        assert!(t.is_instantiation(&[7, 3, 3, 7]));
        // …but (Pentagon, Wheaton, Glenmont, Pentagon) does not (paper §3.2).
        assert!(!t.is_instantiation(&[7, 3, 5, 7]));
        assert!(!t.is_instantiation(&[7, 3, 3, 8]));
    }

    #[test]
    fn cell_roundtrip() {
        let t = xyyx();
        let cell = t.cell_of(&[7, 3, 3, 7]);
        assert_eq!(cell, vec![7, 3]);
        assert_eq!(t.expand_cell(&cell), vec![7, 3, 3, 7]);
    }

    #[test]
    fn signatures_ignore_symbol_names() {
        let a = xyyx();
        let b = PatternTemplate::new(
            PatternKind::Substring,
            &["P", "Q", "Q", "P"],
            &[("P", 2, 0), ("Q", 2, 0)],
        )
        .unwrap();
        assert_eq!(a.signature(), b.signature());
        let c = PatternTemplate::new(
            PatternKind::Subsequence,
            &["X", "Y", "Y", "X"],
            &[("X", 2, 0), ("Y", 2, 0)],
        )
        .unwrap();
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn prefix_signature_renumbers() {
        // Prefix of (Y, Y, X) structure should equal an (A, A, B) template.
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["Y", "Y", "X"],
            &[("Y", 2, 0), ("X", 2, 0)],
        )
        .unwrap();
        let u = PatternTemplate::new(PatternKind::Substring, &["A", "A"], &[("A", 2, 0)]).unwrap();
        assert_eq!(t.signature().prefix(2), u.signature());
    }

    #[test]
    fn from_signature_roundtrips_structure() {
        let t = xyyx();
        let u = PatternTemplate::from_signature(&t.signature());
        assert_eq!(u.signature(), t.signature());
        assert_eq!(u.symbols, t.symbols);
        assert_eq!(u.dims[0].name, "P0");
        // Prefix signatures materialise too.
        let p = PatternTemplate::from_signature(&t.signature().prefix(3));
        assert_eq!(p.m(), 3);
        assert_eq!(p.symbols, vec![0, 1, 1]);
    }

    #[test]
    fn fresh_symbol_names() {
        let t = xyyx();
        assert_eq!(t.fresh_symbol_name(), "Z");
        let u = PatternTemplate::new(PatternKind::Substring, &["Z"], &[("Z", 0, 0)]).unwrap();
        assert_eq!(u.fresh_symbol_name(), "A");
    }

    #[test]
    fn restriction_keywords() {
        assert_eq!(
            CellRestriction::LeftMaximalityMatchedGo.keyword(),
            "LEFT-MAXIMALITY"
        );
        assert_eq!(CellRestriction::AllMatchedGo.keyword(), "ALL-MATCHED");
        assert_eq!(
            CellRestriction::default(),
            CellRestriction::LeftMaximalityMatchedGo
        );
    }
}
