//! Regular-expression pattern templates — the §3.2 extension the paper
//! sketches: "the current S-cuboid specification only supports substring or
//! subsequence pattern templates. It can be extended so that pattern
//! templates of regular expressions can be supported."
//!
//! A [`RegexTemplate`] is a sequence of elements over pattern dimensions:
//!
//! * `One(X)` — exactly one event whose value instantiates `X`;
//! * `Optional(X)` — zero or one such event;
//! * `Plus(X)` — one or more consecutive such events (e.g. a passenger
//!   re-entering the same station repeatedly);
//! * `Star(X)` — zero or more;
//! * `Gap` — any run of events, matched transparently (turning the
//!   template from substring-like into subsequence-like where placed).
//!
//! As with plain templates, repeated occurrences of the same dimension must
//! carry equal values; the cell key is one value per dimension. Substring
//! and subsequence templates are special cases (`One` chains, and `One`
//! chains interleaved with `Gap`s), which the tests use as equivalence
//! oracles against [`crate::matcher::Matcher`].

use std::collections::HashMap;

use solap_eventdb::{EventDb, LevelValue, QueryGovernor, Result, Sequence};

use crate::template::{CellRestriction, PatternDim};

/// One element of a regex template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegexElem {
    /// Exactly one event of the dimension (by index into
    /// [`RegexTemplate::dims`]).
    One(usize),
    /// Zero or one event of the dimension.
    Optional(usize),
    /// One or more consecutive events of the dimension (all equal to the
    /// cell's value).
    Plus(usize),
    /// Zero or more consecutive events of the dimension.
    Star(usize),
    /// Any (possibly empty) run of arbitrary events.
    Gap,
}

impl RegexElem {
    fn dim(&self) -> Option<usize> {
        match self {
            RegexElem::One(d)
            | RegexElem::Optional(d)
            | RegexElem::Plus(d)
            | RegexElem::Star(d) => Some(*d),
            RegexElem::Gap => None,
        }
    }
}

/// A regular-expression pattern template.
#[derive(Debug, Clone, PartialEq)]
pub struct RegexTemplate {
    /// The pattern dimensions (each must be used by ≥ 1 element).
    pub dims: Vec<PatternDim>,
    /// The elements, left to right.
    pub elems: Vec<RegexElem>,
}

impl RegexTemplate {
    /// Builds a template, validating dimension references.
    pub fn new(dims: Vec<PatternDim>, elems: Vec<RegexElem>) -> Result<Self> {
        use solap_eventdb::Error;
        if elems.is_empty() {
            return Err(Error::InvalidOperation(
                "regex template must have at least one element".into(),
            ));
        }
        for (i, e) in elems.iter().enumerate() {
            if let Some(d) = e.dim() {
                if d >= dims.len() {
                    return Err(Error::InvalidOperation(format!(
                        "element #{i} references dimension #{d} but there are only {}",
                        dims.len()
                    )));
                }
            }
        }
        for (d, dim) in dims.iter().enumerate() {
            if !elems.iter().any(|e| e.dim() == Some(d)) {
                return Err(Error::InvalidOperation(format!(
                    "dimension `{}` is not used by any element",
                    dim.name
                )));
            }
        }
        // A template of only Gaps/Stars/Optionals would match everything
        // vacuously with unbound dimensions; require one mandatory element.
        if !elems
            .iter()
            .any(|e| matches!(e, RegexElem::One(_) | RegexElem::Plus(_)))
        {
            return Err(Error::InvalidOperation(
                "regex template needs at least one mandatory (One/Plus) element".into(),
            ));
        }
        Ok(RegexTemplate { dims, elems })
    }

    /// Number of pattern dimensions.
    pub fn n(&self) -> usize {
        self.dims.len()
    }

    /// Renders the template, e.g. `(X, Y+, .*, X?)`.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .elems
            .iter()
            .map(|e| match e {
                RegexElem::One(d) => self.dims[*d].name.clone(),
                RegexElem::Optional(d) => format!("{}?", self.dims[*d].name),
                RegexElem::Plus(d) => format!("{}+", self.dims[*d].name),
                RegexElem::Star(d) => format!("{}*", self.dims[*d].name),
                RegexElem::Gap => ".*".into(),
            })
            .collect();
        format!("({})", parts.join(", "))
    }
}

/// One occurrence of a regex template: the cell it instantiates and the
/// sequence positions consumed by non-[`RegexElem::Gap`] elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexOccurrence {
    /// One value per pattern dimension.
    pub cell: Vec<LevelValue>,
    /// Positions (indices into the sequence) consumed by value elements.
    pub positions: Vec<u32>,
}

/// Matches a [`RegexTemplate`] against sequences.
pub struct RegexMatcher<'a> {
    db: &'a EventDb,
    template: &'a RegexTemplate,
    gov: Option<&'a QueryGovernor>,
}

impl<'a> RegexMatcher<'a> {
    /// Creates a matcher.
    pub fn new(db: &'a EventDb, template: &'a RegexTemplate) -> Self {
        RegexMatcher {
            db,
            template,
            gov: None,
        }
    }

    /// Attaches a [`QueryGovernor`]; the backtracking walk then ticks it
    /// once per node, keeping explosive match counts abortable.
    pub fn with_governor(mut self, gov: &'a QueryGovernor) -> Self {
        self.gov = Some(gov);
        self
    }

    #[inline]
    fn tick(&self) -> Result<()> {
        match self.gov {
            Some(g) => g.tick(),
            None => Ok(()),
        }
    }

    fn values(&self, seq: &Sequence) -> Result<Vec<Vec<LevelValue>>> {
        // One lane per dimension (dims may differ in attr/level).
        let mut lanes = Vec::with_capacity(self.template.n());
        for d in &self.template.dims {
            let mut lane = Vec::with_capacity(seq.rows.len());
            for &row in &seq.rows {
                lane.push(self.db.value_at_level(row, d.attr, d.level)?);
            }
            lanes.push(lane);
        }
        Ok(lanes)
    }

    /// Enumerates occurrences leftmost-first (ordered by start position,
    /// then lexicographic backtracking order); `f` returns `false` to stop.
    pub fn for_each_occurrence(
        &self,
        seq: &Sequence,
        mut f: impl FnMut(&RegexOccurrence) -> bool,
    ) -> Result<()> {
        let lanes = self.values(seq)?;
        let len = seq.rows.len();
        let mut bindings: Vec<Option<LevelValue>> = vec![None; self.template.n()];
        let mut positions: Vec<u32> = Vec::new();
        let mut stop = false;
        for start in 0..len {
            self.walk(
                &lanes,
                len,
                start,
                0,
                &mut bindings,
                &mut positions,
                &mut f,
                &mut stop,
            )?;
            if stop {
                break;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        lanes: &[Vec<LevelValue>],
        len: usize,
        pos: usize,
        elem: usize,
        bindings: &mut Vec<Option<LevelValue>>,
        positions: &mut Vec<u32>,
        f: &mut impl FnMut(&RegexOccurrence) -> bool,
        stop: &mut bool,
    ) -> Result<()> {
        self.tick()?;
        if *stop {
            return Ok(());
        }
        if elem == self.template.elems.len() {
            // All dimensions are bound (every dim has a mandatory or taken
            // optional element on this path… optionals may leave a dim
            // unbound — such paths are rejected).
            if bindings.iter().all(Option::is_some) {
                let occ = RegexOccurrence {
                    cell: bindings.iter().map(|b| b.expect("checked")).collect(),
                    positions: positions.clone(),
                };
                if !f(&occ) {
                    *stop = true;
                }
            }
            return Ok(());
        }
        match self.template.elems[elem] {
            RegexElem::One(d) => {
                self.consume_one(lanes, len, pos, elem, d, bindings, positions, f, stop)?;
            }
            RegexElem::Optional(d) => {
                // Take it…
                self.consume_one(lanes, len, pos, elem, d, bindings, positions, f, stop)?;
                // …or skip it.
                self.walk(lanes, len, pos, elem + 1, bindings, positions, f, stop)?;
            }
            RegexElem::Plus(d) => {
                self.consume_run(lanes, len, pos, elem, d, bindings, positions, f, stop)?;
            }
            RegexElem::Star(d) => {
                // Zero occurrences…
                self.walk(lanes, len, pos, elem + 1, bindings, positions, f, stop)?;
                if *stop {
                    return Ok(());
                }
                // …or behave like Plus.
                self.consume_run(lanes, len, pos, elem, d, bindings, positions, f, stop)?;
            }
            RegexElem::Gap => {
                for skip in 0..=(len - pos) {
                    self.walk(
                        lanes,
                        len,
                        pos + skip,
                        elem + 1,
                        bindings,
                        positions,
                        f,
                        stop,
                    )?;
                    if *stop {
                        return Ok(());
                    }
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn consume_one(
        &self,
        lanes: &[Vec<LevelValue>],
        len: usize,
        pos: usize,
        elem: usize,
        d: usize,
        bindings: &mut Vec<Option<LevelValue>>,
        positions: &mut Vec<u32>,
        f: &mut impl FnMut(&RegexOccurrence) -> bool,
        stop: &mut bool,
    ) -> Result<()> {
        if pos >= len {
            return Ok(());
        }
        let v = lanes[d][pos];
        let had = bindings[d];
        if let Some(b) = had {
            if b != v {
                return Ok(());
            }
        }
        bindings[d] = Some(v);
        positions.push(pos as u32);
        self.walk(lanes, len, pos + 1, elem + 1, bindings, positions, f, stop)?;
        positions.pop();
        bindings[d] = had;
        Ok(())
    }

    /// Consumes 1..k consecutive events of dimension `d` (all equal to the
    /// run's binding), recursing after each prefix of the run; restores the
    /// binding that existed on entry when the run unwinds.
    #[allow(clippy::too_many_arguments)]
    fn consume_run(
        &self,
        lanes: &[Vec<LevelValue>],
        len: usize,
        pos: usize,
        elem: usize,
        d: usize,
        bindings: &mut Vec<Option<LevelValue>>,
        positions: &mut Vec<u32>,
        f: &mut impl FnMut(&RegexOccurrence) -> bool,
        stop: &mut bool,
    ) -> Result<()> {
        let entry_binding = bindings[d];
        let mut taken = 0;
        let mut p = pos;
        loop {
            if p >= len {
                break;
            }
            let v = lanes[d][p];
            if let Some(b) = bindings[d] {
                if b != v {
                    break;
                }
            }
            bindings[d] = Some(v);
            positions.push(p as u32);
            taken += 1;
            p += 1;
            self.walk(lanes, len, p, elem + 1, bindings, positions, f, stop)?;
            if *stop {
                break;
            }
        }
        for _ in 0..taken {
            positions.pop();
        }
        bindings[d] = entry_binding;
        Ok(())
    }

    /// Counts cells for one sequence under a restriction (COUNT only):
    /// left-maximality counts each cell once; all-matched counts distinct
    /// occurrences (dedup by consumed positions + cell).
    pub fn count_cells(
        &self,
        seq: &Sequence,
        restriction: CellRestriction,
    ) -> Result<HashMap<Vec<LevelValue>, u64>> {
        let mut out: HashMap<Vec<LevelValue>, u64> = HashMap::new();
        match restriction {
            CellRestriction::LeftMaximalityMatchedGo | CellRestriction::LeftMaximalityDataGo => {
                self.for_each_occurrence(seq, |occ| {
                    out.entry(occ.cell.clone()).or_insert(1);
                    true
                })?;
            }
            CellRestriction::AllMatchedGo => {
                let mut seen: std::collections::HashSet<(Vec<LevelValue>, Vec<u32>)> =
                    std::collections::HashSet::new();
                self.for_each_occurrence(seq, |occ| {
                    if seen.insert((occ.cell.clone(), occ.positions.clone())) {
                        *out.entry(occ.cell.clone()).or_insert(0) += 1;
                    }
                    true
                })?;
            }
        }
        Ok(out)
    }
}

/// Counts a regex template over a set of sequences: the COUNT S-cuboid of
/// the extension, as a map `cell → count`.
pub fn regex_counts<'a>(
    db: &EventDb,
    sequences: impl IntoIterator<Item = &'a Sequence>,
    template: &RegexTemplate,
    restriction: CellRestriction,
) -> Result<HashMap<Vec<LevelValue>, u64>> {
    let matcher = RegexMatcher::new(db, template);
    let mut out: HashMap<Vec<LevelValue>, u64> = HashMap::new();
    for seq in sequences {
        for (cell, c) in matcher.count_cells(seq, restriction)? {
            *out.entry(cell).or_insert(0) += c;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Matcher;
    use crate::mpred::MatchPred;
    use crate::template::{PatternKind, PatternTemplate};
    use solap_eventdb::{ColumnType, EventDbBuilder, Value};

    fn db_and_seqs(seqs: &[&[&str]]) -> (EventDb, Vec<Sequence>) {
        let mut db = EventDbBuilder::new()
            .dimension("item", ColumnType::Str)
            .build()
            .unwrap();
        let mut out = Vec::new();
        let mut row = 0u32;
        for (sid, items) in seqs.iter().enumerate() {
            let mut rows = Vec::new();
            for it in items.iter() {
                db.push_row(&[Value::from(*it)]).unwrap();
                rows.push(row);
                row += 1;
            }
            out.push(Sequence {
                sid: sid as u32,
                cluster_key: vec![],
                rows,
            });
        }
        (db, out)
    }

    fn dim(name: &str) -> PatternDim {
        PatternDim {
            name: name.into(),
            attr: 0,
            level: 0,
        }
    }

    fn v(db: &EventDb, s: &str) -> u64 {
        db.dict(0).unwrap().lookup(s).unwrap() as u64
    }

    #[test]
    fn validation() {
        assert!(RegexTemplate::new(vec![dim("X")], vec![]).is_err());
        assert!(RegexTemplate::new(vec![dim("X")], vec![RegexElem::One(3)]).is_err());
        assert!(
            RegexTemplate::new(vec![dim("X"), dim("Y")], vec![RegexElem::One(0)]).is_err(),
            "unused dimension"
        );
        assert!(
            RegexTemplate::new(vec![dim("X")], vec![RegexElem::Star(0)]).is_err(),
            "no mandatory element"
        );
        let t = RegexTemplate::new(
            vec![dim("X"), dim("Y")],
            vec![
                RegexElem::One(0),
                RegexElem::Plus(1),
                RegexElem::Gap,
                RegexElem::Optional(0),
            ],
        )
        .unwrap();
        assert_eq!(t.render(), "(X, Y+, .*, X?)");
    }

    #[test]
    fn plus_matches_runs() {
        // (X, Y+, X): a bounded by a run of b's.
        let (db, seqs) = db_and_seqs(&[&["a", "b", "b", "b", "a"]]);
        let t = RegexTemplate::new(
            vec![dim("X"), dim("Y")],
            vec![RegexElem::One(0), RegexElem::Plus(1), RegexElem::One(0)],
        )
        .unwrap();
        let m = RegexMatcher::new(&db, &t);
        let mut occs = Vec::new();
        m.for_each_occurrence(&seqs[0], |o| {
            occs.push(o.clone());
            true
        })
        .unwrap();
        // Two occurrences: the full a-bbb-a span, and — because distinct
        // dimensions may bind equal values — (X=b, Y=b, X=b) inside the run.
        assert_eq!(occs.len(), 2);
        let ab = occs
            .iter()
            .find(|o| o.cell == vec![v(&db, "a"), v(&db, "b")])
            .expect("the (a, b) round trip");
        assert_eq!(ab.positions, vec![0, 1, 2, 3, 4]);
        assert!(occs
            .iter()
            .any(|o| o.cell == vec![v(&db, "b"), v(&db, "b")]));
        // A substring template (X,Y,Y,Y,X) would also need exactly 3 b's;
        // (X, Y+, X) additionally matches 1- and 2-length runs elsewhere:
        let (db2, seqs2) = db_and_seqs(&[&["a", "b", "a", "b", "b", "a"]]);
        let m2 = RegexMatcher::new(&db2, &t);
        let counts = m2
            .count_cells(&seqs2[0], CellRestriction::AllMatchedGo)
            .unwrap();
        assert_eq!(counts[&vec![v(&db2, "a"), v(&db2, "b")]], 2);
    }

    #[test]
    fn optional_and_star() {
        let (db, seqs) = db_and_seqs(&[&["a", "c"], &["a", "b", "c"]]);
        // (X, Y?, Z) with all three distinct dims.
        let t = RegexTemplate::new(
            vec![dim("X"), dim("Y"), dim("Z")],
            vec![RegexElem::One(0), RegexElem::Optional(1), RegexElem::One(2)],
        )
        .unwrap();
        let m = RegexMatcher::new(&db, &t);
        // s0 = (a, c): the optional is skipped, but then Y is unbound — so
        // no occurrence (our semantics: a cell must bind every dimension).
        assert!(m
            .count_cells(&seqs[0], CellRestriction::LeftMaximalityMatchedGo)
            .unwrap()
            .is_empty());
        // s1 = (a, b, c): Y binds to b.
        let counts = m
            .count_cells(&seqs[1], CellRestriction::LeftMaximalityMatchedGo)
            .unwrap();
        assert_eq!(counts[&vec![v(&db, "a"), v(&db, "b"), v(&db, "c")]], 1);
        // Star of a PREVIOUSLY BOUND dim: (Y, X, Y*) — trailing repeats.
        let t2 = RegexTemplate::new(
            vec![dim("X"), dim("Y")],
            vec![RegexElem::One(1), RegexElem::One(0), RegexElem::Star(1)],
        )
        .unwrap();
        let (db3, seqs3) = db_and_seqs(&[&["b", "a", "b", "b"]]);
        let m2 = RegexMatcher::new(&db3, &t2);
        let counts = m2
            .count_cells(&seqs3[0], CellRestriction::AllMatchedGo)
            .unwrap();
        // Occurrences: (b,a), (b,a,b), (b,a,b,b) → 3.
        assert_eq!(counts[&vec![v(&db3, "a"), v(&db3, "b")]], 3);
    }

    #[test]
    fn one_chain_equals_substring_matcher() {
        let (db, seqs) = db_and_seqs(&[
            &["a", "b", "a", "b", "c"],
            &["c", "c", "a"],
            &["b", "a", "b", "a", "b"],
        ]);
        // Regex (X, Y) with only One elements ≡ SUBSTRING (X, Y).
        let regex = RegexTemplate::new(
            vec![dim("X"), dim("Y")],
            vec![RegexElem::One(0), RegexElem::One(1)],
        )
        .unwrap();
        let substring = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 0, 0), ("Y", 0, 0)],
        )
        .unwrap();
        let trivial = MatchPred::True;
        let sm = Matcher::new(&db, &substring, &trivial);
        for restriction in [
            CellRestriction::LeftMaximalityMatchedGo,
            CellRestriction::AllMatchedGo,
        ] {
            let rx = regex_counts(&db, &seqs, &regex, restriction).unwrap();
            let mut classic: HashMap<Vec<u64>, u64> = HashMap::new();
            for s in &seqs {
                for a in sm.assignments(s, restriction).unwrap() {
                    *classic.entry(a.cell).or_insert(0) += 1;
                }
            }
            assert_eq!(rx, classic, "{restriction:?}");
        }
    }

    #[test]
    fn gapped_chain_equals_subsequence_matcher() {
        let (db, seqs) = db_and_seqs(&[&["a", "x", "b", "y", "c"], &["b", "a", "c", "b"]]);
        // Regex (X, .*, Y) ≡ SUBSEQUENCE (X, Y).
        let regex = RegexTemplate::new(
            vec![dim("X"), dim("Y")],
            vec![RegexElem::One(0), RegexElem::Gap, RegexElem::One(1)],
        )
        .unwrap();
        let subseq = PatternTemplate::new(
            PatternKind::Subsequence,
            &["X", "Y"],
            &[("X", 0, 0), ("Y", 0, 0)],
        )
        .unwrap();
        let trivial = MatchPred::True;
        let sm = Matcher::new(&db, &subseq, &trivial);
        for restriction in [
            CellRestriction::LeftMaximalityMatchedGo,
            CellRestriction::AllMatchedGo,
        ] {
            let rx = regex_counts(&db, &seqs, &regex, restriction).unwrap();
            let mut classic: HashMap<Vec<u64>, u64> = HashMap::new();
            for s in &seqs {
                for a in sm.assignments(s, restriction).unwrap() {
                    *classic.entry(a.cell).or_insert(0) += 1;
                }
            }
            assert_eq!(rx, classic, "{restriction:?}");
        }
    }

    #[test]
    fn left_maximality_counts_once_per_cell() {
        let (db, seqs) = db_and_seqs(&[&["a", "b", "a", "b"]]);
        let t = RegexTemplate::new(
            vec![dim("X"), dim("Y")],
            vec![RegexElem::One(0), RegexElem::One(1)],
        )
        .unwrap();
        let counts =
            regex_counts(&db, &seqs, &t, CellRestriction::LeftMaximalityMatchedGo).unwrap();
        assert_eq!(counts[&vec![v(&db, "a"), v(&db, "b")]], 1);
        let all = regex_counts(&db, &seqs, &t, CellRestriction::AllMatchedGo).unwrap();
        assert_eq!(all[&vec![v(&db, "a"), v(&db, "b")]], 2);
    }

    #[test]
    fn star_bindings_do_not_leak_across_branches() {
        // (X*, Y, X*) over ⟨a, b, c, b, d⟩: the zero-width first star must
        // not inherit a binding from a previous backtracking branch of the
        // second star — cell (X=a, Y=b) exists via consuming `a` first.
        let (db, seqs) = db_and_seqs(&[&["a", "b", "c", "b", "d"]]);
        let t = RegexTemplate::new(
            vec![dim("X"), dim("Y")],
            vec![RegexElem::Star(0), RegexElem::One(1), RegexElem::Star(0)],
        )
        .unwrap();
        let m = RegexMatcher::new(&db, &t);
        let counts = m
            .count_cells(&seqs[0], CellRestriction::AllMatchedGo)
            .unwrap();
        assert!(
            counts.contains_key(&vec![v(&db, "a"), v(&db, "b")]),
            "missing (a, b): {counts:?}"
        );
        assert!(
            counts.contains_key(&vec![v(&db, "c"), v(&db, "b")]),
            "missing (c, b): {counts:?}"
        );
        // Exhaustive oracle: brute-force enumeration over all position
        // choices for this tiny input.
        // X-run before Y (len 0..), Y at one position, X-run after — with
        // all X events equal. Check a few known cells:
        assert!(
            counts.contains_key(&vec![v(&db, "b"), v(&db, "c")]),
            "{counts:?}"
        );
    }

    #[test]
    fn round_trip_with_layovers() {
        // The transit motivation: (X, Y, .*, Y, X) — a round trip with any
        // activity in between, which neither SUBSTRING (too rigid) nor
        // SUBSEQUENCE (too loose about the outer legs) expresses.
        let (db, seqs) = db_and_seqs(&[
            &["P", "W", "Q", "Q", "W", "P"],
            &["P", "W", "W", "P"],
            &["P", "W", "Q", "P"],
        ]);
        let t = RegexTemplate::new(
            vec![dim("X"), dim("Y")],
            vec![
                RegexElem::One(0),
                RegexElem::One(1),
                RegexElem::Gap,
                RegexElem::One(1),
                RegexElem::One(0),
            ],
        )
        .unwrap();
        let counts =
            regex_counts(&db, &seqs, &t, CellRestriction::LeftMaximalityMatchedGo).unwrap();
        let key = vec![v(&db, "P"), v(&db, "W")];
        // s0 (layover QQ) and s1 (adjacent) match; s2 does not (its second
        // W never reappears before P).
        assert_eq!(counts.get(&key), Some(&2));
    }
}
