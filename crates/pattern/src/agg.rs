//! Aggregate functions over S-cuboid cells (§3.2 step 6).
//!
//! `COUNT(*)` counts the matched substrings/subsequences assigned to a cell.
//! The paper sketches `SUM` with two semantics — sum over **all** events of
//! the assigned content, or over the **first** event of each assigned
//! content — and notes that other functions can be added once their
//! semantics is defined; this module implements both SUM modes plus AVG,
//! MIN and MAX over a measure attribute.

use std::fmt;

use solap_eventdb::{AttrId, EventDb, Result, Sequence};

use crate::matcher::{AssignedContent, Assignment};

/// Which events of the assigned content a measure aggregate reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SumMode {
    /// Every event of the assigned content (`SUM = Σ eᵢ.amount`, the
    /// paper's first formulation).
    AllEvents,
    /// Only the first event of each assigned content (the paper's
    /// alternative formulation).
    FirstEvent,
}

/// The aggregate function of an S-cuboid specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)`.
    Count,
    /// `SUM(measure)` in a [`SumMode`].
    Sum(AttrId, SumMode),
    /// `AVG(measure)` over the events selected by the [`SumMode`].
    Avg(AttrId, SumMode),
    /// `MIN(measure)` over assigned-content events.
    Min(AttrId),
    /// `MAX(measure)` over assigned-content events.
    Max(AttrId),
}

impl AggFunc {
    /// Renders the `SELECT` clause form, e.g. `COUNT(*)` or `SUM(amount)`.
    pub fn render(&self, db: &EventDb) -> String {
        let name = |a: &AttrId| db.schema().column(*a).name.clone();
        match self {
            AggFunc::Count => "COUNT(*)".into(),
            AggFunc::Sum(a, SumMode::AllEvents) => format!("SUM({})", name(a)),
            AggFunc::Sum(a, SumMode::FirstEvent) => format!("SUM-FIRST({})", name(a)),
            AggFunc::Avg(a, SumMode::AllEvents) => format!("AVG({})", name(a)),
            AggFunc::Avg(a, SumMode::FirstEvent) => format!("AVG-FIRST({})", name(a)),
            AggFunc::Min(a) => format!("MIN({})", name(a)),
            AggFunc::Max(a) => format!("MAX({})", name(a)),
        }
    }
}

/// Running state of one cell's aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggState {
    /// Count accumulator.
    Count(u64),
    /// Sum accumulator.
    Sum(f64),
    /// Average accumulator (sum, n).
    Avg(f64, u64),
    /// Minimum accumulator.
    Min(f64),
    /// Maximum accumulator.
    Max(f64),
}

impl AggState {
    /// Fresh state for a function.
    pub fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum(..) => AggState::Sum(0.0),
            AggFunc::Avg(..) => AggState::Avg(0.0, 0),
            AggFunc::Min(_) => AggState::Min(f64::INFINITY),
            AggFunc::Max(_) => AggState::Max(f64::NEG_INFINITY),
        }
    }

    /// Folds one assignment into the state.
    pub fn update(
        &mut self,
        db: &EventDb,
        func: AggFunc,
        seq: &Sequence,
        assignment: &Assignment,
    ) -> Result<()> {
        let measure_rows = |content: &AssignedContent, first_only: bool| -> Vec<u32> {
            match content {
                AssignedContent::Matched(positions) => {
                    let it = positions.iter().map(|&p| seq.rows[p as usize]);
                    if first_only {
                        it.take(1).collect()
                    } else {
                        it.collect()
                    }
                }
                AssignedContent::WholeSequence => {
                    if first_only {
                        seq.rows.iter().copied().take(1).collect()
                    } else {
                        seq.rows.clone()
                    }
                }
            }
        };
        match (self, func) {
            (AggState::Count(c), AggFunc::Count) => *c += 1,
            (AggState::Sum(s), AggFunc::Sum(attr, mode)) => {
                for row in measure_rows(&assignment.content, mode == SumMode::FirstEvent) {
                    *s += db.float(row, attr).unwrap_or(0.0);
                }
            }
            (AggState::Avg(s, n), AggFunc::Avg(attr, mode)) => {
                for row in measure_rows(&assignment.content, mode == SumMode::FirstEvent) {
                    *s += db.float(row, attr).unwrap_or(0.0);
                    *n += 1;
                }
            }
            (AggState::Min(m), AggFunc::Min(attr)) => {
                for row in measure_rows(&assignment.content, false) {
                    let v = db.float(row, attr).unwrap_or(f64::INFINITY);
                    if v < *m {
                        *m = v;
                    }
                }
            }
            (AggState::Max(m), AggFunc::Max(attr)) => {
                for row in measure_rows(&assignment.content, false) {
                    let v = db.float(row, attr).unwrap_or(f64::NEG_INFINITY);
                    if v > *m {
                        *m = v;
                    }
                }
            }
            (state, func) => {
                unreachable!("aggregate state {state:?} mismatches function {func:?}")
            }
        }
        Ok(())
    }

    /// Merges another state of the same function (used when groups are
    /// scanned in parallel).
    pub fn merge(&mut self, other: &AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Avg(s1, n1), AggState::Avg(s2, n2)) => {
                *s1 += s2;
                *n1 += n2;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if b < a {
                    *a = *b;
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if b > a {
                    *a = *b;
                }
            }
            (a, b) => unreachable!("cannot merge {a:?} with {b:?}"),
        }
    }

    /// Finalises the state into a cell value.
    pub fn finish(&self) -> AggValue {
        match self {
            AggState::Count(c) => AggValue::Count(*c),
            AggState::Sum(s) => AggValue::Float(*s),
            AggState::Avg(s, n) => AggValue::Float(if *n == 0 { 0.0 } else { s / *n as f64 }),
            AggState::Min(m) | AggState::Max(m) => AggValue::Float(*m),
        }
    }
}

/// A finalised aggregate value of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggValue {
    /// A count.
    Count(u64),
    /// A float (sum/avg/min/max).
    Float(f64),
}

impl AggValue {
    /// The value as f64 (counts widen).
    pub fn as_f64(&self) -> f64 {
        match self {
            AggValue::Count(c) => *c as f64,
            AggValue::Float(f) => *f,
        }
    }

    /// The value as a count, if it is one.
    pub fn as_count(&self) -> Option<u64> {
        match self {
            AggValue::Count(c) => Some(*c),
            AggValue::Float(_) => None,
        }
    }
}

impl fmt::Display for AggValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggValue::Count(c) => write!(f, "{c}"),
            AggValue::Float(x) => write!(f, "{x:.3}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use solap_eventdb::{ColumnType, EventDbBuilder, Value};

    fn db_with_amounts(amounts: &[f64]) -> (solap_eventdb::EventDb, Sequence) {
        let mut db = EventDbBuilder::new()
            .dimension("page", ColumnType::Str)
            .measure("amount", ColumnType::Float)
            .build()
            .unwrap();
        let mut rows = Vec::new();
        for (i, &a) in amounts.iter().enumerate() {
            db.push_row(&[Value::from(format!("p{i}")), Value::Float(a)])
                .unwrap();
            rows.push(i as u32);
        }
        (
            db,
            Sequence {
                sid: 0,
                cluster_key: vec![],
                rows,
            },
        )
    }

    fn matched(positions: Vec<u32>) -> Assignment {
        Assignment {
            cell: vec![0],
            content: AssignedContent::Matched(positions),
        }
    }

    #[test]
    fn count_counts_assignments() {
        let (db, seq) = db_with_amounts(&[1.0, 2.0]);
        let f = AggFunc::Count;
        let mut st = AggState::new(f);
        st.update(&db, f, &seq, &matched(vec![0])).unwrap();
        st.update(&db, f, &seq, &matched(vec![1])).unwrap();
        assert_eq!(st.finish(), AggValue::Count(2));
    }

    #[test]
    fn sum_all_vs_first() {
        let (db, seq) = db_with_amounts(&[1.0, 2.0, 4.0]);
        let all = AggFunc::Sum(1, SumMode::AllEvents);
        let mut st = AggState::new(all);
        st.update(&db, all, &seq, &matched(vec![0, 2])).unwrap();
        assert_eq!(st.finish(), AggValue::Float(5.0));
        let first = AggFunc::Sum(1, SumMode::FirstEvent);
        let mut st = AggState::new(first);
        st.update(&db, first, &seq, &matched(vec![0, 2])).unwrap();
        st.update(&db, first, &seq, &matched(vec![1, 2])).unwrap();
        assert_eq!(st.finish(), AggValue::Float(3.0));
    }

    #[test]
    fn whole_sequence_content_sums_everything() {
        let (db, seq) = db_with_amounts(&[1.0, 2.0, 4.0]);
        let f = AggFunc::Sum(1, SumMode::AllEvents);
        let mut st = AggState::new(f);
        let a = Assignment {
            cell: vec![0],
            content: AssignedContent::WholeSequence,
        };
        st.update(&db, f, &seq, &a).unwrap();
        assert_eq!(st.finish(), AggValue::Float(7.0));
    }

    #[test]
    fn avg_min_max() {
        let (db, seq) = db_with_amounts(&[1.0, 3.0, 8.0]);
        let favg = AggFunc::Avg(1, SumMode::AllEvents);
        let mut avg = AggState::new(favg);
        avg.update(&db, favg, &seq, &matched(vec![0, 1])).unwrap();
        assert_eq!(avg.finish(), AggValue::Float(2.0));
        assert_eq!(AggState::new(favg).finish(), AggValue::Float(0.0));
        let fmin = AggFunc::Min(1);
        let mut min = AggState::new(fmin);
        min.update(&db, fmin, &seq, &matched(vec![1, 2])).unwrap();
        assert_eq!(min.finish(), AggValue::Float(3.0));
        let fmax = AggFunc::Max(1);
        let mut max = AggState::new(fmax);
        max.update(&db, fmax, &seq, &matched(vec![0, 2])).unwrap();
        assert_eq!(max.finish(), AggValue::Float(8.0));
    }

    #[test]
    fn merge_combines_partial_states() {
        let mut a = AggState::Count(3);
        a.merge(&AggState::Count(4));
        assert_eq!(a.finish(), AggValue::Count(7));
        let mut s = AggState::Avg(6.0, 2);
        s.merge(&AggState::Avg(2.0, 2));
        assert_eq!(s.finish(), AggValue::Float(2.0));
        let mut m = AggState::Min(5.0);
        m.merge(&AggState::Min(1.0));
        assert_eq!(m.finish(), AggValue::Float(1.0));
    }

    #[test]
    fn merge_is_associative_with_fresh_state_as_identity() {
        // The parallel path relies on merge being associative (workers may
        // be merged in any grouping, as long as chunk ORDER is fixed) and
        // on `AggState::new` being a left/right identity for every variant.
        let triples: [(AggFunc, [AggState; 3]); 5] = [
            (
                AggFunc::Count,
                [AggState::Count(2), AggState::Count(0), AggState::Count(5)],
            ),
            (
                AggFunc::Sum(1, SumMode::AllEvents),
                [AggState::Sum(1.5), AggState::Sum(2.25), AggState::Sum(0.5)],
            ),
            (
                AggFunc::Avg(1, SumMode::AllEvents),
                [
                    AggState::Avg(1.5, 2),
                    AggState::Avg(4.0, 1),
                    AggState::Avg(0.5, 3),
                ],
            ),
            (
                AggFunc::Min(1),
                [AggState::Min(3.0), AggState::Min(-1.0), AggState::Min(7.0)],
            ),
            (
                AggFunc::Max(1),
                [AggState::Max(3.0), AggState::Max(-1.0), AggState::Max(7.0)],
            ),
        ];
        for (f, [a, b, c]) in triples {
            // (a ⊕ b) ⊕ c
            let mut left = a;
            left.merge(&b);
            left.merge(&c);
            // a ⊕ (b ⊕ c)
            let mut bc = b;
            bc.merge(&c);
            let mut right = a;
            right.merge(&bc);
            assert_eq!(left.finish(), right.finish(), "{f:?} not associative");
            // identity on both sides
            let mut id_left = AggState::new(f);
            id_left.merge(&a);
            let mut id_right = a;
            id_right.merge(&AggState::new(f));
            assert_eq!(id_left.finish(), a.finish(), "{f:?} left identity");
            assert_eq!(id_right.finish(), a.finish(), "{f:?} right identity");
        }
    }

    #[test]
    fn sharded_updates_merged_in_chunk_order_equal_sequential() {
        // State-level model of counter_based_parallel: split one cell's
        // assignment stream into chunks, fold each into a fresh partial,
        // merge partials in chunk order — identical result to the single
        // sequential fold. Dyadic measures make SUM/AVG bit-exact.
        let amounts: Vec<f64> = (0..12).map(|k| (k as f64) + 0.5).collect();
        let (db, seq) = db_with_amounts(&amounts);
        let funcs = [
            AggFunc::Count,
            AggFunc::Sum(1, SumMode::AllEvents),
            AggFunc::Avg(1, SumMode::AllEvents),
            AggFunc::Min(1),
            AggFunc::Max(1),
        ];
        let assignments: Vec<Assignment> =
            (0..12).map(|p| matched(vec![p, (p + 5) % 12])).collect();
        for f in funcs {
            let mut sequential = AggState::new(f);
            for a in &assignments {
                sequential.update(&db, f, &seq, a).unwrap();
            }
            for chunk in [1usize, 3, 5, 12] {
                let mut merged = AggState::new(f);
                for part in assignments.chunks(chunk) {
                    let mut local = AggState::new(f);
                    for a in part {
                        local.update(&db, f, &seq, a).unwrap();
                    }
                    merged.merge(&local);
                }
                assert_eq!(merged.finish(), sequential.finish(), "{f:?} chunk={chunk}");
            }
        }
    }

    #[test]
    fn render_and_display() {
        let (db, _) = db_with_amounts(&[0.0]);
        assert_eq!(AggFunc::Count.render(&db), "COUNT(*)");
        assert_eq!(
            AggFunc::Sum(1, SumMode::AllEvents).render(&db),
            "SUM(amount)"
        );
        assert_eq!(AggValue::Count(7).to_string(), "7");
        assert_eq!(AggValue::Float(1.5).to_string(), "1.500");
        assert_eq!(AggValue::Count(7).as_f64(), 7.0);
        assert_eq!(AggValue::Count(7).as_count(), Some(7));
        assert_eq!(AggValue::Float(1.0).as_count(), None);
    }
}
