//! Matching predicates over event placeholders (§3.2 step 5(c)).
//!
//! A cell restriction clause introduces a sequence of event placeholders —
//! `LEFT-MAXIMALITY (x1, y1, y2, x2)` — one per template position, and the
//! matching predicate constrains the **matched events** (not just the
//! pattern-dimension values): `x1.action = "in" AND y1.action = "out"`.

use solap_eventdb::{AttrId, CmpOp, EventDb, Result, RowId, Value};

/// A matching predicate over the events of a candidate occurrence.
///
/// Placeholders are identified positionally: placeholder `p` binds the event
/// matched at template position `p` (0-based).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MatchPred {
    /// No predicate.
    True,
    /// `placeholder.attr <op> literal`.
    Cmp {
        /// Template position of the placeholder.
        pos: usize,
        /// The event attribute inspected.
        attr: AttrId,
        /// Comparison operator.
        op: CmpOp,
        /// Literal compared against.
        value: Value,
    },
    /// Conjunction.
    And(Box<MatchPred>, Box<MatchPred>),
    /// Disjunction.
    Or(Box<MatchPred>, Box<MatchPred>),
    /// Negation.
    Not(Box<MatchPred>),
}

impl MatchPred {
    /// Builds `placeholder[pos].attr <op> value`.
    pub fn cmp(pos: usize, attr: AttrId, op: CmpOp, value: impl Into<Value>) -> MatchPred {
        MatchPred::Cmp {
            pos,
            attr,
            op,
            value: value.into(),
        }
    }

    /// Builds `self AND other`.
    pub fn and(self, other: MatchPred) -> MatchPred {
        MatchPred::And(Box::new(self), Box::new(other))
    }

    /// Builds `self OR other`.
    pub fn or(self, other: MatchPred) -> MatchPred {
        MatchPred::Or(Box::new(self), Box::new(other))
    }

    /// Builds `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> MatchPred {
        MatchPred::Not(Box::new(self))
    }

    /// Conjoins a list of predicates.
    pub fn all(preds: impl IntoIterator<Item = MatchPred>) -> MatchPred {
        preds.into_iter().fold(MatchPred::True, |acc, p| match acc {
            MatchPred::True => p,
            acc => acc.and(p),
        })
    }

    /// Whether this is the trivial predicate.
    pub fn is_true(&self) -> bool {
        matches!(self, MatchPred::True)
    }

    /// Evaluates against the matched events: `rows[p]` is the event row at
    /// template position `p`.
    pub fn eval(&self, db: &EventDb, rows: &[RowId]) -> Result<bool> {
        match self {
            MatchPred::True => Ok(true),
            MatchPred::Cmp {
                pos,
                attr,
                op,
                value,
            } => {
                let row = rows[*pos];
                let p = solap_eventdb::Pred::Cmp {
                    attr: *attr,
                    op: *op,
                    value: value.clone(),
                };
                p.eval(db, row)
            }
            MatchPred::And(a, b) => Ok(a.eval(db, rows)? && b.eval(db, rows)?),
            MatchPred::Or(a, b) => Ok(a.eval(db, rows)? || b.eval(db, rows)?),
            MatchPred::Not(p) => Ok(!p.eval(db, rows)?),
        }
    }

    /// The largest placeholder position referenced (to validate against the
    /// template length).
    pub fn max_pos(&self) -> Option<usize> {
        match self {
            MatchPred::True => None,
            MatchPred::Cmp { pos, .. } => Some(*pos),
            MatchPred::And(a, b) | MatchPred::Or(a, b) => a.max_pos().max(b.max_pos()),
            MatchPred::Not(p) => p.max_pos(),
        }
    }

    /// Evaluates only the conjuncts fully determined by positions
    /// `< limit`, for early pruning during subsequence DFS; conjuncts
    /// referencing later positions pass vacuously.
    pub fn eval_prefix(&self, db: &EventDb, rows: &[RowId], limit: usize) -> Result<bool> {
        match self {
            MatchPred::True => Ok(true),
            MatchPred::Cmp { pos, .. } => {
                if *pos < limit {
                    self.eval(db, rows)
                } else {
                    Ok(true)
                }
            }
            MatchPred::And(a, b) => {
                Ok(a.eval_prefix(db, rows, limit)? && b.eval_prefix(db, rows, limit)?)
            }
            // OR / NOT may depend on unresolved positions; only prune when
            // every referenced position is resolved.
            other => match other.max_pos() {
                Some(mp) if mp >= limit => Ok(true),
                _ => other.eval(db, rows),
            },
        }
    }

    /// Remaps placeholder positions through `f` (e.g. DE-HEAD shifts every
    /// position down by one; DE-TAIL drops the last position). A conjunct
    /// whose position is dropped (`f` returns `None`) is removed; inside
    /// `OR`/`NOT`, where removal could *strengthen* the predicate, the whole
    /// subtree is conservatively dropped instead.
    pub fn remap_positions(&self, f: &impl Fn(usize) -> Option<usize>) -> MatchPred {
        fn all_positions_mapped(p: &MatchPred, f: &impl Fn(usize) -> Option<usize>) -> bool {
            match p {
                MatchPred::True => true,
                MatchPred::Cmp { pos, .. } => f(*pos).is_some(),
                MatchPred::And(a, b) | MatchPred::Or(a, b) => {
                    all_positions_mapped(a, f) && all_positions_mapped(b, f)
                }
                MatchPred::Not(p) => all_positions_mapped(p, f),
            }
        }
        match self {
            MatchPred::True => MatchPred::True,
            MatchPred::Cmp {
                pos,
                attr,
                op,
                value,
            } => match f(*pos) {
                Some(new_pos) => MatchPred::Cmp {
                    pos: new_pos,
                    attr: *attr,
                    op: *op,
                    value: value.clone(),
                },
                None => MatchPred::True,
            },
            MatchPred::And(a, b) => {
                let (a, b) = (a.remap_positions(f), b.remap_positions(f));
                match (a.is_true(), b.is_true()) {
                    (true, _) => b,
                    (_, true) => a,
                    _ => a.and(b),
                }
            }
            sub @ (MatchPred::Or(..) | MatchPred::Not(_)) => {
                if all_positions_mapped(sub, f) {
                    match sub {
                        MatchPred::Or(a, b) => a.remap_positions(f).or(b.remap_positions(f)),
                        MatchPred::Not(p) => p.remap_positions(f).not(),
                        _ => unreachable!(),
                    }
                } else {
                    MatchPred::True
                }
            }
        }
    }

    /// Renders the predicate with placeholder names derived from the
    /// template symbols (e.g. position 0 of `(X, Y, Y, X)` renders as `x1`).
    pub fn render(&self, db: &EventDb, placeholder_names: &[String]) -> String {
        match self {
            MatchPred::True => "TRUE".into(),
            MatchPred::Cmp {
                pos,
                attr,
                op,
                value,
            } => format!(
                "{}.{} {} {}",
                placeholder_names
                    .get(*pos)
                    .map(String::as_str)
                    .unwrap_or("?"),
                db.schema().column(*attr).name,
                op.symbol(),
                solap_eventdb::pred::render_literal(value)
            ),
            MatchPred::And(a, b) => format!(
                "{} AND {}",
                a.render(db, placeholder_names),
                b.render(db, placeholder_names)
            ),
            MatchPred::Or(a, b) => format!(
                "({} OR {})",
                a.render(db, placeholder_names),
                b.render(db, placeholder_names)
            ),
            MatchPred::Not(p) => format!("(NOT {})", p.render(db, placeholder_names)),
        }
    }

    /// Derives the conventional placeholder names for a template: the
    /// lower-cased symbol name with a per-symbol occurrence counter —
    /// `(X, Y, Y, X)` yields `x1, y1, y2, x2` as in Figure 3.
    pub fn placeholder_names(template: &crate::template::PatternTemplate) -> Vec<String> {
        let mut counts = vec![0usize; template.n()];
        template
            .symbols
            .iter()
            .map(|&d| {
                counts[d] += 1;
                format!("{}{}", template.dims[d].name.to_lowercase(), counts[d])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{PatternKind, PatternTemplate};
    use solap_eventdb::{ColumnType, EventDbBuilder};

    fn db() -> EventDb {
        let mut db = EventDbBuilder::new()
            .dimension("location", ColumnType::Str)
            .dimension("action", ColumnType::Str)
            .build()
            .unwrap();
        for (l, a) in [
            ("Pentagon", "in"),
            ("Wheaton", "out"),
            ("Wheaton", "in"),
            ("Pentagon", "out"),
        ] {
            db.push_row(&[Value::from(l), Value::from(a)]).unwrap();
        }
        db
    }

    #[test]
    fn fig3_predicate() {
        let db = db();
        // x1.action = "in" AND y1.action = "out" AND y2.action = "in" AND x2.action = "out"
        let p = MatchPred::all([
            MatchPred::cmp(0, 1, CmpOp::Eq, "in"),
            MatchPred::cmp(1, 1, CmpOp::Eq, "out"),
            MatchPred::cmp(2, 1, CmpOp::Eq, "in"),
            MatchPred::cmp(3, 1, CmpOp::Eq, "out"),
        ]);
        assert!(p.eval(&db, &[0, 1, 2, 3]).unwrap());
        assert!(!p.eval(&db, &[1, 0, 2, 3]).unwrap());
        assert_eq!(p.max_pos(), Some(3));
    }

    #[test]
    fn combinators() {
        let db = db();
        let in0 = MatchPred::cmp(0, 1, CmpOp::Eq, "in");
        let out0 = MatchPred::cmp(0, 1, CmpOp::Eq, "out");
        assert!(in0.clone().or(out0.clone()).eval(&db, &[0]).unwrap());
        assert!(!in0.clone().and(out0.clone()).eval(&db, &[0]).unwrap());
        assert!(out0.not().eval(&db, &[0]).unwrap());
        assert!(MatchPred::True.eval(&db, &[]).unwrap());
        assert!(MatchPred::all([]).is_true());
    }

    #[test]
    fn prefix_eval_prunes_conservatively() {
        let db = db();
        let p = MatchPred::cmp(0, 1, CmpOp::Eq, "in").and(MatchPred::cmp(1, 1, CmpOp::Eq, "out"));
        // With only position 0 resolved, the pos-1 conjunct passes vacuously.
        assert!(p.eval_prefix(&db, &[0, 999], 1).unwrap());
        // But a failing pos-0 conjunct prunes immediately.
        assert!(!p.eval_prefix(&db, &[1, 999], 1).unwrap());
        // A disjunction touching unresolved positions must not prune.
        let q = MatchPred::cmp(0, 1, CmpOp::Eq, "out").or(MatchPred::cmp(1, 1, CmpOp::Eq, "out"));
        assert!(q.eval_prefix(&db, &[0, 999], 1).unwrap());
    }

    #[test]
    fn remap_shifts_and_drops() {
        let p = MatchPred::cmp(0, 1, CmpOp::Eq, "in")
            .and(MatchPred::cmp(1, 1, CmpOp::Eq, "out"))
            .and(MatchPred::cmp(2, 1, CmpOp::Eq, "in"));
        // DE-HEAD: drop position 0, shift the rest down.
        let q = p.remap_positions(&|pos| pos.checked_sub(1));
        assert_eq!(q.max_pos(), Some(1));
        let db = db();
        // Positions 0 and 1 of the remapped predicate are old 1 and 2.
        assert!(q.eval(&db, &[1, 2]).unwrap()); // out, in
        assert!(!q.eval(&db, &[0, 2]).unwrap());
        // DE-TAIL: drop positions ≥ 2.
        let r = p.remap_positions(&|pos| (pos < 2).then_some(pos));
        assert_eq!(r.max_pos(), Some(1));
        // Dropping everything yields True.
        let t = p.remap_positions(&|_| None);
        assert!(t.is_true());
    }

    #[test]
    fn remap_is_conservative_inside_or_and_not() {
        // (x0 = out OR x2 = out): dropping position 2 must not strengthen
        // the predicate to `x0 = out` — the whole disjunction goes away.
        let p = MatchPred::cmp(0, 1, CmpOp::Eq, "out").or(MatchPred::cmp(2, 1, CmpOp::Eq, "out"));
        let q = p.remap_positions(&|pos| (pos < 2).then_some(pos));
        assert!(q.is_true());
        // NOT(x2 = in) likewise.
        let n = MatchPred::cmp(2, 1, CmpOp::Eq, "in").not();
        assert!(n.remap_positions(&|pos| (pos < 2).then_some(pos)).is_true());
        // But fully-mapped OR/NOT subtrees survive with shifted positions.
        let kept = MatchPred::cmp(1, 1, CmpOp::Eq, "out").not();
        let shifted = kept.remap_positions(&|pos| pos.checked_sub(1));
        assert_eq!(shifted.max_pos(), Some(0));
    }

    #[test]
    fn placeholder_names_match_fig3() {
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y", "Y", "X"],
            &[("X", 0, 0), ("Y", 0, 0)],
        )
        .unwrap();
        assert_eq!(
            MatchPred::placeholder_names(&t),
            vec!["x1", "y1", "y2", "x2"]
        );
    }

    #[test]
    fn render_uses_placeholders() {
        let db = db();
        let t = PatternTemplate::new(
            PatternKind::Substring,
            &["X", "Y"],
            &[("X", 0, 0), ("Y", 0, 0)],
        )
        .unwrap();
        let names = MatchPred::placeholder_names(&t);
        let p = MatchPred::cmp(0, 1, CmpOp::Eq, "in").and(MatchPred::cmp(1, 1, CmpOp::Eq, "out"));
        let s = p.render(&db, &names);
        assert_eq!(s, "x1.action = \"in\" AND y1.action = \"out\"");
    }
}
