//! Property tests for the matcher: occurrence-set relationships between
//! template kinds and restrictions, and consistency between the matcher's
//! several entry points (enumeration, containment, unique-pattern listing,
//! concrete-cell queries).

use std::collections::HashSet;

use proptest::prelude::*;

use solap_eventdb::{CmpOp, ColumnType, EventDb, EventDbBuilder, Sequence, Value};
use solap_pattern::{CellRestriction, MatchPred, Matcher, PatternKind, PatternTemplate};

fn build(seqs: &[Vec<(u8, bool)>]) -> (EventDb, Vec<Sequence>) {
    let mut db = EventDbBuilder::new()
        .dimension("item", ColumnType::Str)
        .dimension("tag", ColumnType::Str)
        .build()
        .unwrap();
    let mut out = Vec::new();
    let mut row = 0u32;
    for (sid, seq) in seqs.iter().enumerate() {
        let mut rows = Vec::new();
        for &(sym, tag) in seq {
            db.push_row(&[
                Value::Str(format!("s{}", sym % 4)),
                Value::Str(if tag { "a".into() } else { "b".into() }),
            ])
            .unwrap();
            rows.push(row);
            row += 1;
        }
        out.push(Sequence {
            sid: sid as u32,
            cluster_key: vec![],
            rows,
        });
    }
    (db, out)
}

fn template(kind: PatternKind, shape: &[usize]) -> PatternTemplate {
    let names = ["A", "B", "C"];
    let syms: Vec<&str> = shape.iter().map(|&d| names[d % 3]).collect();
    let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
    for &s in &syms {
        if !bindings.iter().any(|(n, _, _)| *n == s) {
            bindings.push((s, 0, 0));
        }
    }
    PatternTemplate::new(kind, &syms, &bindings).unwrap()
}

type Case = (Vec<Vec<(u8, bool)>>, Vec<usize>, Option<(usize, bool)>);

fn case() -> impl Strategy<Value = Case> {
    (
        prop::collection::vec(prop::collection::vec((0u8..4, any::<bool>()), 0..9), 1..6),
        prop::collection::vec(0usize..3, 1..4),
        prop::option::of((0usize..3, any::<bool>())),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Substring occurrences are a subset of subsequence occurrences.
    #[test]
    fn substring_subset_of_subsequence((seqs, shape, _) in case()) {
        let (db, sequences) = build(&seqs);
        let trivial = MatchPred::True;
        let sub = template(PatternKind::Substring, &shape);
        let sseq = template(PatternKind::Subsequence, &shape);
        let m_sub = Matcher::new(&db, &sub, &trivial);
        let m_seq = Matcher::new(&db, &sseq, &trivial);
        for s in &sequences {
            let mut sub_occ = HashSet::new();
            m_sub.for_each_occurrence(s, |o| { sub_occ.insert(o.positions.clone()); true }).unwrap();
            let mut seq_occ = HashSet::new();
            m_seq.for_each_occurrence(s, |o| { seq_occ.insert(o.positions.clone()); true }).unwrap();
            prop_assert!(sub_occ.is_subset(&seq_occ));
        }
    }

    /// A predicate can only remove occurrences, and every surviving
    /// occurrence's events satisfy it.
    #[test]
    fn predicates_filter_monotonically((seqs, shape, pred) in case()) {
        let (db, sequences) = build(&seqs);
        let t = template(PatternKind::Substring, &shape);
        let trivial = MatchPred::True;
        let p = match pred {
            Some((pos, want)) if pos < t.m() =>
                MatchPred::cmp(pos, 1, CmpOp::Eq, if want { "a" } else { "b" }),
            _ => MatchPred::True,
        };
        let m_free = Matcher::new(&db, &t, &trivial);
        let m_pred = Matcher::new(&db, &t, &p);
        for s in &sequences {
            let mut free = HashSet::new();
            m_free.for_each_occurrence(s, |o| { free.insert(o.positions.clone()); true }).unwrap();
            let mut kept = HashSet::new();
            m_pred.for_each_occurrence(s, |o| {
                kept.insert(o.positions.clone());
                // Verify the predicate actually holds on the matched rows.
                let rows: Vec<u32> = o.positions.iter().map(|&i| s.rows[i as usize]).collect();
                assert!(p.eval(&db, &rows).unwrap());
                true
            }).unwrap();
            prop_assert!(kept.is_subset(&free));
        }
    }

    /// Left-maximality keeps exactly the distinct cells of all-matched, and
    /// picks each cell's leftmost occurrence.
    #[test]
    fn left_maximality_is_leftmost_distinct((seqs, shape, _) in case()) {
        let (db, sequences) = build(&seqs);
        let trivial = MatchPred::True;
        for kind in [PatternKind::Substring, PatternKind::Subsequence] {
            let t = template(kind, &shape);
            let m = Matcher::new(&db, &t, &trivial);
            for s in &sequences {
                let all = m.assignments(s, CellRestriction::AllMatchedGo).unwrap();
                let lm = m.assignments(s, CellRestriction::LeftMaximalityMatchedGo).unwrap();
                let all_cells: HashSet<_> = all.iter().map(|a| a.cell.clone()).collect();
                let lm_cells: HashSet<_> = lm.iter().map(|a| a.cell.clone()).collect();
                prop_assert_eq!(&all_cells, &lm_cells);
                prop_assert_eq!(lm.len(), lm_cells.len(), "one assignment per cell");
                // Leftmost: no all-matched occurrence of the same cell
                // starts earlier than the left-max one.
                for a in &lm {
                    let solap_pattern::AssignedContent::Matched(pos) = &a.content else {
                        unreachable!("matched-go content");
                    };
                    for other in all.iter().filter(|o| o.cell == a.cell) {
                        let solap_pattern::AssignedContent::Matched(opos) = &other.content else {
                            unreachable!()
                        };
                        prop_assert!(pos <= opos, "not leftmost: {:?} vs {:?}", pos, opos);
                    }
                }
            }
        }
    }

    /// `contains_pattern` agrees with occurrence enumeration, and
    /// `for_each_unique_pattern` lists exactly the distinct value strings.
    #[test]
    fn entry_points_agree((seqs, shape, _) in case()) {
        let (db, sequences) = build(&seqs);
        let trivial = MatchPred::True;
        for kind in [PatternKind::Substring, PatternKind::Subsequence] {
            let t = template(kind, &shape);
            let m = Matcher::new(&db, &t, &trivial);
            for s in &sequences {
                let mut enumerated: HashSet<Vec<u64>> = HashSet::new();
                m.for_each_occurrence(s, |o| {
                    enumerated.insert(t.expand_cell(&o.cell));
                    true
                }).unwrap();
                let mut unique: HashSet<Vec<u64>> = HashSet::new();
                m.for_each_unique_pattern(s, |v| {
                    unique.insert(v.to_vec());
                }).unwrap();
                prop_assert_eq!(&enumerated, &unique);
                for pat in &unique {
                    prop_assert!(m.contains_pattern(s, pat).unwrap());
                }
                // And a value string not present is not "contained".
                let absent = vec![u64::MAX; t.m()];
                prop_assert!(!m.contains_pattern(s, &absent).unwrap());
            }
        }
    }

    /// Concrete-cell counting sums to the all-matched total.
    #[test]
    fn concrete_counts_partition_total((seqs, shape, _) in case()) {
        let (db, sequences) = build(&seqs);
        let trivial = MatchPred::True;
        let t = template(PatternKind::Substring, &shape);
        let m = Matcher::new(&db, &t, &trivial);
        for s in &sequences {
            let all = m.assignments(s, CellRestriction::AllMatchedGo).unwrap();
            let cells: HashSet<_> = all.iter().map(|a| a.cell.clone()).collect();
            let mut total = 0;
            for cell in &cells {
                total += m.count_occurrences_of_cell(s, cell).unwrap();
                // And the first occurrence exists and has this cell.
                let first = m.first_occurrence_of_cell(s, cell).unwrap().unwrap();
                prop_assert_eq!(&first.cell, cell);
            }
            prop_assert_eq!(total as usize, all.len());
        }
    }
}
