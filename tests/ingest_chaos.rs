//! Chaos suite for durable ingestion: crash-injection on the WAL, torn
//! tails, failpoint-armed log faults, and stream/query equivalence.
//!
//! The properties under test:
//!
//! * **acknowledged-durable / unacknowledged-absent** — a child process is
//!   SIGKILLed mid-append (including inside fsync and rotation windows via
//!   delay failpoints); on recovery, every acknowledged event is present,
//!   nothing past the last sent event exists, and the replayed sequence
//!   has no gaps or reorderings;
//! * **torn tails truncate, sealed segments refuse** — a file cut
//!   mid-record recovers its clean prefix (lenient replay + truncation),
//!   while corruption in a *sealed* segment is a typed [`Error::Corrupt`],
//!   never a panic;
//! * **failed appends are no-ops** — an error or panic injected at the
//!   WAL sites leaves the log usable and the engine answering correctly;
//! * **streaming never corrupts caches** — a write-heavy stream
//!   interleaved with concurrent queries yields cuboids bit-identical to
//!   a fresh rebuild, across CB/II × five aggregates × worker counts
//!   {1, 8} × all four inverted-list backends.
//!
//! Failpoint state is process-global, so the failpoint-arming tests
//! serialize on one lock, exactly like `tests/chaos.rs`.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use s_olap::eventdb::failpoint::{self, Action};
use s_olap::eventdb::log::EventLog;
use s_olap::eventdb::wal::{replay, replay_strict, truncate_to, Tail, WalWriter};
use s_olap::eventdb::FsyncPolicy;
use s_olap::prelude::*;

static FP_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    FP_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("solap-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------
// Torn tails and sealed-segment corruption
// ---------------------------------------------------------------------

fn row(i: i64) -> Vec<Value> {
    vec![Value::Int(i)]
}

#[test]
fn torn_tail_truncates_cleanly_sealed_corruption_is_typed() {
    let dir = tmpdir("torn");
    let path = dir.join("segment-000001.open");
    {
        let mut w = WalWriter::create(&path, FsyncPolicy::Off).unwrap();
        w.append_batch(&[row(1), row(2), row(3)]).unwrap();
        w.flush().unwrap();
        w.sync().unwrap();
    }
    let full = std::fs::metadata(&path).unwrap().len();
    // Cut the file mid-way through the last record: lenient replay keeps
    // the clean prefix and reports where to truncate.
    let opts = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    opts.set_len(full - 3).unwrap();
    let r = replay(&path).unwrap();
    assert_eq!(r.rows, vec![row(1), row(2)]);
    let Tail::Torn { valid_len, detail } = r.tail else {
        panic!("expected a torn tail");
    };
    assert!(
        valid_len < full - 3,
        "valid_len must exclude the torn record"
    );
    assert!(!detail.is_empty());
    // Truncating at valid_len restores the clean-tail invariant.
    truncate_to(&path, valid_len).unwrap();
    let r = replay(&path).unwrap();
    assert_eq!(r.rows, vec![row(1), row(2)]);
    assert!(matches!(r.tail, Tail::Clean));
    // The same damage in a *sealed* segment is refused with a typed
    // error: sealed segments promised a clean tail at seal time.
    let opts = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    let len = std::fs::metadata(&path).unwrap().len();
    opts.set_len(len - 2).unwrap();
    let err = replay_strict(&path).unwrap_err();
    assert_eq!(err.code(), "corrupt");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn event_log_recovery_truncates_torn_tail_and_is_idempotent() {
    let dir = tmpdir("log-torn");
    {
        let (mut log, rows, _) = EventLog::open(&dir, FsyncPolicy::Off).unwrap();
        assert!(rows.is_empty());
        log.append_batch(&[row(1), row(2), row(3), row(4)]).unwrap();
        log.sync().unwrap();
    }
    // Tear the active segment.
    let open_seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "open"))
        .expect("an active segment");
    let len = std::fs::metadata(&open_seg).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&open_seg)
        .unwrap()
        .set_len(len - 2)
        .unwrap();
    // First recovery reports and heals the torn tail…
    let (log, rows, report) = EventLog::open(&dir, FsyncPolicy::Off).unwrap();
    assert_eq!(rows, vec![row(1), row(2), row(3)]);
    let (_, detail) = report.truncated_tail.expect("tail damage reported");
    assert!(!detail.is_empty());
    drop(log);
    // …and the second sees a clean log with identical content.
    let (_, rows2, report2) = EventLog::open(&dir, FsyncPolicy::Off).unwrap();
    assert_eq!(rows2, rows);
    assert!(report2.truncated_tail.is_none(), "{report2:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Failpoint-armed WAL faults (process-global state: keep these here, not
// in the eventdb unit suite, and serialize on FP_LOCK)
// ---------------------------------------------------------------------

#[test]
fn injected_wal_errors_fail_the_append_not_the_log() {
    let _g = locked();
    for site in ["wal.append", "wal.fsync"] {
        failpoint::clear_all();
        let dir = tmpdir(&format!("fp-{}", site.replace('.', "-")));
        let (mut log, _, _) = EventLog::open(&dir, FsyncPolicy::Always).unwrap();
        log.append_batch(&[row(1)]).unwrap();
        failpoint::configure(site, Action::Error);
        let err = log.append_batch(&[row(2)]).unwrap_err();
        assert_eq!(err.code(), "internal", "site {site}");
        failpoint::clear_all();
        // The log keeps accepting appends after the fault clears…
        log.append_batch(&[row(3)]).unwrap();
        drop(log);
        // …and recovery replays a consistent prefix: row 1 certainly,
        // row 2 only if it reached the file before the injection point.
        let (_, rows, _) = EventLog::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(rows.first(), Some(&row(1)), "site {site}");
        assert_eq!(rows.last(), Some(&row(3)), "site {site}");
        let _ = std::fs::remove_dir_all(&dir);
    }
    failpoint::clear_all();
}

#[test]
fn injected_rotation_fault_never_loses_sealed_events() {
    let _g = locked();
    failpoint::clear_all();
    let dir = tmpdir("fp-rotate");
    // Tiny segments force a rotation within a few appends.
    let (mut log, _, _) = EventLog::open_with_segment_bytes(&dir, FsyncPolicy::Off, 64).unwrap();
    log.append_batch(&[row(1), row(2)]).unwrap();
    failpoint::configure("wal.rotate", Action::Error);
    // The batch that trips the rotation threshold fails…
    let mut failed = 0;
    for i in 3..10 {
        if log.append_batch(&[row(i)]).is_err() {
            failed += 1;
            break;
        }
    }
    assert!(failed > 0, "rotation failpoint never fired");
    failpoint::clear_all();
    drop(log);
    // …but every previously acknowledged event survives recovery, in
    // order and without duplicates.
    let (_, rows, _) = EventLog::open(&dir, FsyncPolicy::Off).unwrap();
    let ints: Vec<i64> = rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(i) => i,
            ref v => panic!("unexpected value {v:?}"),
        })
        .collect();
    let want: Vec<i64> = (1..=ints.len() as i64).collect();
    assert_eq!(ints, want, "acknowledged prefix must be contiguous");
    assert!(ints.len() >= 2, "the pre-fault appends must survive");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Crash-loop harness: SIGKILL a child mid-append, recover, repeat
// ---------------------------------------------------------------------

/// Marker files the child maintains next to the WAL directory: `SENT` is
/// written before an append is attempted, `ACK` after it is acknowledged.
/// Both are written atomically (tmp + rename).
fn write_marker(dir: &Path, name: &str, i: i64) {
    let tmp = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, i.to_string()).unwrap();
    std::fs::rename(&tmp, dir.join(name)).unwrap();
}

fn read_marker(dir: &Path, name: &str) -> i64 {
    std::fs::read_to_string(dir.join(name))
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(-1)
}

/// The crash-loop child: runs the durable engine's append loop until the
/// parent SIGKILLs it. Only active when `SOLAP_CRASH_DIR` is set — in a
/// normal test run this is a no-op.
#[test]
fn crash_child_entry() {
    let Ok(root) = std::env::var("SOLAP_CRASH_DIR") else {
        return;
    };
    let root = PathBuf::from(root);
    let schema = EventDbBuilder::new()
        .dimension("n", ColumnType::Int)
        .build()
        .unwrap();
    // Tiny segments so kills land around rotations too.
    let engine = Engine::builder(schema)
        .durable_with_options(root.join("wal"), FsyncPolicy::Always, 512)
        .unwrap()
        .build();
    let start = engine.db().len() as i64;
    for i in start..20_000 {
        write_marker(&root, "SENT", i);
        engine.append_events(&[row(i)]).unwrap();
        write_marker(&root, "ACK", i);
    }
}

/// Spawns the crash child (this same test binary, re-executed with the
/// child entry selected) against `root`.
fn spawn_child(root: &Path, failpoints: Option<&str>) -> Child {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(exe);
    cmd.arg("crash_child_entry")
        .arg("--exact")
        .arg("--nocapture")
        .env("SOLAP_CRASH_DIR", root)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    match failpoints {
        Some(fp) => cmd.env("SOLAP_FAILPOINTS", fp),
        None => cmd.env_remove("SOLAP_FAILPOINTS"),
    };
    cmd.spawn().expect("spawn crash child")
}

/// One kill cycle: let the child make progress, SIGKILL it at a jittered
/// moment, then verify the recovered log.
fn crash_cycle(root: &Path, failpoints: Option<&str>, jitter_ms: u64) {
    let ack_before = read_marker(root, "ACK");
    let mut child = spawn_child(root, failpoints);
    let deadline = Instant::now() + Duration::from_secs(30);
    while read_marker(root, "ACK") < ack_before + 3 {
        assert!(
            Instant::now() < deadline,
            "child made no progress (ack {} → {})",
            ack_before,
            read_marker(root, "ACK")
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(jitter_ms));
    child.kill().expect("SIGKILL child");
    let _ = child.wait();

    // Recover and check the two durability invariants.
    let ack = read_marker(root, "ACK");
    let sent = read_marker(root, "SENT");
    let (_, rows, _) = EventLog::open(&root.join("wal"), FsyncPolicy::Off).unwrap();
    let n = rows.len() as i64;
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r, &row(i as i64), "recovered events must be gapless");
    }
    assert!(
        n > ack,
        "acknowledged-durable violated: ack={ack} but only {n} events recovered"
    );
    assert!(
        n <= sent + 1,
        "unacknowledged-absent violated: sent={sent} but {n} events recovered"
    );
}

/// Kill iterations per variant: `SOLAP_CRASH_ITERS` (CI sets it), default
/// 8 + 6 + 6 = 20 SIGKILLs across the three variants.
fn iters(default: usize) -> usize {
    std::env::var("SOLAP_CRASH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn crash_loop_survives_sigkill_mid_append() {
    let root = tmpdir("crash-plain");
    for i in 0..iters(8) {
        crash_cycle(&root, None, (i as u64 * 7) % 23);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crash_loop_survives_sigkill_inside_fsync() {
    let root = tmpdir("crash-fsync");
    // Delay inside the fsync window so kills land mid-sync.
    for i in 0..iters(6) {
        crash_cycle(&root, Some("wal.fsync=delay:2"), (i as u64 * 5) % 11);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crash_loop_survives_sigkill_inside_rotation() {
    let root = tmpdir("crash-rotate");
    // Delay inside rotation so kills land between seal and manifest.
    for i in 0..iters(6) {
        crash_cycle(&root, Some("wal.rotate=delay:2"), (i as u64 * 3) % 13);
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Recovery itself is crash-safe: a durable engine reopened after the
/// crash loop answers queries on exactly the recovered prefix.
#[test]
fn recovered_engine_serves_queries() {
    let root = tmpdir("crash-query");
    crash_cycle(&root, None, 3);
    let schema = EventDbBuilder::new()
        .dimension("n", ColumnType::Int)
        .build()
        .unwrap();
    let engine = Engine::builder(schema)
        .durable_with_options(root.join("wal"), FsyncPolicy::Always, 512)
        .unwrap()
        .build();
    let report = engine.recovery_report().unwrap().clone();
    assert_eq!(
        engine.db().len() as u64,
        report.sealed_events + report.wal_events
    );
    assert!(engine.db().len() >= 4, "the crash cycle appended events");
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// Stream/query equivalence: concurrent ingestion never corrupts caches
// ---------------------------------------------------------------------

/// The chaos suite's deterministic database: 24 sequences over 5 symbols
/// with an `a`/`b` tag and a dyadic weight (bit-exact SUM/AVG).
fn build_db() -> EventDb {
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("symbol", ColumnType::Str)
        .dimension("tag", ColumnType::Str)
        .measure("weight", ColumnType::Float)
        .build()
        .unwrap();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for sid in 0..24i64 {
        let len = 3 + (sid % 6);
        for pos in 0..len {
            let sym = next() % 5;
            let tag = next() % 2 == 0;
            db.push_row(&[
                Value::Int(sid),
                Value::Int(pos),
                Value::Str(format!("s{sym}")),
                Value::from(if tag { "a" } else { "b" }),
                Value::Float(sym as f64 + 0.5),
            ])
            .unwrap();
        }
    }
    db.set_base_level_name(2, "symbol");
    db.attach_str_level(2, "parity", |name| {
        let v: u32 = name[1..].parse().unwrap();
        format!("p{}", v % 2)
    })
    .unwrap();
    db
}

/// `(X, Y)` substring spec with one of the five aggregates.
fn spec_for(agg: u8) -> SCuboidSpec {
    let template = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y"],
        &[("X", 2, 0), ("Y", 2, 0)],
    )
    .unwrap();
    SCuboidSpec::new(
        template,
        vec![AttrLevel::new(0, 0)],
        vec![SortKey {
            attr: 1,
            ascending: true,
        }],
    )
    .with_mpred(MatchPred::cmp(0, 3, CmpOp::Eq, "a"))
    .with_agg(match agg {
        0 => AggFunc::Count,
        1 => AggFunc::Sum(4, SumMode::AllEvents),
        2 => AggFunc::Avg(4, SumMode::AllEvents),
        3 => AggFunc::Min(4),
        _ => AggFunc::Max(4),
    })
}

#[test]
fn interleaved_stream_and_queries_match_fresh_rebuild() {
    let engine = Arc::new(Engine::new(build_db()));
    let done = Arc::new(AtomicBool::new(false));

    // Readers hammer all five aggregates while the stream runs; each
    // query must succeed against whatever consistent snapshot it sees.
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut queries = 0u64;
                loop {
                    let out = engine.execute(&spec_for((queries % 5) as u8));
                    assert!(out.is_ok(), "reader {r}: {out:?}");
                    queries += 1;
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                }
                queries
            })
        })
        .collect();

    // Write-heavy stream: mostly new clusters (extendable), every fifth
    // batch lands in an existing cluster (ClusterInvalidated fallback).
    let mut state = 0xDEAD_BEEF_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for i in 0..150i64 {
        let sid = if i % 5 == 4 { i % 24 } else { 1000 + i };
        let base_pos = if sid < 24 { 100 + i } else { 0 };
        let batch: Vec<Vec<Value>> = (0..2 + (i % 3))
            .map(|p| {
                let sym = next() % 5;
                vec![
                    Value::Int(sid),
                    Value::Int(base_pos + p),
                    Value::Str(format!("s{sym}")),
                    Value::from(if next() % 2 == 0 { "a" } else { "b" }),
                    Value::Float(sym as f64 + 0.5),
                ]
            })
            .collect();
        engine.append_events(&batch).unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for r in readers {
        let queries = r.join().expect("reader thread");
        assert!(queries > 0, "readers must observe the stream");
    }

    // The streamed engine must now answer bit-identically to a fresh
    // rebuild, across strategies × aggregates × threads × backends.
    let final_db = engine.db().clone();
    for strategy in [Strategy::CounterBased, Strategy::InvertedIndex] {
        for backend in [
            SetBackend::List,
            SetBackend::Bitmap,
            SetBackend::Compressed,
            SetBackend::Auto,
        ] {
            for threads in [1usize, 8] {
                let cfg = EngineConfig {
                    strategy,
                    backend,
                    threads,
                    timeout: None,
                    budget_cells: None,
                    ..Default::default()
                };
                let fresh = Engine::with_config(final_db.clone(), cfg.clone());
                for agg in 0..5u8 {
                    let spec = spec_for(agg);
                    let got = engine.execute_configured(&spec, &cfg).unwrap();
                    let want = fresh.execute(&spec).unwrap();
                    assert!(!want.cuboid.is_empty(), "oracle must be non-trivial");
                    assert_eq!(
                        got.cuboid.cells, want.cuboid.cells,
                        "{strategy:?}/{backend:?}/threads={threads}/agg={agg} diverged"
                    );
                }
            }
        }
    }
}
