//! Integration tests for the §6 extensions working together through the
//! engine: iceberg cuboids, online aggregation, incremental update, and
//! the bitmap index backend — each verified against the exact baseline.

use s_olap::core::incremental::{extend_groups, extend_index};
use s_olap::core::online::online_count;
use s_olap::index::{build_index, SetBackend};
use s_olap::prelude::*;

fn synthetic_db(d: usize, seed: u64) -> EventDb {
    s_olap::datagen::generate_synthetic(&s_olap::datagen::SyntheticConfig {
        i: 30,
        l: 10.0,
        theta: 0.9,
        d,
        seed,
        hierarchy: true,
    })
    .unwrap()
}

fn xy_query(db: &EventDb, level: &str) -> SCuboidSpec {
    s_olap::query::parse_query(
        db,
        &format!(
            r#"
            SELECT COUNT(*) FROM Event
            CLUSTER BY seq-id AT raw
            SEQUENCE BY pos ASCENDING
            CUBOID BY SUBSTRING (X, Y)
              WITH X AS symbol AT {level}, Y AS symbol AT {level}
              LEFT-MAXIMALITY (x1, y1)
            "#
        ),
    )
    .unwrap()
}

#[test]
fn iceberg_thresholds_nest() {
    let engine = Engine::new(synthetic_db(800, 5));
    let spec = xy_query(&engine.db(), "symbol");
    let full = engine.execute(&spec).unwrap();
    let mut last_len = full.cuboid.len();
    let mut last_cells: Vec<_> = full
        .cuboid
        .iter_sorted()
        .iter()
        .map(|(k, _)| (*k).clone())
        .collect();
    for ms in [2u64, 5, 20, 100] {
        let (s, out) = engine
            .execute_op(&spec, &Op::SetMinSupport(Some(ms)))
            .unwrap();
        assert_eq!(s.min_support, Some(ms));
        assert!(
            out.cuboid.len() <= last_len,
            "higher threshold, fewer cells"
        );
        // Nesting: every surviving cell survived the lower threshold too.
        for (k, v) in out.cuboid.iter_sorted() {
            assert!(last_cells.contains(k));
            assert!(v.as_count().unwrap() >= ms);
            // And the value matches the unfiltered cuboid exactly.
            assert_eq!(full.cuboid.cells.get(k), Some(v));
        }
        last_len = out.cuboid.len();
        last_cells = out
            .cuboid
            .iter_sorted()
            .iter()
            .map(|(k, _)| (*k).clone())
            .collect();
    }
}

#[test]
fn online_aggregation_converges_to_engine_result() {
    let engine = Engine::new(synthetic_db(600, 9));
    let spec = xy_query(&engine.db(), "group");
    let exact = engine.execute(&spec).unwrap();
    let groups = engine.sequence_groups(&spec).unwrap();
    let mut snapshots = 0;
    let final_cuboid = online_count(&engine.db(), &groups, &spec, 100, |snap| {
        snapshots += 1;
        assert!(snap.progress > 0.0 && snap.progress <= 1.0);
    })
    .unwrap();
    assert!(snapshots >= 5);
    assert_eq!(final_cuboid.cells, exact.cuboid.cells);
}

#[test]
fn incremental_day_append_equals_rebuild_through_engine() {
    // Build day-partitioned data directly: cluster by the day column.
    let mut db = EventDbBuilder::new()
        .dimension("day", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("item", ColumnType::Str)
        .build()
        .unwrap();
    let items = ["a", "b", "c", "d"];
    for day in 0..6i64 {
        for pos in 0..8i64 {
            let item = items[((day * 5 + pos * 3) % 4) as usize];
            db.push_row(&[Value::Int(day), Value::Int(pos), Value::from(item)])
                .unwrap();
        }
    }
    let seq_spec = s_olap::eventdb::SeqQuerySpec {
        filter: Pred::True,
        cluster_by: vec![AttrLevel::new(0, 0)],
        sequence_by: vec![SortKey {
            attr: 1,
            ascending: true,
        }],
        group_by: vec![],
    };
    let template = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y"],
        &[("X", 2, 0), ("Y", 2, 0)],
    )
    .unwrap();
    let old_groups = s_olap::eventdb::build_sequence_groups(&db, &seq_spec).unwrap();
    let (old_index, _) = build_index(
        &db,
        old_groups.iter_sequences(),
        &template,
        SetBackend::List,
    )
    .unwrap();
    // Two new days arrive.
    let from_row = db.len() as u32;
    for day in 6..8i64 {
        for pos in 0..8i64 {
            let item = items[((day * 7 + pos) % 4) as usize];
            db.push_row(&[Value::Int(day), Value::Int(pos), Value::from(item)])
                .unwrap();
        }
    }
    let (new_groups, new_sids) = extend_groups(&db, &seq_spec, &old_groups, from_row).unwrap();
    let fresh: Vec<_> = new_sids
        .iter()
        .map(|&sid| new_groups.sequence(sid).unwrap().clone())
        .collect();
    assert_eq!(fresh.len(), 2);
    let incr = extend_index(&db, &old_index, &fresh, &template).unwrap();
    let (rebuilt, _) = build_index(
        &db,
        new_groups.iter_sequences(),
        &template,
        SetBackend::List,
    )
    .unwrap();
    assert_eq!(incr.list_count(), rebuilt.list_count());
    for (k, v) in &rebuilt.lists {
        assert_eq!(incr.lists[k].to_vec(), v.to_vec());
    }
    // And the engine (version-keyed caches) sees fresh results after the
    // append, matching a scratch engine byte for byte.
    let spec = s_olap::query::parse_query(
        &db,
        r#"
        SELECT COUNT(*) FROM Event
        CLUSTER BY day AT raw
        SEQUENCE BY pos ASCENDING
        CUBOID BY SUBSTRING (X, Y)
          WITH X AS item AT item, Y AS item AT item
          LEFT-MAXIMALITY (x1, y1)
        "#,
    )
    .unwrap();
    let engine = Engine::new(db.clone());
    let scratch = Engine::new(db);
    assert_eq!(
        engine.execute(&spec).unwrap().cuboid.cells,
        scratch.execute(&spec).unwrap().cuboid.cells
    );
}

#[test]
fn bitmap_backend_agrees_on_synthetic_workload() {
    let spec_text = |db: &EventDb| xy_query(db, "symbol");
    let list = Engine::with_config(
        synthetic_db(400, 3),
        EngineConfig {
            backend: SetBackend::List,
            ..Default::default()
        },
    );
    let bitmap = Engine::with_config(
        synthetic_db(400, 3),
        EngineConfig {
            backend: SetBackend::Bitmap,
            ..Default::default()
        },
    );
    let list_spec = spec_text(&list.db());
    let bitmap_spec = spec_text(&bitmap.db());
    let a = list.execute(&list_spec).unwrap();
    let b = bitmap.execute(&bitmap_spec).unwrap();
    assert_eq!(a.cuboid.cells, b.cuboid.cells);
    // Both then APPEND and still agree (exercises joins on both backends).
    let (_, a2) = list
        .execute_op(
            &list_spec,
            &Op::Append {
                symbol: "Z".into(),
                attr: 2,
                level: 0,
            },
        )
        .unwrap();
    let (_, b2) = bitmap
        .execute_op(
            &bitmap_spec,
            &Op::Append {
                symbol: "Z".into(),
                attr: 2,
                level: 0,
            },
        )
        .unwrap();
    assert_eq!(a2.cuboid.cells, b2.cuboid.cells);
}

#[test]
fn suggest_min_support_guides_iceberg() {
    let engine = Engine::new(synthetic_db(500, 13));
    let spec = xy_query(&engine.db(), "symbol");
    let full = engine.execute(&spec).unwrap();
    let t = s_olap::core::iceberg::suggest_min_support(&full.cuboid, 0.8);
    assert!(t >= 1);
    let (_, filtered) = engine
        .execute_op(&spec, &Op::SetMinSupport(Some(t)))
        .unwrap();
    let kept: u64 = filtered.cuboid.total_count();
    let total: u64 = full.cuboid.total_count();
    assert!(
        kept as f64 >= 0.8 * total as f64,
        "kept {kept} of {total} under threshold {t}"
    );
    assert!(filtered.cuboid.len() <= full.cuboid.len());
}
