//! Property test: `SCuboidSpec::render` emits text the parser maps back to
//! a fingerprint-identical spec, across randomized specs — so cached
//! cuboids, saved queries and the CLI all speak one canonical language.

use proptest::prelude::*;

#[allow(unused_imports)]
use s_olap::prelude::{
    AggFunc, AttrLevel, CellRestriction, CmpOp, ColumnType, EventDb, EventDbBuilder, MatchPred,
    PatternKind, PatternTemplate, Pred, SCuboidSpec, SortKey, SumMode, Value,
};

fn db() -> EventDb {
    let mut db = EventDbBuilder::new()
        .dimension("time", ColumnType::Time)
        .dimension("card-id", ColumnType::Int)
        .dimension("location", ColumnType::Str)
        .dimension("action", ColumnType::Str)
        .measure("amount", ColumnType::Float)
        .build()
        .unwrap();
    db.set_time_hierarchy(0, s_olap::eventdb::TimeHierarchy::full())
        .unwrap();
    for (i, st) in ["Pentagon", "Wheaton", "Glenmont", "Clarendon"]
        .iter()
        .enumerate()
    {
        db.push_row(&[
            Value::from("2007-10-01T08:00"),
            Value::Int(600 + i as i64),
            Value::from(*st),
            Value::from(if i % 2 == 0 { "in" } else { "out" }),
            Value::Float(i as f64),
        ])
        .unwrap();
    }
    db.set_base_level_name(2, "station");
    db.attach_str_level(2, "district", |s| {
        if s == "Pentagon" || s == "Clarendon" {
            "D10".into()
        } else {
            "D20".into()
        }
    })
    .unwrap();
    db.set_base_level_name(1, "individual");
    db.attach_int_level(1, "fare-group", |id| {
        if id % 2 == 0 {
            "regular".into()
        } else {
            "student".into()
        }
    })
    .unwrap();
    db
}

#[derive(Debug, Clone)]
struct SpecShape {
    symbols: Vec<usize>,
    levels: [usize; 3],
    kind_subseq: bool,
    restriction: u8,
    agg: u8,
    with_filter: bool,
    with_groups: bool,
    pred_positions: Vec<(usize, bool)>,
    slice_pattern: bool,
    slice_global: bool,
    min_support: Option<u64>,
}

fn shape() -> impl Strategy<Value = SpecShape> {
    (
        prop::collection::vec(0usize..3, 1..5),
        [0usize..2, 0usize..2, 0usize..2],
        any::<bool>(),
        0u8..3,
        0u8..6,
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec((0usize..4, any::<bool>()), 0..3),
        any::<bool>(),
        any::<bool>(),
        prop::option::of(0u64..50),
    )
        .prop_map(
            |(
                symbols,
                levels,
                kind_subseq,
                restriction,
                agg,
                with_filter,
                with_groups,
                pred_positions,
                slice_pattern,
                slice_global,
                min_support,
            )| SpecShape {
                symbols,
                levels,
                kind_subseq,
                restriction,
                agg,
                with_filter,
                with_groups,
                pred_positions,
                slice_pattern,
                slice_global,
                min_support,
            },
        )
}

fn build_spec(db: &EventDb, s: &SpecShape) -> SCuboidSpec {
    let names = ["X", "Y", "Z"];
    let position_syms: Vec<&str> = s.symbols.iter().map(|&d| names[d]).collect();
    let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
    for &d in &s.symbols {
        let n = names[d];
        if !bindings.iter().any(|(b, _, _)| *b == n) {
            bindings.push((n, 2, s.levels[d]));
        }
    }
    let kind = if s.kind_subseq {
        PatternKind::Subsequence
    } else {
        PatternKind::Substring
    };
    let template = PatternTemplate::new(kind, &position_syms, &bindings).unwrap();
    let m = template.m();
    let restriction = match s.restriction {
        0 => CellRestriction::LeftMaximalityMatchedGo,
        1 => CellRestriction::LeftMaximalityDataGo,
        _ => CellRestriction::AllMatchedGo,
    };
    let agg = match s.agg {
        0 => AggFunc::Count,
        1 => AggFunc::Sum(4, SumMode::AllEvents),
        2 => AggFunc::Sum(4, SumMode::FirstEvent),
        3 => AggFunc::Avg(4, SumMode::AllEvents),
        4 => AggFunc::Min(4),
        _ => AggFunc::Max(4),
    };
    let mpred = MatchPred::all(
        s.pred_positions
            .iter()
            .filter(|(p, _)| *p < m)
            .map(|(p, want_in)| {
                MatchPred::cmp(*p, 3, CmpOp::Eq, if *want_in { "in" } else { "out" })
            }),
    );
    let mut spec = SCuboidSpec::new(
        template,
        vec![AttrLevel::new(1, 0), AttrLevel::new(0, 2)], // card-id, time AT day
        vec![SortKey {
            attr: 0,
            ascending: true,
        }],
    )
    .with_agg(agg)
    .with_restriction(restriction)
    .with_mpred(mpred);
    if s.with_filter {
        // Time literals are written canonically as Value::Time — exactly
        // what the parser normalizes string timestamps into.
        let t0 = s_olap::eventdb::time::parse_timestamp("2007-10-01T00:00").unwrap();
        spec = spec.with_filter(Pred::cmp(0, CmpOp::Ge, Value::Time(t0)).and(
            Pred::cmp(2, CmpOp::Ne, "Atlantis").or(Pred::cmp(4, CmpOp::Lt, Value::Float(2.5))),
        ));
    }
    if s.with_groups {
        spec = spec.with_group_by(vec![AttrLevel::new(1, 1), AttrLevel::new(0, 2)]);
        if s.slice_global {
            let v = db.parse_level_value(1, 1, "regular").unwrap();
            spec.global_slice.insert(0, v);
        }
    }
    if s.slice_pattern {
        let d0 = &spec.template.dims[0];
        // Slice either at the dimension's level or at the coarser district
        // level (exercising the AT clause in the rendered text).
        let (level, v) = if d0.level == 0 && s.kind_subseq {
            (1, db.parse_level_value(2, 1, "D10").unwrap())
        } else if d0.level == 0 {
            (0, db.parse_level_value(2, 0, "Pentagon").unwrap())
        } else {
            (1, db.parse_level_value(2, 1, "D10").unwrap())
        };
        spec.pattern_slice.insert(0, (level, v));
    }
    spec.min_support = s.min_support;
    spec
}

/// The property body, shared between the randomized test and the named
/// regression cases promoted from `language_roundtrip.proptest-regressions`.
fn check_roundtrip(s: &SpecShape) -> Result<(), TestCaseError> {
    let db = db();
    let spec = build_spec(&db, s);
    prop_assert!(spec.validate(&db).is_ok());
    let text = spec.render(&db);
    let reparsed = s_olap::query::parse_query(&db, &text)
        .map_err(|e| TestCaseError::fail(format!("{e}\n--- query ---\n{text}")))?;
    prop_assert_eq!(
        spec.fingerprint(),
        reparsed.fingerprint(),
        "render → parse changed the spec:\n{}\n--- reparsed ---\n{}",
        text,
        reparsed.render(&db)
    );
    // And rendering again is stable (idempotent pretty-printer).
    prop_assert_eq!(text, reparsed.render(&db));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn render_then_parse_is_identity(s in shape()) {
        check_roundtrip(&s)?;
    }
}

/// Promoted regression seed (`cc c3ee1523…`): a one-symbol substring
/// template with a WHERE filter once rendered a filter clause the parser
/// rejected. Kept as a named case so the shape stays pinned even if the
/// seed file is lost.
#[test]
fn regression_unary_template_with_filter() {
    let s = SpecShape {
        symbols: vec![0],
        levels: [0, 0, 0],
        kind_subseq: false,
        restriction: 0,
        agg: 0,
        with_filter: true,
        with_groups: false,
        pred_positions: vec![],
        slice_pattern: false,
        slice_global: false,
        min_support: None,
    };
    check_roundtrip(&s).unwrap();
}
