//! Property test: random navigation journeys.
//!
//! The inverted-index fast paths (prefix-join APPEND, left-join PREPEND,
//! list-merge P-ROLL-UP, refinement P-DRILL-DOWN, cuboid-repository
//! DE-HEAD/DE-TAIL) are only exercised through `Engine::execute_op` with
//! operation hints — so this test drives a CB engine and an II engine
//! through the *same random sequence of operations* and asserts cell-exact
//! agreement after every step. This is the invariant an interactive
//! exploration session rests on.

use proptest::prelude::*;

use s_olap::prelude::Strategy as EngineStrategy;
#[allow(unused_imports)]
use s_olap::prelude::{
    AttrLevel, CmpOp, ColumnType, Engine, EngineConfig, EventDb, EventDbBuilder, MatchPred, Op,
    PatternKind, PatternTemplate, SCuboidSpec, SortKey, Value,
};

fn build_db(seqs: &[Vec<u8>]) -> EventDb {
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("symbol", ColumnType::Str)
        .build()
        .unwrap();
    for (sid, seq) in seqs.iter().enumerate() {
        for (pos, &sym) in seq.iter().enumerate() {
            db.push_row(&[
                Value::Int(sid as i64),
                Value::Int(pos as i64),
                Value::Str(format!("s{}", sym % 6)),
            ])
            .unwrap();
        }
    }
    db.set_base_level_name(2, "symbol");
    db.attach_str_level(2, "parity", |n| {
        let v: u32 = n[1..].parse().unwrap();
        format!("p{}", v % 2)
    })
    .unwrap();
    db.attach_str_level(2, "all", |_| "⊤".into()).unwrap();
    db
}

fn initial_spec() -> SCuboidSpec {
    let t = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y"],
        &[("X", 2, 0), ("Y", 2, 0)],
    )
    .unwrap();
    SCuboidSpec::new(
        t,
        vec![AttrLevel::new(0, 0)],
        vec![SortKey {
            attr: 1,
            ascending: true,
        }],
    )
}

/// An abstract navigation move, concretised against the current spec (so
/// random sequences stay valid: levels in range, symbols existing, etc.).
#[derive(Debug, Clone, Copy)]
enum Move {
    AppendNew,
    AppendExisting,
    Prepend,
    DeTail,
    DeHead,
    PRollUp(u8),
    PDrillDown(u8),
    SliceTop,
    MinSupport(u8),
}

fn concretise(engine: &Engine, spec: &SCuboidSpec, mv: Move) -> Option<Op> {
    let db = engine.db();
    match mv {
        Move::AppendNew => Some(Op::Append {
            symbol: spec.template.fresh_symbol_name(),
            attr: 2,
            level: 0,
        }),
        Move::AppendExisting => {
            let d = spec.template.dims.first()?;
            Some(Op::Append {
                symbol: d.name.clone(),
                attr: d.attr,
                level: d.level,
            })
        }
        Move::Prepend => {
            let d = spec.template.dims.last()?;
            Some(Op::Prepend {
                symbol: d.name.clone(),
                attr: d.attr,
                level: d.level,
            })
        }
        Move::DeTail => (spec.template.m() > 1).then_some(Op::DeTail),
        Move::DeHead => (spec.template.m() > 1).then_some(Op::DeHead),
        Move::PRollUp(i) => {
            let dims = &spec.template.dims;
            let d = &dims[i as usize % dims.len()];
            (d.level + 1 < db.level_count(d.attr)).then(|| Op::PRollUp {
                dim: d.name.clone(),
            })
        }
        Move::PDrillDown(i) => {
            let dims = &spec.template.dims;
            let d = &dims[i as usize % dims.len()];
            (d.level > 0).then(|| Op::PDrillDown {
                dim: d.name.clone(),
            })
        }
        Move::SliceTop => {
            let out = engine.execute(spec).ok()?;
            let top = out.cuboid.top_k(1);
            let (key, _) = top.first()?;
            Some(Op::Dice {
                global: vec![],
                pattern: spec
                    .template
                    .dims
                    .iter()
                    .enumerate()
                    .map(|(i, d)| (d.name.clone(), key.pattern[i]))
                    .collect(),
            })
        }
        Move::MinSupport(n) => Some(Op::SetMinSupport(if n == 0 {
            None
        } else {
            Some(n as u64)
        })),
    }
}

fn move_strategy() -> impl Strategy<Value = Move> {
    prop_oneof![
        Just(Move::AppendNew),
        Just(Move::AppendExisting),
        Just(Move::Prepend),
        Just(Move::DeTail),
        Just(Move::DeHead),
        any::<u8>().prop_map(Move::PRollUp),
        any::<u8>().prop_map(Move::PDrillDown),
        Just(Move::SliceTop),
        (0u8..4).prop_map(Move::MinSupport),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cb_and_ii_agree_along_every_journey(
        seqs in prop::collection::vec(prop::collection::vec(0u8..6, 0..8), 1..10),
        moves in prop::collection::vec(move_strategy(), 0..8),
    ) {
        let cb = Engine::with_config(
            build_db(&seqs),
            EngineConfig { strategy: EngineStrategy::CounterBased, ..Default::default() },
        );
        let ii = Engine::with_config(
            build_db(&seqs),
            EngineConfig { strategy: EngineStrategy::InvertedIndex, ..Default::default() },
        );
        let mut spec_cb = initial_spec();
        let mut spec_ii = initial_spec();
        let out_cb = cb.execute(&spec_cb).unwrap();
        let out_ii = ii.execute(&spec_ii).unwrap();
        prop_assert_eq!(&out_cb.cuboid.cells, &out_ii.cuboid.cells, "initial");
        // Cap the template length so subsequence-free journeys stay fast.
        for (step, mv) in moves.into_iter().enumerate() {
            if spec_cb.template.m() >= 5
                && matches!(mv, Move::AppendNew | Move::AppendExisting | Move::Prepend)
            {
                continue;
            }
            // Concretise against the CB engine (same data ⇒ same answer on
            // the II engine; SliceTop consults the cuboid, which the
            // equality assertion of the previous step guarantees agrees).
            let Some(op) = concretise(&cb, &spec_cb, mv) else { continue };
            let (ns_cb, o_cb) = cb.execute_op(&spec_cb, &op).unwrap();
            let (ns_ii, o_ii) = ii.execute_op(&spec_ii, &op).unwrap();
            prop_assert_eq!(ns_cb.fingerprint(), ns_ii.fingerprint(), "specs diverged");
            prop_assert_eq!(
                &o_cb.cuboid.cells,
                &o_ii.cuboid.cells,
                "step {} ({:?}) diverged",
                step,
                op.name()
            );
            spec_cb = ns_cb;
            spec_ii = ns_ii;
        }
    }
}
