//! Property tests for the load-bearing invariant of the reproduction: the
//! counter-based and inverted-index approaches compute **identical**
//! S-cuboids, for random datasets, templates, restrictions, predicates,
//! abstraction levels and set backends — plus the matcher's ordering
//! invariants (left-maximality ≤ all-matched, substring ⊆ subsequence).

use proptest::prelude::*;

use s_olap::prelude::Strategy as EngineStrategy;
#[allow(unused_imports)]
use s_olap::prelude::{
    AggFunc, AttrLevel, CellRestriction, CmpOp, ColumnType, Engine, EngineConfig, EventDb,
    EventDbBuilder, MatchPred, Op, PatternKind, PatternTemplate, SCuboidSpec, SetBackend, SortKey,
    SumMode, Value,
};

/// A random event database: `n` sequences over an alphabet of ≤ 5 symbols,
/// each event tagged `a`/`b` (for matching predicates), plus the two-level
/// hierarchy symbol → parity group.
fn build_db(seqs: &[Vec<(u8, bool)>]) -> EventDb {
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("symbol", ColumnType::Str)
        .dimension("tag", ColumnType::Str)
        .measure("weight", ColumnType::Float)
        .build()
        .unwrap();
    for (sid, seq) in seqs.iter().enumerate() {
        for (pos, &(sym, tag)) in seq.iter().enumerate() {
            db.push_row(&[
                Value::Int(sid as i64),
                Value::Int(pos as i64),
                Value::Str(format!("s{sym}")),
                Value::from(if tag { "a" } else { "b" }),
                Value::Float((sym as f64) + 0.5),
            ])
            .unwrap();
        }
    }
    db.set_base_level_name(2, "symbol");
    db.attach_str_level(2, "parity", |name| {
        let v: u32 = name[1..].parse().unwrap();
        format!("p{}", v % 2)
    })
    .unwrap();
    db
}

#[derive(Debug, Clone)]
struct Case {
    seqs: Vec<Vec<(u8, bool)>>,
    symbols: Vec<usize>, // dim index per template position
    level: usize,
    kind: PatternKind,
    restriction: CellRestriction,
    pred_tag: Option<(usize, bool)>, // (position, required tag)
    agg: u8,
    group_by_parity: bool,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    let seq = prop::collection::vec((0u8..5, any::<bool>()), 1..10);
    let seqs = prop::collection::vec(seq, 1..12);
    (
        seqs,
        prop::collection::vec(0usize..3, 1..4),
        0usize..2,
        prop_oneof![Just(PatternKind::Substring), Just(PatternKind::Subsequence)],
        prop_oneof![
            Just(CellRestriction::LeftMaximalityMatchedGo),
            Just(CellRestriction::LeftMaximalityDataGo),
            Just(CellRestriction::AllMatchedGo),
        ],
        prop::option::of((0usize..3, any::<bool>())),
        0u8..4,
        any::<bool>(),
    )
        .prop_map(
            |(seqs, symbols, level, kind, restriction, pred_tag, agg, group_by_parity)| Case {
                seqs,
                symbols,
                level,
                kind,
                restriction,
                pred_tag,
                agg,
                group_by_parity,
            },
        )
}

fn spec_for(db: &EventDb, case: &Case) -> SCuboidSpec {
    // Dimension names A, B, C; positions pick from them.
    let names = ["A", "B", "C"];
    let position_syms: Vec<&str> = case.symbols.iter().map(|&d| names[d]).collect();
    let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
    for &s in &position_syms {
        if !bindings.iter().any(|(n, _, _)| *n == s) {
            bindings.push((s, 2, case.level));
        }
    }
    let template = PatternTemplate::new(case.kind, &position_syms, &bindings).unwrap();
    let m = template.m();
    let mpred = match case.pred_tag {
        Some((pos, want)) if pos < m => MatchPred::cmp(
            pos,
            db.attr("tag").unwrap(),
            CmpOp::Eq,
            if want { "a" } else { "b" },
        ),
        _ => MatchPred::True,
    };
    let agg = match case.agg {
        0 => AggFunc::Count,
        1 => AggFunc::Sum(4, SumMode::AllEvents),
        2 => AggFunc::Sum(4, SumMode::FirstEvent),
        _ => AggFunc::Max(4),
    };
    let group_by = if case.group_by_parity {
        vec![AttrLevel::new(2, 1)] // parity of the FIRST event
    } else {
        vec![]
    };
    SCuboidSpec::new(
        template,
        vec![AttrLevel::new(0, 0)],
        vec![SortKey {
            attr: 1,
            ascending: true,
        }],
    )
    .with_mpred(mpred)
    .with_restriction(case.restriction)
    .with_agg(agg)
    .with_group_by(group_by)
}

fn cells_of(engine: &Engine, spec: &SCuboidSpec) -> Vec<(s_olap::core::CellKey, String)> {
    let out = engine.execute(spec).unwrap();
    out.cuboid
        .iter_sorted()
        .into_iter()
        // Compare float aggregates textually at fixed precision to dodge
        // accumulation-order noise (none expected — both engines fold
        // leftmost-first — but cheap insurance).
        .map(|(k, v)| (k.clone(), format!("{v}")))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// CB ≡ II (list backend) ≡ II (bitmap backend), for every case shape.
    #[test]
    fn cb_equals_ii(case in case_strategy()) {
        let spec = {
            let db = build_db(&case.seqs);
            spec_for(&db, &case)
        };
        let cb = Engine::with_config(
            build_db(&case.seqs),
            EngineConfig { strategy: EngineStrategy::CounterBased, ..Default::default() },
        );
        let ii = Engine::with_config(
            build_db(&case.seqs),
            EngineConfig { strategy: EngineStrategy::InvertedIndex, ..Default::default() },
        );
        let iib = Engine::with_config(
            build_db(&case.seqs),
            EngineConfig {
                strategy: EngineStrategy::InvertedIndex,
                backend: SetBackend::Bitmap,
                ..Default::default()
            },
        );
        let a = cells_of(&cb, &spec);
        let b = cells_of(&ii, &spec);
        let c = cells_of(&iib, &spec);
        prop_assert_eq!(&a, &b, "CB vs II(list)");
        prop_assert_eq!(&b, &c, "II(list) vs II(bitmap)");
    }

    /// Left-maximality counts never exceed all-matched counts, cell-wise,
    /// and matched-go/data-go agree on COUNT.
    #[test]
    fn left_maximality_bounded_by_all_matched(mut case in case_strategy()) {
        case.agg = 0;
        let engine = Engine::new(build_db(&case.seqs));
        case.restriction = CellRestriction::LeftMaximalityMatchedGo;
        let spec = spec_for(&engine.db(), &case);

        let lm = engine.execute(&spec).unwrap();
        case.restriction = CellRestriction::AllMatchedGo;
        let spec = spec_for(&engine.db(), &case);

        let all = engine.execute(&spec).unwrap();
        case.restriction = CellRestriction::LeftMaximalityDataGo;
        let spec = spec_for(&engine.db(), &case);

        let dg = engine.execute(&spec).unwrap();
        prop_assert_eq!(lm.cuboid.len(), all.cuboid.len(), "same non-empty cells");
        for (k, v) in lm.cuboid.iter_sorted() {
            let a = all.cuboid.cells.get(k).and_then(|x| x.as_count()).unwrap_or(0);
            prop_assert!(v.as_count().unwrap() <= a, "cell {:?}: lm {} > all {}", k, v, a);
            let d = dg.cuboid.cells.get(k).and_then(|x| x.as_count()).unwrap_or(0);
            prop_assert_eq!(v.as_count().unwrap(), d, "matched-go vs data-go COUNT");
        }
    }

    /// Every substring cell count is ≤ the subsequence count of the same
    /// cell (occurrence containment), under all-matched counting.
    #[test]
    fn substring_counts_below_subsequence(mut case in case_strategy()) {
        case.agg = 0;
        case.restriction = CellRestriction::AllMatchedGo;
        // Keep subsequence enumeration tractable.
        case.symbols.truncate(3);
        let engine = Engine::new(build_db(&case.seqs));
        case.kind = PatternKind::Substring;
        let spec = spec_for(&engine.db(), &case);

        let sub = engine.execute(&spec).unwrap();
        case.kind = PatternKind::Subsequence;
        let spec = spec_for(&engine.db(), &case);

        let sseq = engine.execute(&spec).unwrap();
        for (k, v) in sub.cuboid.iter_sorted() {
            let s = sseq.cuboid.cells.get(k).and_then(|x| x.as_count()).unwrap_or(0);
            prop_assert!(
                v.as_count().unwrap() <= s,
                "cell {:?}: substring {} > subsequence {}",
                k, v, s
            );
        }
    }

    /// Rolling the result up (P-ROLL-UP on every dimension) matches
    /// computing directly at the coarse level — engine-level, both
    /// strategies, via the operation path (which exercises the list-merge
    /// fast path when symbols are distinct).
    #[test]
    fn p_roll_up_matches_direct(mut case in case_strategy()) {
        case.level = 0;
        case.agg = 0;
        let engine = Engine::new(build_db(&case.seqs));
        let fine = spec_for(&engine.db(), &case);
        engine.execute(&fine).unwrap();
        // Apply P-ROLL-UP to every distinct dimension through the engine.
        let mut spec = fine.clone();
        let dims: Vec<String> = spec.template.dims.iter().map(|d| d.name.clone()).collect();
        let mut out = None;
        for d in dims {
            let (s, o) = engine.execute_op(&spec, &Op::PRollUp { dim: d }).unwrap();
            spec = s;
            out = Some(o);
        }
        let via_ops = out.unwrap();
        // Direct computation at the coarse level on a fresh engine.
        let direct_engine = Engine::with_config(
            build_db(&case.seqs),
            EngineConfig { strategy: EngineStrategy::CounterBased, ..Default::default() },
        );
        case.level = 1;
        let spec = spec_for(&direct_engine.db(), &case);

        let direct = direct_engine.execute(&spec).unwrap();
        prop_assert_eq!(&via_ops.cuboid.cells, &direct.cuboid.cells);
    }

    /// The cuboid repository returns byte-identical results, and
    /// APPEND ∘ DE-TAIL round-trips to a cache hit.
    #[test]
    fn navigation_round_trip(mut case in case_strategy()) {
        case.agg = 0;
        let engine = Engine::new(build_db(&case.seqs));
        let spec = spec_for(&engine.db(), &case);
        let first = engine.execute(&spec).unwrap();
        let (spec2, _) = engine
            .execute_op(&spec, &Op::Append { symbol: "A".into(), attr: 2, level: case.level })
            .unwrap();
        let (spec3, back) = engine.execute_op(&spec2, &Op::DeTail).unwrap();
        prop_assert_eq!(spec3.fingerprint(), spec.fingerprint());
        prop_assert!(back.stats.cuboid_cache_hit);
        prop_assert_eq!(&first.cuboid.cells, &back.cuboid.cells);
    }
}
