//! Golden tests pinning the EXPLAIN and PROFILE text for the paper's
//! worked example queries (Figure 3 / Figure 8 / Figure 12).
//!
//! Run with `SOLAP_BLESS=1` to (re)generate the files under
//! `tests/golden/` after an intentional format change.

use s_olap::eventdb::metrics;
use s_olap::prelude::*;

/// The Figure 8 station database (actions alternate in/out).
fn fig8() -> EventDb {
    let seqs: [&[&str]; 4] = [
        &[
            "Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon",
        ],
        &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
        &["Clarendon", "Pentagon"],
        &["Wheaton", "Clarendon", "Deanwood", "Wheaton"],
    ];
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("location", ColumnType::Str)
        .dimension("action", ColumnType::Str)
        .build()
        .unwrap();
    for (sid, stations) in seqs.iter().enumerate() {
        for (i, st) in stations.iter().enumerate() {
            let action = if i % 2 == 0 { "in" } else { "out" };
            db.push_row(&[
                Value::Int(sid as i64),
                Value::Int(i as i64),
                Value::from(*st),
                Value::from(action),
            ])
            .unwrap();
        }
    }
    db.set_base_level_name(2, "station");
    db.attach_str_level(2, "district", |s| {
        if s == "Pentagon" || s == "Clarendon" {
            "D10".into()
        } else {
            "D20".into()
        }
    })
    .unwrap();
    db
}

/// A fully pinned configuration: nothing inherited from `SOLAP_*`
/// environment knobs, so the rendered plan text is stable everywhere.
fn pinned(strategy: Strategy) -> EngineConfig {
    EngineConfig {
        strategy,
        backend: SetBackend::List,
        counter_mode: s_olap::core::cb::CounterMode::Auto,
        use_cuboid_repo: true,
        threads: 1,
        timeout: None,
        budget_cells: None,
        cancel: CancelToken::new(),
        plan: true,
    }
}

/// EXPLAIN text as the statement surfaces print it: the engine's
/// structured report through the dispatch renderer. Deterministic on a
/// fresh engine — the cost model sits at its seed constants and the
/// sequence cache is empty.
fn explain_text(engine: &Engine, spec: &SCuboidSpec) -> String {
    s_olap::server::dispatch::render_plan_text(&engine.explain(spec).unwrap())
}

/// The paper's Q3: single-trip origin/destination distribution.
const Q3_TEXT: &str = r#"
    SELECT COUNT(*) FROM Event
    CLUSTER BY sid AT raw
    SEQUENCE BY pos ASCENDING
    CUBOID BY SUBSTRING (X, Y)
      WITH X AS location AT station, Y AS location AT station
      LEFT-MAXIMALITY (x1, y1)
      WITH x1.action = "in" AND y1.action = "out"
"#;

/// The Figure 13/14 round-trip template with an iceberg clause.
const XYYX_TEXT: &str = r#"
    SELECT COUNT(*) FROM Event
    CLUSTER BY sid AT raw
    SEQUENCE BY pos ASCENDING
    CUBOID BY SUBSTRING (X, Y, Y, X)
      WITH X AS location AT station, Y AS location AT station
      LEFT-MAXIMALITY (x1, y1, y2, x2)
    HAVING COUNT >= 2
"#;

fn check_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("SOLAP_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden `{name}` — run with SOLAP_BLESS=1 to create"));
    assert_eq!(
        expected, actual,
        "golden `{name}` mismatch — run with SOLAP_BLESS=1 to regenerate after an intentional change"
    );
}

#[test]
fn explain_q3_golden() {
    let engine = Engine::with_config(fig8(), pinned(Strategy::Auto));
    let stmt = parse_statement(&engine.db(), &format!("EXPLAIN {Q3_TEXT}")).unwrap();
    assert_eq!(stmt.mode, ExplainMode::Explain);
    check_golden("explain_q3.txt", &explain_text(&engine, &stmt.spec));
}

#[test]
fn explain_q3_cb_golden() {
    let engine = Engine::with_config(fig8(), pinned(Strategy::CounterBased));
    let spec = parse_query(&engine.db(), Q3_TEXT).unwrap();
    check_golden("explain_q3_cb.txt", &explain_text(&engine, &spec));
}

#[test]
fn explain_xyyx_golden() {
    let engine = Engine::with_config(fig8(), pinned(Strategy::Auto));
    let spec = parse_query(&engine.db(), XYYX_TEXT).unwrap();
    check_golden("explain_xyyx.txt", &explain_text(&engine, &spec));
}

#[test]
fn profile_q3_golden() {
    metrics::set_enabled(true);
    let engine = Engine::with_config(fig8(), pinned(Strategy::Auto));
    let stmt = parse_statement(&engine.db(), &format!("PROFILE {Q3_TEXT}")).unwrap();
    assert_eq!(stmt.mode, ExplainMode::Profile);
    let out = engine.execute(&stmt.spec).unwrap();
    // Timings are redacted; every counter is deterministic at one thread.
    check_golden("profile_q3.txt", &out.profile.render_text(true));
}

#[test]
fn profile_q3_cb_golden() {
    metrics::set_enabled(true);
    let engine = Engine::with_config(fig8(), pinned(Strategy::CounterBased));
    let spec = parse_query(&engine.db(), Q3_TEXT).unwrap();
    let out = engine.execute(&spec).unwrap();
    check_golden("profile_q3_cb.txt", &out.profile.render_text(true));
}

#[test]
fn profile_cache_replay_golden() {
    metrics::set_enabled(true);
    let engine = Engine::with_config(fig8(), pinned(Strategy::Auto));
    let spec = parse_query(&engine.db(), Q3_TEXT).unwrap();
    engine.execute(&spec).unwrap();
    let replay = engine.execute(&spec).unwrap();
    check_golden(
        "profile_cache_replay.txt",
        &replay.profile.render_text(true),
    );
}
