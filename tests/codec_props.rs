//! Codec property battery (DESIGN.md §12): every sid-set encoding
//! round-trips arbitrary sorted sets, the block-compressed serialized form
//! survives adversarial corruption with a typed error — never a panic,
//! never silently wrong sids — and the `SeekingIterator` contract holds on
//! all three seeker implementations.
//!
//! The corruption half reuses the persistence fuzz recipe (DESIGN.md §10):
//! every prefix truncation and every single-bit flip of a valid buffer is
//! fed back to the decoder under `catch_unwind`.

use std::panic::catch_unwind;

use proptest::prelude::*;

use s_olap::eventdb::Error;
use s_olap::index::{Bitmap, BlockFormat, CompressedSidSet, SeekingIterator, SidSet, BLOCK};

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

/// The edge-case corpus: the sets most likely to break block cutting,
/// gap encoding, or the bitpack span arithmetic.
fn edge_cases() -> Vec<Vec<u32>> {
    let mut cases: Vec<Vec<u32>> = vec![
        vec![],
        vec![0],
        vec![u32::MAX],
        vec![0, u32::MAX],
        (0..1_000).collect(),                  // dense run, many blocks
        (0..BLOCK as u32).collect(),           // exactly one full block
        (0..BLOCK as u32 + 1).collect(),       // one block + 1-sid tail
        (0..5_000).step_by(7).collect(),       // regular sparse
        (u32::MAX - 600..=u32::MAX).collect(), // dense at the top of Sid
    ];
    // Adversarial gaps: alternate 1-gaps with huge gaps so varint lengths
    // flip between 1 and 5 bytes inside one block.
    let mut adversarial = Vec::new();
    let mut s: u32 = 0;
    for i in 0..400u32 {
        adversarial.push(s);
        s = s.saturating_add(if i % 2 == 0 { 1 } else { 9_999_991 });
        if s == u32::MAX {
            break;
        }
    }
    cases.push(sorted(adversarial));
    cases
}

/// Every encoding round-trips every edge case, and the compressed form
/// also survives serialization.
#[test]
fn edge_cases_round_trip_every_codec() {
    for v in edge_cases() {
        let list = SidSet::from_sorted(v.clone());
        assert_eq!(list.to_vec(), v, "list round-trip");
        let bitmap = SidSet::Bitmap(v.iter().copied().collect::<Bitmap>());
        assert_eq!(bitmap.to_vec(), v, "bitmap round-trip");
        let comp = CompressedSidSet::from_sorted(v.clone());
        assert_eq!(comp.to_vec(), v, "compressed round-trip");
        assert_eq!(comp.len(), v.len());
        for &s in v.iter().take(300) {
            assert!(comp.contains(s));
        }
        let bytes = comp.to_bytes();
        let back = CompressedSidSet::from_bytes(&bytes).expect("valid buffer decodes");
        assert_eq!(back, comp, "serialized round-trip is exact");
        assert_eq!(back.to_vec(), v);
    }
}

/// The dense edge cases actually exercise the bitpack arm and the sparse
/// ones the varint arm — otherwise the corpus proves less than it claims.
#[test]
fn edge_corpus_covers_both_block_formats() {
    let dense = CompressedSidSet::from_sorted((0..1_000).collect());
    assert!(dense
        .block_formats()
        .iter()
        .all(|f| *f == BlockFormat::Bitpack));
    let sparse = CompressedSidSet::from_sorted((0..50_000).step_by(97).collect());
    assert!(sparse
        .block_formats()
        .iter()
        .all(|f| *f == BlockFormat::Varint));
}

proptest! {
    /// Arbitrary sorted sets round-trip through every encoding and the
    /// serialized compressed form; push-building equals bulk-building.
    #[test]
    fn round_trips_arbitrary_sets(
        raw in prop::collection::vec(0u32..2_000_000, 0..600),
    ) {
        let v = sorted(raw);
        prop_assert_eq!(SidSet::from_sorted(v.clone()).to_vec(), v.clone());
        prop_assert_eq!(
            SidSet::Bitmap(v.iter().copied().collect::<Bitmap>()).to_vec(),
            v.clone()
        );
        let bulk = CompressedSidSet::from_sorted(v.clone());
        prop_assert_eq!(bulk.to_vec(), v.clone());
        let mut pushed = CompressedSidSet::new();
        for &s in &v {
            pushed.push(s);
        }
        pushed.seal();
        let mut sealed_bulk = bulk.clone();
        sealed_bulk.seal();
        prop_assert_eq!(&pushed, &sealed_bulk);
        let back = CompressedSidSet::from_bytes(&pushed.to_bytes()).unwrap();
        prop_assert_eq!(back.to_vec(), v);
    }

    /// `next_seek` returns the first not-yet-consumed sid ≥ target on all
    /// three seekers, interleaved with plain `next_sid` calls.
    #[test]
    fn seek_contract_holds_on_every_seeker(
        raw in prop::collection::vec(0u32..3_000, 1..200),
        probes in prop::collection::vec((0u32..3_200, any::<bool>()), 1..40),
    ) {
        let v = sorted(raw);
        let list = SidSet::from_sorted(v.clone());
        let bitmap = SidSet::Bitmap(v.iter().copied().collect::<Bitmap>());
        let comp = SidSet::Compressed(CompressedSidSet::from_sorted(v.clone()));
        for set in [&list, &bitmap, &comp] {
            let mut seeker = set.seeker();
            // Model: the cursor is an index into v that only moves forward.
            let mut cursor = 0usize;
            for &(p, advance) in &probes {
                if advance {
                    let expect = v.get(cursor).copied();
                    prop_assert_eq!(seeker.next_sid(), expect);
                    cursor = (cursor + 1).min(v.len());
                } else {
                    let at = cursor + v[cursor..].partition_point(|&s| s < p);
                    prop_assert_eq!(seeker.next_seek(p), v.get(at).copied());
                    cursor = (at + 1).min(v.len());
                }
            }
        }
    }
}

/// Every prefix truncation of a serialized set fails typed — never panics,
/// never decodes.
#[test]
fn every_prefix_truncation_errors() {
    for v in [
        (0..700).step_by(3).collect::<Vec<u32>>(),
        (0..300).collect(),
        vec![5],
    ] {
        let buf = CompressedSidSet::from_sorted(v).to_bytes();
        for cut in 0..buf.len() {
            let res = catch_unwind(|| CompressedSidSet::from_bytes(&buf[..cut]));
            match res {
                Ok(Ok(_)) => panic!("truncation at {cut}/{} decoded", buf.len()),
                Ok(Err(Error::Corrupt { .. })) => {}
                Ok(Err(e)) => panic!("truncation at {cut} returned non-Corrupt {e:?}"),
                Err(_) => panic!("truncation at {cut}/{} panicked", buf.len()),
            }
        }
    }
}

/// Every single-bit flip anywhere in the buffer is caught by the checksum
/// (or an inner validity check) — typed error, never a panic, and never a
/// silently different set.
#[test]
fn every_single_bit_flip_errors() {
    let original: Vec<u32> = (0..900).step_by(2).collect();
    let buf = CompressedSidSet::from_sorted(original).to_bytes();
    for pos in 0..buf.len() {
        for bit in 0..8u8 {
            let mut bad = buf.clone();
            bad[pos] ^= 1 << bit;
            match catch_unwind(|| CompressedSidSet::from_bytes(&bad)) {
                Ok(Ok(_)) => panic!("flip bit {bit} of byte {pos} decoded successfully"),
                Ok(Err(Error::Corrupt { .. })) => {}
                Ok(Err(e)) => panic!("flip bit {bit} of byte {pos} returned {e:?}"),
                Err(_) => panic!("flip bit {bit} of byte {pos} panicked"),
            }
        }
    }
}

/// Random multi-byte garbage (seeded xorshift, fixed corpus) never panics
/// the decoder, whatever it decodes to.
#[test]
fn arbitrary_garbage_never_panics() {
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in [0usize, 1, 4, 16, 17, 32, 64, 256, 1024] {
        for _ in 0..50 {
            let garbage: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let res = catch_unwind(|| CompressedSidSet::from_bytes(&garbage));
            match res {
                Ok(Ok(set)) => {
                    // Astronomically unlikely, but if garbage checksums it
                    // must still be a well-formed set.
                    let v = set.to_vec();
                    assert!(v.windows(2).all(|w| w[0] < w[1]));
                }
                Ok(Err(_)) => {}
                Err(_) => panic!("garbage of len {len} panicked the decoder"),
            }
        }
    }
}
