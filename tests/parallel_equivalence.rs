//! Property tests for parallel cuboid construction: for randomized
//! databases, templates, predicates and **all five aggregate functions**,
//! running with `threads ∈ {2, 4, 8}` must produce cell-for-cell identical
//! cuboids — and identical scan accounting — to the sequential
//! counter-based and inverted-index paths.
//!
//! Float aggregates (SUM/AVG) are exactly reproducible here because the
//! parallel path merges partial states in deterministic chunk order and
//! the test measures are dyadic rationals (k + 0.5), so every fold order
//! yields the same bits; see DESIGN.md §"Parallel construction".

use proptest::prelude::*;

use s_olap::prelude::Strategy as EngineStrategy;
#[allow(unused_imports)]
use s_olap::prelude::{
    AggFunc, AttrLevel, CellRestriction, CmpOp, ColumnType, Engine, EngineConfig, EventDb,
    EventDbBuilder, MatchPred, PatternKind, PatternTemplate, SCuboidSpec, SetBackend, SortKey,
    SumMode, Value,
};

/// A random event database: sequences over an alphabet of ≤ 5 symbols,
/// each event tagged `a`/`b`, with a dyadic `weight` measure so SUM/AVG
/// comparisons are bit-exact regardless of association order.
fn build_db(seqs: &[Vec<(u8, bool)>]) -> EventDb {
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("symbol", ColumnType::Str)
        .dimension("tag", ColumnType::Str)
        .measure("weight", ColumnType::Float)
        .build()
        .unwrap();
    for (sid, seq) in seqs.iter().enumerate() {
        for (pos, &(sym, tag)) in seq.iter().enumerate() {
            db.push_row(&[
                Value::Int(sid as i64),
                Value::Int(pos as i64),
                Value::Str(format!("s{sym}")),
                Value::from(if tag { "a" } else { "b" }),
                Value::Float((sym as f64) + 0.5),
            ])
            .unwrap();
        }
    }
    db.set_base_level_name(2, "symbol");
    db.attach_str_level(2, "parity", |name| {
        let v: u32 = name[1..].parse().unwrap();
        format!("p{}", v % 2)
    })
    .unwrap();
    db
}

#[derive(Debug, Clone)]
struct Case {
    seqs: Vec<Vec<(u8, bool)>>,
    symbols: Vec<usize>,
    level: usize,
    kind: PatternKind,
    restriction: CellRestriction,
    pred_tag: Option<(usize, bool)>,
    /// 0..5 → COUNT, SUM, AVG, MIN, MAX.
    agg: u8,
    group_by_parity: bool,
    bitmap: bool,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    let seq = prop::collection::vec((0u8..5, any::<bool>()), 1..10);
    let seqs = prop::collection::vec(seq, 1..14);
    (
        seqs,
        prop::collection::vec(0usize..3, 1..4),
        0usize..2,
        prop_oneof![Just(PatternKind::Substring), Just(PatternKind::Subsequence)],
        prop_oneof![
            Just(CellRestriction::LeftMaximalityMatchedGo),
            Just(CellRestriction::LeftMaximalityDataGo),
            Just(CellRestriction::AllMatchedGo),
        ],
        prop::option::of((0usize..3, any::<bool>())),
        0u8..5,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(seqs, symbols, level, kind, restriction, pred_tag, agg, group_by_parity, bitmap)| {
                Case {
                    seqs,
                    symbols,
                    level,
                    kind,
                    restriction,
                    pred_tag,
                    agg,
                    group_by_parity,
                    bitmap,
                }
            },
        )
}

fn agg_for(code: u8) -> AggFunc {
    match code {
        0 => AggFunc::Count,
        1 => AggFunc::Sum(4, SumMode::AllEvents),
        2 => AggFunc::Avg(4, SumMode::AllEvents),
        3 => AggFunc::Min(4),
        _ => AggFunc::Max(4),
    }
}

fn spec_for(db: &EventDb, case: &Case) -> SCuboidSpec {
    let names = ["A", "B", "C"];
    let position_syms: Vec<&str> = case.symbols.iter().map(|&d| names[d]).collect();
    let mut bindings: Vec<(&str, u32, usize)> = Vec::new();
    for &s in &position_syms {
        if !bindings.iter().any(|(n, _, _)| *n == s) {
            bindings.push((s, 2, case.level));
        }
    }
    let template = PatternTemplate::new(case.kind, &position_syms, &bindings).unwrap();
    let m = template.m();
    let mpred = match case.pred_tag {
        Some((pos, want)) if pos < m => MatchPred::cmp(
            pos,
            db.attr("tag").unwrap(),
            CmpOp::Eq,
            if want { "a" } else { "b" },
        ),
        _ => MatchPred::True,
    };
    let group_by = if case.group_by_parity {
        vec![AttrLevel::new(2, 1)]
    } else {
        vec![]
    };
    SCuboidSpec::new(
        template,
        vec![AttrLevel::new(0, 0)],
        vec![SortKey {
            attr: 1,
            ascending: true,
        }],
    )
    .with_mpred(mpred)
    .with_restriction(case.restriction)
    .with_agg(agg_for(case.agg))
    .with_group_by(group_by)
}

fn engine(case: &Case, strategy: EngineStrategy, threads: usize) -> Engine {
    Engine::with_config(
        build_db(&case.seqs),
        EngineConfig {
            strategy,
            backend: if case.bitmap {
                SetBackend::Bitmap
            } else {
                SetBackend::List
            },
            threads,
            ..Default::default()
        },
    )
}

/// Executes the spec and returns `(sorted cells, sequences scanned)`. Cell
/// values are compared through their full `Display` rendering, so any
/// float drift — not just large errors — fails the test.
fn run(engine: &Engine, spec: &SCuboidSpec) -> (Vec<(s_olap::core::CellKey, String)>, u64) {
    let out = engine.execute(spec).unwrap();
    let cells = out
        .cuboid
        .iter_sorted()
        .into_iter()
        .map(|(k, v)| (k.clone(), format!("{v}")))
        .collect();
    (cells, out.stats.sequences_scanned)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: parallel CB and parallel II at 2/4/8 worker
    /// threads reproduce the sequential paths cell-for-cell, for every
    /// aggregate, and charge the same number of scanned sequences.
    #[test]
    fn parallel_matches_sequential_for_all_aggregates(case in case_strategy()) {
        let spec = {
            let db = build_db(&case.seqs);
            spec_for(&db, &case)
        };
        let (cb_cells, cb_scans) = run(&engine(&case, EngineStrategy::CounterBased, 1), &spec);
        let (ii_cells, ii_scans) = run(&engine(&case, EngineStrategy::InvertedIndex, 1), &spec);
        prop_assert_eq!(&cb_cells, &ii_cells, "sequential CB vs sequential II disagree");
        for threads in [2usize, 4, 8] {
            let (p_cb, p_cb_scans) = run(&engine(&case, EngineStrategy::CounterBased, threads), &spec);
            prop_assert_eq!(&p_cb, &cb_cells, "CB threads={} vs sequential CB", threads);
            prop_assert_eq!(p_cb_scans, cb_scans, "CB threads={} scan accounting", threads);
            let (p_ii, p_ii_scans) = run(&engine(&case, EngineStrategy::InvertedIndex, threads), &spec);
            prop_assert_eq!(&p_ii, &ii_cells, "II threads={} vs sequential II", threads);
            prop_assert_eq!(p_ii_scans, ii_scans, "II threads={} scan accounting", threads);
        }
    }
}

/// Runs one fixed case across both strategies and all thread counts,
/// asserting everything agrees with the sequential CB baseline.
fn assert_all_paths_agree(case: &Case) {
    let spec = {
        let db = build_db(&case.seqs);
        spec_for(&db, case)
    };
    let (baseline, base_scans) = run(&engine(case, EngineStrategy::CounterBased, 1), &spec);
    for strategy in [EngineStrategy::CounterBased, EngineStrategy::InvertedIndex] {
        for threads in [1usize, 2, 4, 8] {
            let (cells, _) = run(&engine(case, strategy, threads), &spec);
            assert_eq!(
                cells, baseline,
                "{strategy:?} threads={threads} diverged from sequential CB"
            );
        }
    }
    // CB charges every sequence in the selected groups regardless of threads.
    let (_, par_scans) = run(&engine(case, EngineStrategy::CounterBased, 8), &spec);
    assert_eq!(par_scans, base_scans);
}

fn edge_case(seqs: Vec<Vec<(u8, bool)>>, agg: u8) -> Case {
    Case {
        seqs,
        symbols: vec![0, 1],
        level: 0,
        kind: PatternKind::Substring,
        restriction: CellRestriction::LeftMaximalityMatchedGo,
        pred_tag: None,
        agg,
        group_by_parity: true,
        bitmap: false,
    }
}

/// Empty-group edge: every event is tagged `b` but the predicate demands
/// `a`, so each clustered group scans its sequences and produces zero
/// cells. Parallel workers must agree on the empty cuboid (and still
/// charge the scans).
#[test]
fn empty_result_groups_agree_across_threads() {
    for agg in 0..5u8 {
        let mut case = edge_case(vec![vec![(0, false), (1, false)], vec![(1, false)]], agg);
        case.pred_tag = Some((0, true));
        let spec = {
            let db = build_db(&case.seqs);
            spec_for(&db, &case)
        };
        let (cells, _) = run(&engine(&case, EngineStrategy::CounterBased, 8), &spec);
        assert!(cells.is_empty(), "agg {agg}: expected an empty cuboid");
        assert_all_paths_agree(&case);
    }
}

/// Single-sequence edge: more worker threads than sequences — the chunking
/// must degenerate gracefully to one worker, not panic or drop work.
#[test]
fn single_sequence_with_more_threads_than_work() {
    for agg in 0..5u8 {
        let case = edge_case(vec![vec![(0, true), (1, false), (0, true), (1, true)]], agg);
        assert_all_paths_agree(&case);
    }
}

/// Singleton groups edge: grouping by parity with one sequence per group
/// exercises the per-group chunk split at its minimum.
#[test]
fn singleton_groups_agree_across_threads() {
    for agg in 0..5u8 {
        let case = edge_case(vec![vec![(0, true), (0, false)], vec![(1, true)]], agg);
        assert_all_paths_agree(&case);
    }
}
