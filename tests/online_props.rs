//! Property tests for online aggregation (§6 "Performance"): for random
//! datasets and chunk sizes, progress snapshots are strictly monotone and
//! end at 1.0, and the final online cuboid is **identical** to the batch
//! counter-based result — the estimator may wobble mid-flight, but it must
//! land exactly.

use proptest::prelude::*;

use s_olap::core::online::{mean_relative_error, online_count};
use s_olap::core::SCuboidSpec;
use s_olap::eventdb::{
    build_sequence_groups, AttrLevel, ColumnType, EventDb, EventDbBuilder, SortKey, Value,
};
use s_olap::pattern::{PatternKind, PatternTemplate};

fn build_db(seqs: &[Vec<u8>]) -> EventDb {
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("symbol", ColumnType::Str)
        .build()
        .unwrap();
    for (sid, seq) in seqs.iter().enumerate() {
        for (pos, &sym) in seq.iter().enumerate() {
            db.push_row(&[
                Value::Int(sid as i64),
                Value::Int(pos as i64),
                Value::Str(format!("s{sym}")),
            ])
            .unwrap();
        }
    }
    db
}

fn count_spec(kind: PatternKind) -> SCuboidSpec {
    let t = PatternTemplate::new(kind, &["X", "Y"], &[("X", 2, 0), ("Y", 2, 0)]).unwrap();
    SCuboidSpec::new(
        t,
        vec![AttrLevel::new(0, 0)],
        vec![SortKey {
            attr: 1,
            ascending: true,
        }],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn online_final_matches_batch_cb_and_progress_is_monotone(
        seqs in prop::collection::vec(prop::collection::vec(0u8..4, 1..8), 1..16),
        chunk in 1usize..12,
        subsequence in any::<bool>(),
    ) {
        let db = build_db(&seqs);
        let kind = if subsequence { PatternKind::Subsequence } else { PatternKind::Substring };
        let spec = count_spec(kind);
        let groups = build_sequence_groups(&db, &spec.seq).unwrap();

        let mut progresses = Vec::new();
        let online = online_count(&db, &groups, &spec, chunk, |snap| {
            progresses.push(snap.progress);
        }).unwrap();

        // Snapshots march strictly forward and always finish at 1.0.
        prop_assert!(!progresses.is_empty());
        prop_assert!(progresses.iter().all(|p| *p > 0.0 && *p <= 1.0));
        prop_assert!(progresses.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(*progresses.last().unwrap(), 1.0);

        // The final cuboid is the exact batch CB answer, cell for cell.
        let mut meter = s_olap::core::stats::ScanMeter::new();
        let exact = s_olap::core::cb::counter_based(
            &db, &groups, &spec, s_olap::core::cb::CounterMode::Auto, &mut meter,
        ).unwrap();
        prop_assert_eq!(&online.cells, &exact.cells);
        prop_assert_eq!(mean_relative_error(&online, &exact), 0.0);
    }
}
