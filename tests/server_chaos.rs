//! Chaos suite for the serving layer.
//!
//! The properties under test mirror `tests/chaos.rs`, lifted to the wire:
//!
//! * a client that disconnects mid-query observably cancels it (governor
//!   counters move) and its execution slot is reclaimed;
//! * admission control rejects over-capacity requests with the typed
//!   `over_capacity` code while `.server` observability keeps working;
//! * sixteen concurrent wire clients get answers bit-identical to a
//!   serial replay, at engine worker counts 1 and 8;
//! * a request panicking through the `server.request` failpoint kills
//!   only its own connection — concurrent sessions stay healthy.
//!
//! The readiness-driven rework (PR 8) extends the matrix under request
//! pipelining: a mid-batch disconnect cancels only that connection's
//! in-flight work, a panic inside a pipelined batch poisons neither the
//! event loop nor sibling connections, a queued pipelined batch is
//! rejected statement-by-statement with `over_capacity`, and graceful
//! drain completes queued pipelined statements before closing.
//!
//! Failpoint state is process-global, so every test serializes on one
//! lock, exactly like `tests/chaos.rs`.

use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use s_olap::eventdb::failpoint::{self, Action};
use s_olap::eventdb::metrics;
use s_olap::prelude::*;
use s_olap::server::{Client, Server, ServerConfig, ServerHandle};

static FP_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    FP_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with the default panic hook silenced, so intentionally
/// injected panics do not spray backtraces over the test output.
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// The paper's Q3 over the transit substitute — the same statement the
/// `serve` bench replays.
const QUERY: &str = r#"SELECT COUNT(*) FROM Event CLUSTER BY card-id AT individual, time AT day SEQUENCE BY time ASCENDING CUBOID BY SUBSTRING (X, Y) WITH X AS location AT station, Y AS location AT station LEFT-MAXIMALITY (x1, y1) WITH x1.action = "in" AND y1.action = "out""#;

fn transit_engine(threads: usize) -> Arc<Engine> {
    let db = s_olap::datagen::generate_transit(&s_olap::datagen::TransitConfig {
        passengers: 80,
        days: 3,
        ..Default::default()
    })
    .expect("generator");
    Arc::new(
        Engine::builder(db)
            .threads(threads)
            // Each request must re-aggregate, otherwise the repo would
            // answer every client from the first client's cuboid and the
            // bit-identical comparison would be vacuous.
            .use_cuboid_repo(false)
            .build(),
    )
}

fn spawn_server(
    engine: Arc<Engine>,
    config: ServerConfig,
) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    Server::spawn(engine, config).expect("server spawn")
}

/// Polls `cond` until it holds or `timeout` elapses.
fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// A client that vanishes mid-query trips the session's cancel token:
/// the governor counts a failure, the server counts the disconnect, no
/// response is written, and — with a single execution slot — the slot is
/// reclaimed for the next client.
#[test]
fn disconnect_mid_query_cancels_and_reclaims_the_slot() {
    let _g = locked();
    failpoint::clear_all();

    let engine = transit_engine(1);
    let (handle, join) = spawn_server(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_inflight: 1,
            ..Default::default()
        },
    );
    let addr = handle.local_addr();

    // Hold every request for 300 ms before it reaches the engine, so the
    // disconnect below lands while the query is in flight.
    failpoint::configure("server.request", Action::Delay(300));
    let failures_before = metrics::global().failures();

    let mut doomed = Client::connect(addr).expect("connect");
    doomed.send_only(QUERY).expect("send");
    drop(doomed); // hang up without reading the response

    assert!(
        wait_for(Duration::from_secs(10), || {
            handle.stats().cancelled_disconnect == 1
        }),
        "server never counted the mid-query disconnect: {:?}",
        handle.stats()
    );
    assert!(
        metrics::global().failures() > failures_before,
        "the cancelled query must be recorded as a governor failure"
    );

    // The permit died with the query; a fresh client must get the single
    // slot back and complete the same query normally.
    failpoint::clear_all();
    let mut survivor = Client::connect(addr).expect("connect");
    let r = survivor.request(QUERY).expect("request");
    assert!(r.ok, "slot not reclaimed after disconnect: {:?}", r.body);
    assert!(r.body.contains("cells via"));

    handle.shutdown();
    join.join().expect("accept loop").expect("serve");
}

/// With one execution slot held busy, a queued request is rejected with
/// the typed `over_capacity` code once the queue timeout expires — while
/// `.server` observability (served outside the admission gate) still
/// answers. When the slot frees up, the rejected client succeeds.
#[test]
fn saturated_slots_reject_with_over_capacity() {
    let _g = locked();
    failpoint::clear_all();

    let engine = transit_engine(1);
    let (handle, join) = spawn_server(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_inflight: 1,
            queue_timeout: Duration::from_millis(100),
            ..Default::default()
        },
    );
    let addr = handle.local_addr();

    // `holder` occupies the only slot for 800 ms.
    failpoint::configure("server.request", Action::Delay(800));
    let mut holder = Client::connect(addr).expect("connect");
    holder.send_only(".history").expect("send");
    std::thread::sleep(Duration::from_millis(200));

    let mut rejected = Client::connect(addr).expect("connect");
    let r = rejected.request(".history").expect("request");
    assert!(!r.ok, "request should be rejected while the slot is held");
    assert_eq!(r.code.as_deref(), Some("over_capacity"), "{:?}", r.body);
    assert!(handle.stats().rejected_queue >= 1);

    // Observability bypasses the gate: `.server` answers even now.
    let s = rejected.request(".server").expect("request");
    assert!(s.ok, ".server must work while slots are saturated");
    assert!(s.body.contains("queued requests"), "{:?}", s.body);

    // Once the holder's request completes, the slot frees and the
    // previously rejected client goes through.
    failpoint::clear_all();
    let ok = wait_for(
        Duration::from_secs(5),
        || matches!(rejected.request(".history"), Ok(r) if r.ok),
    );
    assert!(ok, "slot never freed after the holder finished");

    drop(holder);
    handle.shutdown();
    join.join().expect("accept loop").expect("serve");
}

/// Sixteen concurrent wire clients, each running the same
/// query → `.show` → `.spec` script against one shared engine, must all
/// see output bit-identical to a serial replay — at engine worker
/// counts 1 and 8. (The query's own summary line carries elapsed
/// timings, so the comparison uses the timing-free `.show`/`.spec`
/// renderings of the same cuboid.)
#[test]
fn sixteen_concurrent_clients_match_a_serial_replay() {
    let _g = locked();
    failpoint::clear_all();

    for threads in [1usize, 8] {
        let engine = transit_engine(threads);
        let (handle, join) = spawn_server(
            engine,
            ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                max_conn: 32,
                ..Default::default()
            },
        );
        let addr = handle.local_addr();

        let script = |client: &mut Client| -> (String, String) {
            let q = client.request(QUERY).expect("query");
            assert!(q.ok, "{:?}", q.body);
            let show = client.request(".show 40").expect(".show");
            assert!(show.ok, "{:?}", show.body);
            let spec = client.request(".spec").expect(".spec");
            assert!(spec.ok, "{:?}", spec.body);
            (show.body, spec.body)
        };

        // Serial replay first: the reference answer.
        let mut serial = Client::connect(addr).expect("connect");
        let reference = script(&mut serial);
        assert!(reference.0.contains('|'), "tabulated cuboid expected");

        // Then 16 clients at once, released together.
        let clients = 16;
        let barrier = Arc::new(Barrier::new(clients));
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    barrier.wait();
                    script(&mut client)
                })
            })
            .collect();
        for (i, w) in workers.into_iter().enumerate() {
            let got = w.join().expect("client thread");
            assert_eq!(
                got, reference,
                "client {i} diverged from the serial replay at threads={threads}"
            );
        }

        handle.shutdown();
        join.join().expect("accept loop").expect("serve");
    }
}

/// A request that panics through the `server.request` failpoint kills
/// its own connection (the client sees EOF, the server counts the
/// panic) and nothing else: a concurrent pre-existing session and a
/// brand-new one both keep working against the same server.
#[test]
fn request_panic_is_isolated_to_its_connection() {
    let _g = locked();
    failpoint::clear_all();

    let engine = transit_engine(1);
    let (handle, join) = spawn_server(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..Default::default()
        },
    );
    let addr = handle.local_addr();

    let mut bystander = Client::connect(addr).expect("connect");
    assert!(bystander.request(".history").expect("request").ok);

    quietly(|| {
        failpoint::configure("server.request", Action::Panic);
        let mut victim = Client::connect(addr).expect("connect");
        victim
            .set_response_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let err = victim.request(".history");
        assert!(
            err.is_err(),
            "the panicking connection must close without a response"
        );
        failpoint::clear_all();
    });

    assert!(
        wait_for(Duration::from_secs(5), || handle.stats().conn_panics == 1),
        "panic not counted: {:?}",
        handle.stats()
    );

    // The bystander's session survived its neighbour's panic...
    let r = bystander.request(QUERY).expect("request");
    assert!(
        r.ok,
        "bystander broken by a neighbour's panic: {:?}",
        r.body
    );
    // ...and the server still accepts new sessions.
    let mut fresh = Client::connect(addr).expect("connect");
    assert!(fresh.request(".history").expect("request").ok);

    handle.shutdown();
    join.join().expect("accept loop").expect("serve");
}

/// A client that pipelines a batch of queries and vanishes cancels only
/// its own in-flight work: the governor records a failure per cancelled
/// statement, the disconnect is counted once, and a sibling connection
/// sharing the worker pool completes its own query untouched.
#[test]
fn pipelined_disconnect_cancels_only_its_own_connection() {
    let _g = locked();
    failpoint::clear_all();

    let engine = transit_engine(1);
    let (handle, join) = spawn_server(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_inflight: 2,
            ..Default::default()
        },
    );
    let addr = handle.local_addr();

    // Hold every statement briefly so the disconnect lands while the
    // doomed batch is still in flight.
    failpoint::configure("server.request", Action::Delay(200));
    let failures_before = metrics::global().failures();

    let mut doomed = Client::connect(addr).expect("connect");
    doomed
        .send_batch(&[QUERY, QUERY, QUERY])
        .expect("pipelined send");
    drop(doomed); // hang up with three statements in flight

    // The sibling shares the pool but not the fate: its (delayed) query
    // completes normally while the doomed batch is being cancelled.
    let mut sibling = Client::connect(addr).expect("connect");
    let r = sibling.request(QUERY).expect("sibling request");
    assert!(
        r.ok,
        "sibling caught a neighbour's cancellation: {:?}",
        r.body
    );
    assert!(r.body.contains("cells via"));

    assert!(
        wait_for(Duration::from_secs(10), || {
            handle.stats().cancelled_disconnect == 1
        }),
        "pipelined disconnect never counted: {:?}",
        handle.stats()
    );
    // Every statement of the doomed batch aborted through the governor.
    assert!(
        metrics::global().failures() >= failures_before + 3,
        "expected 3 cancelled-statement failures, got {} -> {}",
        failures_before,
        metrics::global().failures()
    );

    failpoint::clear_all();
    handle.shutdown();
    join.join().expect("event loop").expect("serve");
}

/// A panic inside a pipelined batch kills that connection only: the
/// worker and event loop survive, a concurrent session keeps answering
/// (including further pipelined batches), and new sessions connect.
#[test]
fn pipelined_panic_poisons_neither_loop_nor_siblings() {
    let _g = locked();
    failpoint::clear_all();

    let engine = transit_engine(1);
    let (handle, join) = spawn_server(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..Default::default()
        },
    );
    let addr = handle.local_addr();

    let mut bystander = Client::connect(addr).expect("connect");
    assert!(bystander.request(".history").expect("request").ok);

    quietly(|| {
        failpoint::configure("server.request", Action::Panic);
        let mut victim = Client::connect(addr).expect("connect");
        victim
            .set_response_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let err = victim.pipeline(&[".history", ".history", ".history"]);
        assert!(
            err.is_err(),
            "the panicking batch must close its connection unanswered"
        );
        failpoint::clear_all();
    });

    assert!(
        wait_for(Duration::from_secs(5), || handle.stats().conn_panics == 1),
        "panic not counted: {:?}",
        handle.stats()
    );

    // The bystander still pipelines successfully, responses in order.
    let rs = bystander
        .pipeline(&[".history", QUERY])
        .expect("bystander pipeline");
    assert!(rs[0].ok, "{:?}", rs[0].body);
    assert!(
        rs[1].ok && rs[1].body.contains("cells via"),
        "{:?}",
        rs[1].body
    );

    let mut fresh = Client::connect(addr).expect("connect");
    assert!(fresh.request(".history").expect("request").ok);

    handle.shutdown();
    join.join().expect("event loop").expect("serve");
}

/// A pipelined batch that out-waits the queue timeout behind a saturated
/// pool is rejected with one typed `over_capacity` response per
/// statement, in order — and the session survives the rejection: once
/// the pool frees up, the same connection completes requests normally.
#[test]
fn over_capacity_rejects_every_statement_of_a_queued_pipeline() {
    let _g = locked();
    failpoint::clear_all();

    let engine = transit_engine(1);
    let (handle, join) = spawn_server(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_inflight: 1,
            queue_timeout: Duration::from_millis(100),
            ..Default::default()
        },
    );
    let addr = handle.local_addr();

    // `holder` occupies the only worker for 800 ms.
    failpoint::configure("server.request", Action::Delay(800));
    let mut holder = Client::connect(addr).expect("connect");
    holder.send_only(".history").expect("send");
    std::thread::sleep(Duration::from_millis(200));

    let mut rejected = Client::connect(addr).expect("connect");
    let rs = rejected
        .pipeline(&[".history", ".history", ".history"])
        .expect("pipelined batch");
    assert_eq!(rs.len(), 3);
    for (i, r) in rs.iter().enumerate() {
        assert!(!r.ok, "statement {i} should be rejected: {:?}", r.body);
        assert_eq!(r.code.as_deref(), Some("over_capacity"), "statement {i}");
    }
    assert!(handle.stats().rejected_queue >= 3, "{:?}", handle.stats());

    // Observability bypasses the pool even now.
    let s = rejected.request(".server").expect("request");
    assert!(s.ok && s.body.contains("queued requests"), "{:?}", s.body);

    // The rejection did not poison the session: with the pool free the
    // same connection goes through.
    failpoint::clear_all();
    let ok = wait_for(
        Duration::from_secs(5),
        || matches!(rejected.request(".history"), Ok(r) if r.ok),
    );
    assert!(ok, "session unusable after an over_capacity rejection");

    drop(holder);
    handle.shutdown();
    join.join().expect("event loop").expect("serve");
}

/// Graceful drain with a pipelined batch in flight: every statement
/// already accepted completes and flushes before the connection closes,
/// idle connections are closed, and `serve()` returns.
#[test]
fn graceful_drain_completes_a_queued_pipelined_batch() {
    let _g = locked();
    failpoint::clear_all();

    let engine = transit_engine(1);
    let (handle, join) = spawn_server(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_inflight: 1,
            ..Default::default()
        },
    );
    let addr = handle.local_addr();

    // Slow each statement down so shutdown lands mid-batch.
    failpoint::configure("server.request", Action::Delay(300));

    let mut busy = Client::connect(addr).expect("connect");
    busy.set_response_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut idle = Client::connect(addr).expect("connect");

    busy.send_batch(&[".history", ".history", ".history"])
        .expect("pipelined send");
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();

    // All three accepted statements still complete, in order…
    for i in 0..3 {
        let r = busy.recv_response().expect("drained response");
        assert!(r.ok, "statement {i} lost in drain: {:?}", r.body);
    }
    // …then the drained connection closes.
    assert!(
        busy.recv_response().is_err(),
        "connection must close after drain"
    );

    // The idle connection was closed by the drain without an answer.
    idle.set_response_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    assert!(idle.request(".history").is_err());

    failpoint::clear_all();
    join.join().expect("event loop").expect("serve");
}
