//! Integration tests encoding the paper's worked examples literally:
//! the Figure 8 sequence group, the Figure 12 cuboid, the Figure 14 join
//! result, the §3.4 non-summarizability counter-example (s3), and the
//! §4.2.2 P-ROLL-UP counter-example (s6).

use s_olap::prelude::*;

/// Builds an event database holding the given station sequences, with
/// actions alternating in/out (Figure 8's footnote) and the paper's
/// D10 = {Pentagon, Clarendon} district example.
fn station_db(seqs: &[&[&str]]) -> EventDb {
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("location", ColumnType::Str)
        .dimension("action", ColumnType::Str)
        .build()
        .unwrap();
    for (sid, stations) in seqs.iter().enumerate() {
        for (i, st) in stations.iter().enumerate() {
            let action = if i % 2 == 0 { "in" } else { "out" };
            db.push_row(&[
                Value::Int(sid as i64),
                Value::Int(i as i64),
                Value::from(*st),
                Value::from(action),
            ])
            .unwrap();
        }
    }
    db.set_base_level_name(2, "station");
    db.attach_str_level(2, "district", |s| {
        if s == "Pentagon" || s == "Clarendon" {
            "D10".into()
        } else {
            "D20".into()
        }
    })
    .unwrap();
    db
}

/// Figure 8's four sequences.
fn fig8() -> EventDb {
    station_db(&[
        &[
            "Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon",
        ],
        &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
        &["Clarendon", "Pentagon"],
        &["Wheaton", "Clarendon", "Deanwood", "Wheaton"],
    ])
}

fn parse(db: &EventDb, q: &str) -> SCuboidSpec {
    s_olap::query::parse_query(db, q).expect("query parses")
}

const Q3_TEXT: &str = r#"
    SELECT COUNT(*) FROM Event
    CLUSTER BY sid AT raw
    SEQUENCE BY pos ASCENDING
    CUBOID BY SUBSTRING (X, Y)
      WITH X AS location AT station, Y AS location AT station
      LEFT-MAXIMALITY (x1, y1)
      WITH x1.action = "in" AND y1.action = "out"
"#;

fn count_of(db: &EventDb, c: &SCuboid, names: &[&str]) -> u64 {
    let pattern: Vec<u64> = names
        .iter()
        .map(|n| db.parse_level_value(2, 0, n).unwrap())
        .collect();
    c.get(&[], &pattern).and_then(|v| v.as_count()).unwrap_or(0)
}

/// Figure 12: the 2D S-cuboid of Q3 over the Figure 8 group — exact.
#[test]
fn figure_12_cuboid() {
    for strategy in [Strategy::CounterBased, Strategy::InvertedIndex] {
        let engine = Engine::with_config(
            fig8(),
            EngineConfig {
                strategy,
                ..Default::default()
            },
        );
        let spec = parse(&engine.db(), Q3_TEXT);
        let out = engine.execute(&spec).unwrap();
        let db = engine.db();
        assert_eq!(out.cuboid.len(), 6, "{strategy:?}");
        for (names, expected) in [
            (["Clarendon", "Pentagon"], 1),
            (["Deanwood", "Wheaton"], 1),
            (["Glenmont", "Pentagon"], 1),
            (["Pentagon", "Wheaton"], 2),
            (["Wheaton", "Clarendon"], 1),
            (["Wheaton", "Pentagon"], 2),
        ] {
            assert_eq!(count_of(&db, &out.cuboid, &names), expected, "{names:?}");
        }
    }
}

/// Figure 13/14: joining up to (X, Y, Y, X) leaves exactly one cell —
/// [Pentagon, Wheaton, Wheaton, Pentagon] — and, *without* the in/out
/// predicate, both s1 and s2 contain the round trip while with Figure 14's
/// predicate-free containment count the cell is {s1, s2}.
#[test]
fn figure_14_xyyx() {
    let engine = Engine::new(fig8());
    let q = r#"
        SELECT COUNT(*) FROM Event
        CLUSTER BY sid AT raw
        SEQUENCE BY pos ASCENDING
        CUBOID BY SUBSTRING (X, Y, Y, X)
          WITH X AS location AT station, Y AS location AT station
          LEFT-MAXIMALITY (x1, y1, y2, x2)
    "#;
    let spec = parse(&engine.db(), q);
    let out = engine.execute(&spec).unwrap();
    assert_eq!(out.cuboid.len(), 1, "only one non-empty list (Figure 14)");
    assert_eq!(
        // Cell keys carry one value per pattern *dimension*: (X, Y).
        count_of(&engine.db(), &out.cuboid, &["Pentagon", "Wheaton"]),
        2,
        "s1 and s2 both contain the round trip"
    );
}

/// §3.4: S-cuboids are non-summarizable. The single sequence s3 =
/// ⟨Pentagon, Wheaton, Pentagon, Wheaton, Glenmont⟩ yields three (X, Y, Z)
/// cells of count 1; DE-TAIL to (X, Y) must give [Pentagon, Wheaton] a
/// count of 1 under left-maximality, but aggregating the finer cells would
/// give c1 + c3 = 2.
#[test]
fn non_summarizability_s3() {
    let db = station_db(&[&["Pentagon", "Wheaton", "Pentagon", "Wheaton", "Glenmont"]]);
    let engine = Engine::new(db);
    let q_xyz = r#"
        SELECT COUNT(*) FROM Event
        CLUSTER BY sid AT raw
        SEQUENCE BY pos ASCENDING
        CUBOID BY SUBSTRING (X, Y, Z)
          WITH X AS location AT station, Y AS location AT station, Z AS location AT station
          LEFT-MAXIMALITY (x1, y1, z1)
    "#;
    let spec_xyz = parse(&engine.db(), q_xyz);
    let fine = engine.execute(&spec_xyz).unwrap();
    // DE-TAIL via the engine's operation path (before taking the long
    // read guard below — queries re-acquire the db lock themselves).
    let (coarse_spec, coarse) = engine.execute_op(&spec_xyz, &Op::DeTail).unwrap();
    assert_eq!(coarse_spec.template.render_head(), "SUBSTRING (X, Y)");
    let db = engine.db();
    let c1 = count_of(&db, &fine.cuboid, &["Pentagon", "Wheaton", "Pentagon"]);
    let c2 = count_of(&db, &fine.cuboid, &["Wheaton", "Pentagon", "Wheaton"]);
    let c3 = count_of(&db, &fine.cuboid, &["Pentagon", "Wheaton", "Glenmont"]);
    assert_eq!((c1, c2, c3), (1, 1, 1), "s3 contributes to all three cells");
    let c4 = count_of(&db, &coarse.cuboid, &["Pentagon", "Wheaton"]);
    assert_eq!(c4, 1, "left-maximality assigns s3 once");
    assert_ne!(c4, c1 + c3, "summing finer aggregates would be wrong");
}

/// §4.2.2 item 4 (s6): with a repeated-symbol template, P-ROLL-UP cannot be
/// answered by merging lists — s6 = ⟨Pentagon, Wheaton, Wheaton, Clarendon⟩
/// matches (X, Y, Y, X) at the district level (D10 = {Pentagon, Clarendon})
/// but at no station-level instantiation. The engine must still count it.
#[test]
fn p_roll_up_s6_counter_example() {
    let db = station_db(&[&["Pentagon", "Wheaton", "Wheaton", "Clarendon"]]);
    let engine = Engine::new(db);
    let q = r#"
        SELECT COUNT(*) FROM Event
        CLUSTER BY sid AT raw
        SEQUENCE BY pos ASCENDING
        CUBOID BY SUBSTRING (X, Y, Y, X)
          WITH X AS location AT station, Y AS location AT station
          LEFT-MAXIMALITY (x1, y1, y2, x2)
    "#;
    let spec = parse(&engine.db(), q);
    let fine = engine.execute(&spec).unwrap();
    assert_eq!(fine.cuboid.len(), 0, "no station-level round trip");
    // Roll both pattern dimensions up to districts.
    let (spec, _) = engine
        .execute_op(&spec, &Op::PRollUp { dim: "X".into() })
        .unwrap();
    let (_, coarse) = engine
        .execute_op(&spec, &Op::PRollUp { dim: "Y".into() })
        .unwrap();
    let db = engine.db();
    let d10 = db.parse_level_value(2, 1, "D10").unwrap();
    let d20 = db.parse_level_value(2, 1, "D20").unwrap();
    assert_eq!(
        coarse
            .cuboid
            .get(&[], &[d10, d20])
            .and_then(|v| v.as_count()),
        Some(1),
        "s6 must appear in [D10, Wheaton's district, …, D10]"
    );
}

/// Q1 end-to-end on a Figure-1-shaped database: WHERE window, day
/// clustering, fare-group grouping, global slice + drill-down on card-id.
#[test]
fn q1_full_pipeline_on_transit_data() {
    let db = s_olap::datagen::generate_transit(&s_olap::datagen::TransitConfig {
        passengers: 120,
        days: 4,
        round_trip_rate: 0.6,
        ..Default::default()
    })
    .unwrap();
    let engine = Engine::new(db);
    let q1 = parse(
        &engine.db(),
        r#"
        SELECT COUNT(*) FROM Event
        WHERE time >= "2007-10-01T00:00" AND time < "2007-12-31T24:00"
        CLUSTER BY card-id AT individual, time AT day
        SEQUENCE BY time ASCENDING
        SEQUENCE GROUP BY card-id AT fare-group, time AT day
        CUBOID BY SUBSTRING (X, Y, Y, X)
          WITH X AS location AT station, Y AS location AT station
          LEFT-MAXIMALITY (x1, y1, y2, x2)
          WITH x1.action = "in" AND y1.action = "out"
           AND y2.action = "in" AND x2.action = "out"
        "#,
    );
    let out = engine.execute(&q1).unwrap();
    assert!(!out.cuboid.is_empty(), "round trips exist at rate 0.6");
    // Every key has 2 global values (fare-group, day) + 2 pattern values.
    for (k, v) in out.cuboid.iter_sorted() {
        assert_eq!(k.global.len(), 2);
        assert_eq!(k.pattern.len(), 2);
        assert!(v.as_count().unwrap() >= 1);
    }
    // Drill card-id from fare-group down to individual (§3.3's example of
    // classical drill-down on a global dimension).
    let card = engine.db().attr("card-id").unwrap();
    let (spec2, finer) = engine
        .execute_op(&q1, &Op::DrillDown { attr: card })
        .unwrap();
    assert_eq!(spec2.seq.group_by[0].level, 0);
    // Finer grouping can only split counts: total count is preserved.
    assert_eq!(out.cuboid.total_count(), finer.cuboid.total_count());

    // CB agrees end-to-end.
    let cb = Engine::with_config(
        s_olap::datagen::generate_transit(&s_olap::datagen::TransitConfig {
            passengers: 120,
            days: 4,
            round_trip_rate: 0.6,
            ..Default::default()
        })
        .unwrap(),
        EngineConfig {
            strategy: Strategy::CounterBased,
            ..Default::default()
        },
    );
    let q1_text = q1.render(&engine.db());
    let cb_spec = parse(&cb.db(), &q1_text);
    let cb_out = cb.execute(&cb_spec).unwrap();
    assert_eq!(cb_out.cuboid.cells, out.cuboid.cells);
}

/// The SUM extension of §3.2: summing fares over matched events vs the
/// first event of each assigned content.
#[test]
fn sum_semantics_on_transit() {
    let db = s_olap::datagen::generate_transit(&s_olap::datagen::TransitConfig {
        passengers: 50,
        days: 2,
        ..Default::default()
    })
    .unwrap();
    let engine = Engine::new(db);
    let base = r#"
        SELECT {AGG} FROM Event
        CLUSTER BY card-id AT individual, time AT day
        SEQUENCE BY time ASCENDING
        CUBOID BY SUBSTRING (X, Y)
          WITH X AS location AT station, Y AS location AT station
          LEFT-MAXIMALITY (x1, y1)
          WITH x1.action = "in" AND y1.action = "out"
    "#;
    let sum_all_spec = parse(&engine.db(), &base.replace("{AGG}", "SUM(amount)"));
    let sum_all = engine.execute(&sum_all_spec).unwrap();
    let sum_first_spec = parse(&engine.db(), &base.replace("{AGG}", "SUM-FIRST(amount)"));
    let sum_first = engine.execute(&sum_first_spec).unwrap();
    // "in" events have amount 0, "out" events are negative: the all-events
    // sum is strictly negative wherever cells exist; first-event sums are 0.
    assert!(!sum_all.cuboid.is_empty());
    for (k, v) in sum_all.cuboid.iter_sorted() {
        assert!(v.as_f64() < 0.0, "cell {k:?} should sum negative fares");
    }
    for (_, v) in sum_first.cuboid.iter_sorted() {
        assert_eq!(
            v.as_f64(),
            0.0,
            "first matched event is an `in` with amount 0"
        );
    }
    assert_eq!(sum_all.cuboid.len(), sum_first.cuboid.len());
}
