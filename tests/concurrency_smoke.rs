//! Concurrency smoke test: several threads issue a mixed query workload
//! against ONE shared `Engine` — cuboid repository and sequence cache
//! enabled, parallel construction on — and every thread must observe
//! exactly the cells a serial replay of the same workload produces on a
//! fresh engine. Exercises the interior locking of the caches (first
//! thread populates, later threads hit) under contention.

use s_olap::prelude::Strategy as EngineStrategy;
use s_olap::prelude::{
    AggFunc, AttrLevel, CellRestriction, ColumnType, Engine, EngineConfig, EventDb, EventDbBuilder,
    MatchPred, PatternKind, PatternTemplate, SCuboidSpec, SortKey, SumMode, Value,
};

fn build_db() -> EventDb {
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("symbol", ColumnType::Str)
        .measure("weight", ColumnType::Float)
        .build()
        .unwrap();
    // 24 sequences of length 8 over 5 symbols, deterministic contents.
    for sid in 0..24i64 {
        for pos in 0..8i64 {
            let sym = (sid * 3 + pos * 5 + (pos * pos) % 7) % 5;
            db.push_row(&[
                Value::Int(sid),
                Value::Int(pos),
                Value::Str(format!("s{sym}")),
                Value::Float((sym as f64) + 0.5),
            ])
            .unwrap();
        }
    }
    db.set_base_level_name(2, "symbol");
    db.attach_str_level(2, "parity", |name| {
        let v: u32 = name[1..].parse().unwrap();
        format!("p{}", v % 2)
    })
    .unwrap();
    db
}

/// A mixed workload: both pattern kinds, several aggregates, one grouped
/// query — enough variety that cuboid-repo keys collide across threads
/// only when they should.
fn workload(db: &EventDb) -> Vec<SCuboidSpec> {
    let spec = |kind, syms: &[&str], agg, grouped: bool| {
        let bindings: Vec<(&str, u32, usize)> = {
            let mut b: Vec<(&str, u32, usize)> = Vec::new();
            for &s in syms {
                if !b.iter().any(|(n, _, _)| *n == s) {
                    b.push((s, 2, 0));
                }
            }
            b
        };
        let template = PatternTemplate::new(kind, syms, &bindings).unwrap();
        let mut s = SCuboidSpec::new(
            template,
            vec![AttrLevel::new(0, 0)],
            vec![SortKey {
                attr: 1,
                ascending: true,
            }],
        )
        .with_mpred(MatchPred::True)
        .with_restriction(CellRestriction::LeftMaximalityMatchedGo)
        .with_agg(agg);
        if grouped {
            s = s.with_group_by(vec![AttrLevel::new(2, 1)]);
        }
        s
    };
    let _ = db;
    vec![
        spec(PatternKind::Substring, &["A", "B"], AggFunc::Count, false),
        spec(
            PatternKind::Substring,
            &["A", "B"],
            AggFunc::Sum(3, SumMode::AllEvents),
            false,
        ),
        spec(
            PatternKind::Subsequence,
            &["A", "B"],
            AggFunc::Avg(3, SumMode::AllEvents),
            false,
        ),
        spec(PatternKind::Substring, &["A", "A"], AggFunc::Min(3), true),
        spec(
            PatternKind::Subsequence,
            &["A", "B"],
            AggFunc::Max(3),
            false,
        ),
        spec(
            PatternKind::Substring,
            &["A", "B", "A"],
            AggFunc::Count,
            true,
        ),
    ]
}

type Cells = Vec<(s_olap::core::CellKey, String)>;

fn cells(engine: &Engine, spec: &SCuboidSpec) -> Cells {
    let out = engine.execute(spec).unwrap();
    out.cuboid
        .iter_sorted()
        .into_iter()
        .map(|(k, v)| (k.clone(), format!("{v}")))
        .collect()
}

fn config(strategy: EngineStrategy) -> EngineConfig {
    EngineConfig {
        strategy,
        use_cuboid_repo: true,
        threads: 2, // parallel construction inside concurrent queries
        ..Default::default()
    }
}

#[test]
fn shared_engine_under_contention_matches_serial_replay() {
    for strategy in [EngineStrategy::CounterBased, EngineStrategy::InvertedIndex] {
        let shared = Engine::with_config(build_db(), config(strategy));
        let specs = workload(&shared.db());

        // Serial replay on a fresh engine gives the expected answer set.
        let serial = Engine::with_config(build_db(), config(strategy));
        let expected: Vec<_> = specs.iter().map(|s| cells(&serial, s)).collect();

        const WORKERS: usize = 4;
        const ROUNDS: usize = 3;
        let observed: Vec<Vec<(usize, Cells)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|w| {
                    let shared = &shared;
                    let specs = &specs;
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        for round in 0..ROUNDS {
                            // Rotate so threads hit the caches in
                            // different orders every round.
                            for i in 0..specs.len() {
                                let q = (i + w + round) % specs.len();
                                seen.push((q, cells(shared, &specs[q])));
                            }
                        }
                        seen
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        for per_thread in &observed {
            for (q, got) in per_thread {
                assert_eq!(
                    got, &expected[*q],
                    "{strategy:?}: concurrent result for query {q} diverged from serial replay"
                );
            }
        }
        // Every repeated execution after the first should have been served
        // by the cuboid repository; at minimum the repo must hold all
        // distinct queries now.
        assert_eq!(shared.cuboid_repo().len(), specs.len());
    }
}
