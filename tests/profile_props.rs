//! Metamorphic properties of the observability layer: the per-query
//! profile must be *exact* (counters equal ground truth the test can
//! compute independently), *thread-invariant* (work counters don't change
//! with the worker count), and *free of observer effects* (disabling the
//! layer changes no query result).

use s_olap::eventdb::{metrics, Counter};
use s_olap::prelude::*;

/// Serializes tests that read or toggle the process-wide profiling flag.
static FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A station database with a measure column so every aggregate is
/// exercised: actions alternate in/out, `amount` is a deterministic
/// function of the row.
fn measured_db() -> EventDb {
    let seqs: [&[&str]; 5] = [
        &[
            "Glenmont", "Pentagon", "Pentagon", "Wheaton", "Wheaton", "Pentagon",
        ],
        &["Pentagon", "Wheaton", "Wheaton", "Pentagon"],
        &["Clarendon", "Pentagon"],
        &["Wheaton", "Clarendon", "Deanwood", "Wheaton"],
        &[
            "Pentagon", "Wheaton", "Glenmont", "Deanwood", "Pentagon", "Wheaton",
        ],
    ];
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("location", ColumnType::Str)
        .dimension("action", ColumnType::Str)
        .measure("amount", ColumnType::Float)
        .build()
        .unwrap();
    let mut row = 0i64;
    for (sid, stations) in seqs.iter().enumerate() {
        for (i, st) in stations.iter().enumerate() {
            let action = if i % 2 == 0 { "in" } else { "out" };
            db.push_row(&[
                Value::Int(sid as i64),
                Value::Int(i as i64),
                Value::from(*st),
                Value::from(action),
                Value::Float((row % 7) as f64 + 0.5),
            ])
            .unwrap();
            row += 1;
        }
    }
    db.set_base_level_name(2, "station");
    db.attach_str_level(2, "district", |s| {
        if s == "Pentagon" || s == "Clarendon" {
            "D10".into()
        } else {
            "D20".into()
        }
    })
    .unwrap();
    db
}

fn spec_with(db: &EventDb, agg: AggFunc) -> SCuboidSpec {
    let t = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y"],
        &[("X", 2, 0), ("Y", 2, 0)],
    )
    .unwrap();
    let action = db.attr("action").unwrap();
    SCuboidSpec::new(
        t,
        vec![AttrLevel::new(0, 0)],
        vec![SortKey {
            attr: 1,
            ascending: true,
        }],
    )
    .with_agg(agg)
    .with_mpred(
        MatchPred::cmp(0, action, CmpOp::Eq, "in").and(MatchPred::cmp(1, action, CmpOp::Eq, "out")),
    )
}

fn aggregates(db: &EventDb) -> Vec<AggFunc> {
    let amount = db.attr("amount").unwrap();
    vec![
        AggFunc::Count,
        AggFunc::Sum(amount, SumMode::AllEvents),
        AggFunc::Avg(amount, SumMode::AllEvents),
        AggFunc::Min(amount),
        AggFunc::Max(amount),
    ]
}

fn engine(db: EventDb, strategy: Strategy, threads: usize) -> Engine {
    Engine::with_config(
        db,
        EngineConfig {
            strategy,
            threads,
            ..Default::default()
        },
    )
}

/// Work counters are a property of the query, not of the schedule: the
/// same query at 1 and 8 worker threads reports identical scan, selection,
/// grouping, assignment and materialization counts.
#[test]
fn counters_are_thread_invariant() {
    let _g = lock();
    metrics::set_enabled(true);
    let db = measured_db();
    for strategy in [Strategy::CounterBased, Strategy::InvertedIndex] {
        for agg in aggregates(&db) {
            let spec = spec_with(&db, agg);
            let p1 = engine(db.clone(), strategy, 1)
                .execute(&spec)
                .unwrap()
                .profile;
            let p8 = engine(db.clone(), strategy, 8)
                .execute(&spec)
                .unwrap()
                .profile;
            for c in [
                Counter::EventsScanned,
                Counter::EventsSelected,
                Counter::SequencesFormed,
                Counter::GroupsFormed,
                Counter::SequencesScanned,
                Counter::PatternAssignments,
                Counter::MatchWindows,
                Counter::CellsMaterialized,
            ] {
                assert_eq!(
                    p1.counter(c),
                    p8.counter(c),
                    "{strategy:?} {:?}: {} differs across thread counts",
                    spec.agg,
                    c.name()
                );
            }
            assert_eq!(p1.counter(Counter::EventsScanned), db.len() as u64);
        }
    }
}

/// `cells_materialized` is exact: it equals the number of non-empty cells
/// of the returned cuboid, on every path.
#[test]
fn cells_materialized_matches_cuboid() {
    let _g = lock();
    metrics::set_enabled(true);
    let db = measured_db();
    for strategy in [Strategy::CounterBased, Strategy::InvertedIndex] {
        for threads in [1usize, 8] {
            for agg in aggregates(&db) {
                let spec = spec_with(&db, agg);
                let out = engine(db.clone(), strategy, threads)
                    .execute(&spec)
                    .unwrap();
                assert_eq!(
                    out.profile.counter(Counter::CellsMaterialized),
                    out.cuboid.len() as u64,
                    "{strategy:?} t={threads} {:?}",
                    spec.agg
                );
            }
        }
    }
}

/// A repository hit answers the query without touching data: the replay's
/// profile shows one cuboid-cache hit and zero scanning of any kind.
#[test]
fn cache_hit_replay_scans_nothing() {
    let _g = lock();
    metrics::set_enabled(true);
    let db = measured_db();
    for strategy in [Strategy::CounterBased, Strategy::InvertedIndex] {
        let e = engine(db.clone(), strategy, 1);
        let spec = spec_with(&db, AggFunc::Count);
        let first = e.execute(&spec).unwrap();
        let replay = e.execute(&spec).unwrap();
        assert_eq!(replay.profile.strategy, "cache");
        assert_eq!(replay.profile.counter(Counter::CuboidCacheHits), 1);
        assert_eq!(replay.profile.counter(Counter::EventsScanned), 0);
        assert_eq!(replay.profile.counter(Counter::SequencesScanned), 0);
        assert_eq!(replay.stats.sequences_scanned, 0);
        assert_eq!(
            replay.profile.counter(Counter::CellsMaterialized),
            first.cuboid.len() as u64
        );
    }
}

/// No observer effect: with the layer disabled the cuboid is bit-identical
/// to the enabled run, and the profile degrades gracefully (present but
/// not detailed).
#[test]
fn disabled_observability_changes_no_result() {
    let _g = lock();
    let db = measured_db();
    for strategy in [Strategy::CounterBased, Strategy::InvertedIndex] {
        for threads in [1usize, 8] {
            for agg in aggregates(&db) {
                let spec = spec_with(&db, agg);
                metrics::set_enabled(true);
                let on = engine(db.clone(), strategy, threads)
                    .execute(&spec)
                    .unwrap();
                metrics::set_enabled(false);
                let off = engine(db.clone(), strategy, threads)
                    .execute(&spec)
                    .unwrap();
                metrics::set_enabled(true);
                assert!(on.profile.detailed);
                assert!(!off.profile.detailed, "disabled runs skip the recorder");
                assert_eq!(
                    on.cuboid.cells, off.cuboid.cells,
                    "{strategy:?} t={threads} {:?}",
                    spec.agg
                );
                assert_eq!(off.profile.counter(Counter::EventsScanned), 0);
                assert_eq!(off.profile.strategy, on.profile.strategy);
            }
        }
    }
}
