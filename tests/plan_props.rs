//! Property and metamorphic tests for the cost-based planner
//! (DESIGN.md §15).
//!
//! Soundness: whenever the planner answers a query by rolling up a
//! materialized ancestor, the reused pair must satisfy `spec_le` /
//! `reuse_safe` and the merged cuboid must be bit-identical to building
//! the target from scratch — across all five aggregate functions, both
//! fixed strategies and threads {1, 8}. `AVG` does not compose under
//! merge, so the planner must never reuse for it (and still be right).
//!
//! Metamorphic: on the paper's QuerySet A/B workloads the planner is a
//! pure optimizer — identical cells to fixed-CB and fixed-II runs — and
//! its chosen alternative always carries the minimum predicted cost.
//! (The wall-clock claim — planner ≥ best fixed strategy within 10% —
//! is measured by `experiments -- plan` into `BENCH_plan.json`, not
//! asserted here where timings would flake.)

use s_olap::core::lattice::spec_le;
use s_olap::core::plan::reuse_safe;
use s_olap::core::Op;
use s_olap::datagen::{generate_synthetic, SyntheticConfig};
use s_olap::prelude::*;
use solap_bench::plans::{query_set_a, query_set_b, synthetic_spec};
use solap_bench::runner::run_plan;

/// Synthetic data with the 3-level hierarchy, big enough that merging a
/// few hundred materialized cells is predictably cheaper than re-scanning
/// every event or re-building indices (DESIGN.md §15's cost formulas at
/// their seed constants).
fn hierarchy_db(d: usize, seed: u64) -> EventDb {
    generate_synthetic(&SyntheticConfig {
        i: 50,
        l: 10.0,
        theta: 0.9,
        d,
        seed,
        hierarchy: true,
    })
    .unwrap()
}

fn config(strategy: Strategy, plan: bool, threads: usize) -> EngineConfig {
    EngineConfig {
        strategy,
        plan,
        threads,
        ..Default::default()
    }
}

#[test]
fn reused_ancestors_are_sound_across_aggregates_and_threads() {
    let data = hierarchy_db(1_500, 7);
    let pos = data.attr("pos").unwrap();
    let aggregates = [
        AggFunc::Count,
        AggFunc::Sum(pos, SumMode::AllEvents),
        AggFunc::Min(pos),
        AggFunc::Max(pos),
        AggFunc::Avg(pos, SumMode::AllEvents),
    ];
    for agg in aggregates {
        for threads in [1usize, 8] {
            let engine = Engine::with_config(data.clone(), config(Strategy::Auto, true, threads));
            // Pattern coarsening is only merge-safe under ALL-MATCHED GO
            // (the default LEFT-MAXIMALITY slices cells the merge cannot
            // reconstruct — DESIGN.md §15).
            let base = synthetic_spec(&engine.db(), PatternKind::Substring, &["X", "Y", "Z"], 1)
                .unwrap()
                .with_restriction(CellRestriction::AllMatchedGo)
                .with_agg(agg);
            engine.execute(&base).unwrap();
            let (coarse, out) = engine
                .execute_op(&base, &Op::PRollUp { dim: "Y".into() })
                .unwrap();
            // The lattice relation the reuse path depends on holds for
            // every aggregate; *safety* additionally excludes AVG.
            assert!(spec_le(&coarse, &base), "roll-up target must be ≤ source");
            let avg = matches!(agg, AggFunc::Avg(..));
            assert_eq!(
                reuse_safe(&coarse, &base),
                !avg,
                "AVG does not compose under merge ({agg:?})"
            );
            if avg {
                assert_ne!(
                    out.stats.strategy, "reuse",
                    "the planner must never merge an AVG cuboid"
                );
            } else {
                assert_eq!(out.stats.strategy, "reuse", "{agg:?} t={threads}");
                assert_eq!(out.stats.sequences_scanned, 0);
            }
            // Bit-identical to cold builds under both fixed strategies.
            for strategy in [Strategy::CounterBased, Strategy::InvertedIndex] {
                let cold = Engine::with_config(data.clone(), config(strategy, false, threads));
                let expect = cold.execute(&coarse).unwrap();
                assert_eq!(
                    out.cuboid.cells, expect.cuboid.cells,
                    "{agg:?} t={threads} vs {strategy:?}"
                );
            }
        }
    }
}

#[test]
fn planner_is_a_pure_optimizer_on_query_sets_a_and_b() {
    let data = hierarchy_db(300, 17);
    let plans = [
        query_set_a(&data, PatternKind::Substring, 4).unwrap(),
        query_set_b(&data).unwrap(),
    ];
    for plan in &plans {
        let planner = run_plan(
            data.clone(),
            plan,
            config(Strategy::Auto, true, 1),
            "planner",
        )
        .unwrap();
        let cb = run_plan(
            data.clone(),
            plan,
            config(Strategy::CounterBased, false, 1),
            "CB",
        )
        .unwrap();
        let ii = run_plan(
            data.clone(),
            plan,
            config(Strategy::InvertedIndex, false, 1),
            "II",
        )
        .unwrap();
        for ((p, c), i) in planner.steps.iter().zip(&cb.steps).zip(&ii.steps) {
            let pc = p.cuboid.as_ref().unwrap();
            assert_eq!(
                pc.cells,
                c.cuboid.as_ref().unwrap().cells,
                "{} step {} vs CB",
                plan.name,
                p.label
            );
            assert_eq!(
                pc.cells,
                i.cuboid.as_ref().unwrap().cells,
                "{} step {} vs II",
                plan.name,
                p.label
            );
        }
    }
}

#[test]
fn chosen_alternative_has_minimum_predicted_cost() {
    let data = hierarchy_db(300, 23);
    let engine = Engine::with_config(data, config(Strategy::Auto, true, 1));
    let base = synthetic_spec(&engine.db(), PatternKind::Substring, &["X", "Y", "Z"], 1)
        .unwrap()
        .with_restriction(CellRestriction::AllMatchedGo);
    engine.execute(&base).unwrap();
    let coarse = {
        let db = engine.db();
        s_olap::core::ops::apply(&db, &base, &Op::PRollUp { dim: "Y".into() }).unwrap()
    };
    for spec in [&base, &coarse] {
        let report = engine.explain(spec).unwrap();
        assert_eq!(report.mode, "cost");
        let chosen = report.chosen().expect("a chosen alternative");
        for alt in &report.alternatives {
            assert!(
                chosen.cost.total_nanos <= alt.cost.total_nanos,
                "chosen `{}` predicted {} but `{}` predicted {}",
                chosen.label,
                chosen.cost.total_nanos,
                alt.label,
                alt.cost.total_nanos
            );
        }
    }
    // With the planner off, nothing is enumerated and the legacy
    // heuristic answers — same cells, no alternatives counted.
    let legacy = Engine::with_config(hierarchy_db(300, 23), config(Strategy::Auto, false, 1));
    let a = legacy.execute(&base).unwrap();
    let b = engine.execute(&base).unwrap();
    assert_eq!(a.cuboid.cells, b.cuboid.cells);
}
