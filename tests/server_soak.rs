//! Soak test for the readiness-driven serving layer: 256 concurrent
//! connections under random connect/disconnect/pipeline churn for a
//! bounded wall-clock budget.
//!
//! Three properties are asserted at the end:
//!
//! 1. **Bit-identical responses** — a sample of cleanly-completed
//!    connection lifetimes is replayed serially on fresh connections;
//!    every timing-free response body must match byte-for-byte (query
//!    summaries carry elapsed times, so they compare on outcome only).
//! 2. **No fd leak** — the process fd count returns to the pre-churn
//!    baseline once every client is gone (the event loop owns exactly
//!    one fd per connection and must reap all of them, including
//!    connections dropped mid-pipeline).
//! 3. **All inflight slots reclaimed** — the pool reports zero executing
//!    statements and zero queued jobs, and the server zero active
//!    connections.

use std::sync::Arc;
use std::time::{Duration, Instant};

use s_olap::prelude::*;
use s_olap::server::{Client, Server, ServerConfig};

/// The paper's Q3 over the transit substitute (same as the chaos suite).
const QUERY: &str = r#"SELECT COUNT(*) FROM Event CLUSTER BY card-id AT individual, time AT day SEQUENCE BY time ASCENDING CUBOID BY SUBSTRING (X, Y) WITH X AS location AT station, Y AS location AT station LEFT-MAXIMALITY (x1, y1) WITH x1.action = "in" AND y1.action = "out""#;

/// Statements whose response bodies are deterministic given the
/// session's statement history (everything except query execution, whose
/// summary line carries wall-clock timings).
const DETERMINISTIC: [&str; 5] = [
    ".show 10",
    ".spec",
    ".history",
    ".strategy ii",
    ".strategy cb",
];

/// Wall-clock budget for the churn phase.
const SOAK_BUDGET: Duration = Duration::from_millis(2500);

const THREADS: usize = 32;
const CONNS_PER_THREAD: usize = 8; // 32 × 8 = 256 concurrent connections
/// Cleanly-closed lifetimes recorded per thread for the serial replay.
const RECORDED_PER_THREAD: usize = 3;

/// What one statement's response is compared on during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Observed {
    /// Timing-free statement: the full body must match bit-for-bit.
    Body(String),
    /// Timing-carrying statement (queries): outcome only.
    Outcome(bool),
}

fn observe(statement: &str, ok: bool, body: &str) -> Observed {
    if statement == QUERY {
        Observed::Outcome(ok)
    } else {
        Observed::Body(format!("ok={ok}:{body}"))
    }
}

/// One cleanly-completed connection lifetime: every statement sent, in
/// order, with what was observed of each response.
struct Lifetime {
    statements: Vec<&'static str>,
    observed: Vec<Observed>,
}

/// Small deterministic xorshift so the churn is reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn count_fds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .expect("/proc/self/fd")
        .count()
}

fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}

fn pick_batch(rng: &mut Rng) -> Vec<&'static str> {
    let len = 1 + rng.below(5);
    (0..len)
        .map(|_| {
            // Queries are a third of the mix: enough to keep the pool
            // busy, cheap enough to fit the wall-clock budget.
            if rng.below(3) == 0 {
                QUERY
            } else {
                DETERMINISTIC[rng.below(DETERMINISTIC.len())]
            }
        })
        .collect()
}

/// One churn thread: owns `CONNS_PER_THREAD` live connections, and until
/// the deadline keeps picking one at random and either pipelining a
/// batch through it (recording what came back) or dropping it abruptly —
/// sometimes with an unread pipelined batch in flight, i.e. a mid-query
/// disconnect — and reconnecting.
fn churn(addr: std::net::SocketAddr, seed: u64, deadline: Instant) -> (Vec<Lifetime>, u64, u64) {
    let mut rng = Rng(seed | 1);
    let mut slots: Vec<(Client, Lifetime)> = (0..CONNS_PER_THREAD)
        .map(|_| (connect(addr), fresh_lifetime()))
        .collect();
    let mut completed: Vec<Lifetime> = Vec::new();
    let mut statements_total = 0u64;
    let mut abrupt_drops = 0u64;

    while Instant::now() < deadline {
        let i = rng.below(slots.len());
        match rng.below(10) {
            // 0–6: pipeline a batch and read every response back.
            0..=6 => {
                let (client, lifetime) = &mut slots[i];
                let batch = pick_batch(&mut rng);
                let responses = client.pipeline(&batch).expect("pipeline");
                assert_eq!(responses.len(), batch.len());
                statements_total += batch.len() as u64;
                for (statement, r) in batch.iter().zip(&responses) {
                    lifetime.statements.push(statement);
                    lifetime.observed.push(observe(statement, r.ok, &r.body));
                }
            }
            // 7: clean close — keep the lifetime for the serial replay.
            7 => {
                let (client, lifetime) =
                    std::mem::replace(&mut slots[i], (connect(addr), fresh_lifetime()));
                drop(client);
                if !lifetime.statements.is_empty() && completed.len() < RECORDED_PER_THREAD {
                    completed.push(lifetime);
                }
            }
            // 8–9: abrupt drop, half the time with a batch in flight
            // (mid-pipeline disconnect). The lifetime is not comparable.
            _ => {
                let (mut client, _) =
                    std::mem::replace(&mut slots[i], (connect(addr), fresh_lifetime()));
                if rng.below(2) == 0 {
                    let batch = pick_batch(&mut rng);
                    let _ = client.send_batch(&batch);
                }
                abrupt_drops += 1;
                drop(client);
            }
        }
    }
    (completed, statements_total, abrupt_drops)
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_response_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    client
}

fn fresh_lifetime() -> Lifetime {
    Lifetime {
        statements: Vec::new(),
        observed: Vec::new(),
    }
}

#[test]
fn soak_256_connections_with_churn() {
    let db = s_olap::datagen::generate_transit(&s_olap::datagen::TransitConfig {
        passengers: 80,
        days: 3,
        ..Default::default()
    })
    .expect("generator");
    let engine = Arc::new(
        Engine::builder(db)
            .threads(2)
            // Re-aggregate per request so the replay comparison is not
            // answered from a cross-session cuboid cache.
            .use_cuboid_repo(false)
            .build(),
    );
    let (handle, join) = Server::spawn(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_inflight: 8,
            // The soak saturates 8 workers from 256 connections on
            // purpose; queued batches may wait well past the default
            // queue timeout. Admission expiry is exercised by the chaos
            // suite — here it would nondeterministically turn served
            // statements into `over_capacity` rejections (and poison
            // recorded lifetimes for the serial replay).
            queue_timeout: Duration::from_secs(120),
            ..Default::default()
        },
    )
    .expect("server spawn");
    let addr = handle.local_addr();

    // Baseline fds: server up (listener + engine), zero clients.
    let fd_baseline = count_fds();

    // ---- churn phase: 256 concurrent connections ----
    let deadline = Instant::now() + SOAK_BUDGET;
    let threads: Vec<_> = (0..THREADS)
        .map(|t| std::thread::spawn(move || churn(addr, 0x5eed + t as u64, deadline)))
        .collect();
    let mut recorded: Vec<Lifetime> = Vec::new();
    let mut statements_total = 0u64;
    let mut abrupt_total = 0u64;
    for t in threads {
        let (lifetimes, statements, abrupt) = t.join().expect("churn thread");
        recorded.extend(lifetimes);
        statements_total += statements;
        abrupt_total += abrupt;
    }
    assert!(
        statements_total > 0 && abrupt_total > 0,
        "the soak must exercise both pipelining and abrupt disconnects \
         (statements={statements_total}, abrupt={abrupt_total})"
    );
    assert!(!recorded.is_empty(), "no clean lifetimes recorded");

    // ---- serial replay: recorded lifetimes, bit-identical bodies ----
    for (n, lifetime) in recorded.iter().enumerate() {
        let mut client = connect(addr);
        for (statement, expected) in lifetime.statements.iter().zip(&lifetime.observed) {
            let r = client.request(statement).expect("replay request");
            let got = observe(statement, r.ok, &r.body);
            assert_eq!(
                &got, expected,
                "lifetime {n}: `{statement}` diverged from the soak run"
            );
        }
    }

    // ---- reclamation: slots, connections and fds all return ----
    assert!(
        wait_for(Duration::from_secs(10), || {
            let s = handle.stats();
            s.active == 0 && s.executing == 0 && s.queued == 0
        }),
        "inflight slots or connections not reclaimed: {:?}",
        handle.stats()
    );
    assert!(
        wait_for(Duration::from_secs(10), || count_fds() <= fd_baseline),
        "fd leak: baseline {fd_baseline}, now {} ({:?})",
        count_fds(),
        handle.stats()
    );

    // The churn must have actually been served, not silently rejected.
    // Typed errors count as served: e.g. `.show` before any query draws
    // a deterministic `invalid_operation`, which the replay reproduces.
    let stats = handle.stats();
    assert!(
        stats.served_ok + stats.served_err >= statements_total,
        "served {}+{} < statements pipelined {} ({stats:?})",
        stats.served_ok,
        stats.served_err,
        statements_total
    );
    assert_eq!(stats.rejected_conn, 0, "{stats:?}");

    handle.shutdown();
    join.join().expect("event loop").expect("serve");
}
