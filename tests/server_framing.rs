//! Wire-framing property tests for the readiness-driven server.
//!
//! The protocol is newline-delimited, but TCP gives the server arbitrary
//! byte fragments. These tests assert that framing is independent of
//! packetization: the same statements delivered under adversarial
//! fragmentations — 1-byte writes, a CRLF split across writes, a whole
//! pipeline coalesced into one write, seeded random chunking — produce
//! responses identical to whole-line writes; that a pipelined batch of N
//! statements is answered exactly like N sequential requests (across
//! CB/II strategies and engine worker counts {1, 8}); and that hostile
//! lines get their typed errors (`too_large` terminally, `bad_request`
//! with resync).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use s_olap::prelude::*;
use s_olap::server::{Client, Server, ServerConfig, ServerHandle, WireResponse};

/// The paper's Q3 over the transit substitute (same as the chaos suite).
const QUERY: &str = r#"SELECT COUNT(*) FROM Event CLUSTER BY card-id AT individual, time AT day SEQUENCE BY time ASCENDING CUBOID BY SUBSTRING (X, Y) WITH X AS location AT station, Y AS location AT station LEFT-MAXIMALITY (x1, y1) WITH x1.action = "in" AND y1.action = "out""#;

fn transit_engine(threads: usize) -> Arc<Engine> {
    let db = s_olap::datagen::generate_transit(&s_olap::datagen::TransitConfig {
        passengers: 80,
        days: 3,
        ..Default::default()
    })
    .expect("generator");
    Arc::new(
        Engine::builder(db)
            .threads(threads)
            .use_cuboid_repo(false)
            .build(),
    )
}

fn spawn(
    config: ServerConfig,
    threads: usize,
) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    Server::spawn(transit_engine(threads), config).expect("server spawn")
}

fn default_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..Default::default()
    }
}

/// Timing-free comparison key: query summaries carry elapsed times, so
/// queries compare on outcome; everything else compares bit-for-bit.
fn observe(statement: &str, r: &WireResponse) -> String {
    if statement == QUERY {
        format!("query ok={}", r.ok)
    } else {
        format!("ok={} code={:?} body={}", r.ok, r.code, r.body)
    }
}

/// Writes `wire` to a raw socket in the given chunk sizes (cycled), then
/// reads `expect` response lines.
fn raw_exchange(addr: SocketAddr, wire: &[u8], chunks: &[usize], expect: usize) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut sent = 0;
    let mut i = 0;
    while sent < wire.len() {
        let n = chunks[i % chunks.len()].max(1).min(wire.len() - sent);
        writer.write_all(&wire[sent..sent + n]).expect("write");
        writer.flush().expect("flush");
        sent += n;
        i += 1;
    }
    let mut lines = Vec::with_capacity(expect);
    for _ in 0..expect {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read");
        assert!(n > 0, "server closed early after {} lines", lines.len());
        lines.push(line);
    }
    lines
}

/// Small deterministic xorshift for the random-chunking case.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The same statement script, delivered whole-line sequentially, as one
/// coalesced pipeline, byte-by-byte, CRLF-split and randomly chunked,
/// must produce identical responses — across CB/II and threads {1, 8}.
#[test]
fn adversarial_fragmentations_match_whole_line_writes() {
    for threads in [1usize, 8] {
        for strategy in [".strategy cb", ".strategy ii"] {
            let (handle, join) = spawn(default_config(), threads);
            let addr = handle.local_addr();
            let script: Vec<String> = vec![
                strategy.to_owned(),
                QUERY.to_owned(),
                ".show 10".to_owned(),
                ".spec".to_owned(),
                ".history".to_owned(),
            ];

            // Reference: whole-line writes, one request at a time.
            let mut client = Client::connect(addr).expect("connect");
            let reference: Vec<String> = script
                .iter()
                .map(|s| observe(s, &client.request(s).expect("request")))
                .collect();

            // LF-terminated wire image of the whole script.
            let mut wire = Vec::new();
            for s in &script {
                wire.extend_from_slice(s.as_bytes());
                wire.push(b'\n');
            }
            // CRLF-terminated image (split so every \r and \n land in
            // different writes when chunked to 1 byte below).
            let mut wire_crlf = Vec::new();
            for s in &script {
                wire_crlf.extend_from_slice(s.as_bytes());
                wire_crlf.extend_from_slice(b"\r\n");
            }

            let mut rng = Rng(0xf7a3 ^ threads as u64);
            let random_chunks: Vec<usize> =
                (0..64).map(|_| 1 + (rng.next() % 7) as usize).collect();
            let deliveries: Vec<(&str, &[u8], Vec<usize>)> = vec![
                ("coalesced", &wire, vec![wire.len()]),
                ("one-byte", &wire, vec![1]),
                ("crlf-split-one-byte", &wire_crlf, vec![1]),
                ("crlf-coalesced", &wire_crlf, vec![wire_crlf.len()]),
                ("random-chunks", &wire, random_chunks),
            ];
            for (name, wire, chunks) in deliveries {
                let lines = raw_exchange(addr, wire, &chunks, script.len());
                let got: Vec<String> = script
                    .iter()
                    .zip(&lines)
                    .map(|(s, line)| observe(s, &WireResponse::parse(line).expect("parse")))
                    .collect();
                assert_eq!(
                    got, reference,
                    "{name} delivery diverged (threads={threads}, {strategy})"
                );
            }

            handle.shutdown();
            join.join().expect("event loop").expect("serve");
        }
    }
}

/// A pipelined batch of N statements gets the same responses, in order,
/// as N sequential requests on a fresh connection — across CB/II and
/// engine worker counts {1, 8}.
#[test]
fn pipelined_batch_matches_sequential_requests() {
    for threads in [1usize, 8] {
        let (handle, join) = spawn(default_config(), threads);
        let addr = handle.local_addr();
        for strategy in [".strategy cb", ".strategy ii"] {
            let script: Vec<String> = vec![
                strategy.to_owned(),
                QUERY.to_owned(),
                ".show 10".to_owned(),
                ".spec".to_owned(),
                QUERY.to_owned(),
                ".history".to_owned(),
            ];

            let mut sequential = Client::connect(addr).expect("connect");
            let reference: Vec<String> = script
                .iter()
                .map(|s| observe(s, &sequential.request(s).expect("request")))
                .collect();

            let mut pipelined = Client::connect(addr).expect("connect");
            let responses = pipelined.pipeline(&script).expect("pipeline");
            let got: Vec<String> = script
                .iter()
                .zip(&responses)
                .map(|(s, r)| observe(s, r))
                .collect();
            assert_eq!(
                got, reference,
                "pipelined N diverged from N sequential (threads={threads}, {strategy})"
            );
        }
        handle.shutdown();
        join.join().expect("event loop").expect("serve");
    }
}

/// An oversized line draws the typed `too_large` error and closes the
/// connection after responses to earlier pipelined statements flush —
/// the bound is on the line, not the read buffer, and detection is
/// incremental (no terminator needed).
#[test]
fn oversized_lines_draw_too_large_and_close() {
    let (handle, join) = spawn(
        ServerConfig {
            max_line_bytes: 64,
            ..default_config()
        },
        1,
    );
    let addr = handle.local_addr();

    // A good statement pipelined ahead of the oversized one still gets
    // its answer; the oversized line is answered `too_large`; then EOF.
    let mut wire = Vec::from(&b".history\n"[..]);
    wire.extend(std::iter::repeat_n(b'x', 200)); // no terminator at all
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(&wire).expect("write");
    writer.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let first = WireResponse::parse(&line).expect("parse");
    assert!(first.ok, "pre-overflow statement must still be answered");
    line.clear();
    reader.read_line(&mut line).expect("read");
    let second = WireResponse::parse(&line).expect("parse");
    assert!(!second.ok);
    assert_eq!(second.code.as_deref(), Some("too_large"));
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).expect("read"),
        0,
        "EOF expected"
    );

    handle.shutdown();
    join.join().expect("event loop").expect("serve");
}

/// A non-UTF-8 line draws `bad_request` but the connection resyncs on
/// the terminator: the next statement is answered normally.
#[test]
fn bad_utf8_draws_bad_request_and_resyncs() {
    let (handle, join) = spawn(default_config(), 1);
    let addr = handle.local_addr();

    let mut wire = Vec::new();
    wire.extend_from_slice(&[0xff, 0xfe, 0xfd, b'\n']);
    wire.extend_from_slice(b".history\n");
    let lines = raw_exchange(addr, &wire, &[wire.len()], 2);
    let first = WireResponse::parse(&lines[0]).expect("parse");
    assert!(!first.ok);
    assert_eq!(first.code.as_deref(), Some("bad_request"));
    let second = WireResponse::parse(&lines[1]).expect("parse");
    assert!(second.ok, "connection must resync after bad UTF-8");

    handle.shutdown();
    join.join().expect("event loop").expect("serve");
}
