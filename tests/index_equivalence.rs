//! The compressed-backend equivalence battery (DESIGN.md §12): the
//! galloping join kernel is metamorphically pinned to scan intersection
//! and bitmap AND on identical inputs, and the engine produces
//! bit-identical cuboids under every posting-list backend — all five
//! aggregates, both construction strategies, sequential and sharded
//! builds — with exact, thread-invariant index-byte accounting and clean
//! recovery from a governor abort mid-join.

use std::collections::BTreeSet;

use proptest::prelude::*;

use s_olap::eventdb::Error;
use s_olap::index::{
    build_index, gallop_intersect, Bitmap, CompressedSidSet, InvertedIndex, SidSet,
};
use s_olap::prelude::Strategy as EngineStrategy;
use s_olap::prelude::{
    AggFunc, AttrLevel, CmpOp, ColumnType, Engine, EngineConfig, EventDb, EventDbBuilder,
    MatchPred, PatternKind, PatternTemplate, SCuboidSpec, SetBackend, SortKey, SumMode, Value,
};

const ALL_BACKENDS: [SetBackend; 4] = [
    SetBackend::List,
    SetBackend::Bitmap,
    SetBackend::Compressed,
    SetBackend::Auto,
];

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

fn encode(v: &[u32], e: u8) -> SidSet {
    match e {
        0 => SidSet::from_sorted(v.to_vec()),
        1 => SidSet::Bitmap(v.iter().copied().collect::<Bitmap>()),
        _ => SidSet::Compressed(CompressedSidSet::from_sorted(v.to_vec())),
    }
}

proptest! {
    /// Metamorphic join pin: on identical inputs, the galloping seeker
    /// join ≡ the sorted-list scan join ≡ the bitmap AND, for all nine
    /// encoding pairings.
    #[test]
    fn gallop_join_equals_scan_join_equals_bitmap_and(
        a in prop::collection::vec(0u32..2_000, 0..250),
        b in prop::collection::vec(0u32..2_000, 0..250),
    ) {
        let (av, bv) = (sorted(a), sorted(b));
        // Scan join: merge-walk the two sorted lists (the pre-codec path).
        let scan: Vec<u32> = {
            let sb: BTreeSet<u32> = bv.iter().copied().collect();
            av.iter().copied().filter(|s| sb.contains(s)).collect()
        };
        // Bitmap AND.
        let bitmap = encode(&av, 1).intersect(&encode(&bv, 1)).to_vec();
        prop_assert_eq!(&bitmap, &scan, "bitmap AND vs scan join");
        for ea in 0..3u8 {
            for eb in 0..3u8 {
                let (sa, sb) = (encode(&av, ea), encode(&bv, eb));
                let gallop = gallop_intersect(sa.seeker(), sb.seeker());
                prop_assert_eq!(&gallop, &scan, "gallop {}x{} vs scan", ea, eb);
                // The SidSet algebra dispatches to the same kernel.
                prop_assert_eq!(sa.intersect(&sb).to_vec(), scan.clone());
            }
        }
    }
}

/// Deterministic little database in the chaos-suite shape: 24 sequences
/// over 5 symbols, an `a`/`b` tag, a dyadic `weight` measure (so SUM/AVG
/// are bit-exact under any fold order), and a parity hierarchy.
fn build_db() -> EventDb {
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("symbol", ColumnType::Str)
        .dimension("tag", ColumnType::Str)
        .measure("weight", ColumnType::Float)
        .build()
        .unwrap();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for sid in 0..24i64 {
        let len = 3 + (sid % 6);
        for pos in 0..len {
            let sym = next() % 5;
            let tag = next() % 2 == 0;
            db.push_row(&[
                Value::Int(sid),
                Value::Int(pos),
                Value::Str(format!("s{sym}")),
                Value::from(if tag { "a" } else { "b" }),
                Value::Float(sym as f64 + 0.5),
            ])
            .unwrap();
        }
    }
    db.set_base_level_name(2, "symbol");
    db.attach_str_level(2, "parity", |name| {
        let v: u32 = name[1..].parse().unwrap();
        format!("p{}", v % 2)
    })
    .unwrap();
    db
}

/// `(X, Y)` substring spec with a matching predicate (forcing the II
/// verification scan) and one of the five aggregates.
fn spec_for(agg: u8) -> SCuboidSpec {
    let template = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y"],
        &[("X", 2, 0), ("Y", 2, 0)],
    )
    .unwrap();
    SCuboidSpec::new(
        template,
        vec![AttrLevel::new(0, 0)],
        vec![SortKey {
            attr: 1,
            ascending: true,
        }],
    )
    .with_mpred(MatchPred::cmp(0, 3, CmpOp::Eq, "a"))
    .with_agg(match agg {
        0 => AggFunc::Count,
        1 => AggFunc::Sum(4, SumMode::AllEvents),
        2 => AggFunc::Avg(4, SumMode::AllEvents),
        3 => AggFunc::Min(4),
        _ => AggFunc::Max(4),
    })
}

/// A length-3 `(X, Y, X)` spec whose index is assembled by joining pair
/// indices — the gallop-join ladder plus the verification scan.
fn spec_len3() -> SCuboidSpec {
    let template = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y", "X"],
        &[("X", 2, 0), ("Y", 2, 0)],
    )
    .unwrap();
    SCuboidSpec::new(
        template,
        vec![AttrLevel::new(0, 0)],
        vec![SortKey {
            attr: 1,
            ascending: true,
        }],
    )
}

fn config(strategy: EngineStrategy, backend: SetBackend, threads: usize) -> EngineConfig {
    EngineConfig {
        strategy,
        backend,
        threads,
        timeout: None,
        budget_cells: None,
        ..Default::default()
    }
}

/// Bit-exact cell image of a query result (Debug-formatted `f64`s
/// round-trip, so equal strings ⇔ equal bits), plus the scan count.
fn cells_of(engine: &Engine, spec: &SCuboidSpec) -> (Vec<(String, String)>, u64) {
    let out = engine.execute(spec).unwrap();
    let cells = out
        .cuboid
        .iter_sorted()
        .into_iter()
        .map(|(k, v)| (format!("{k:?}"), format!("{v:?}")))
        .collect();
    (cells, out.stats.sequences_scanned)
}

/// Every backend × both strategies × threads {1, 8} × all five aggregates
/// × pair and join-ladder templates: cuboids bit-identical to the list
/// backend, scan accounting identical too.
#[test]
fn engine_is_bit_identical_across_backends() {
    let db = build_db();
    for strategy in [EngineStrategy::CounterBased, EngineStrategy::InvertedIndex] {
        for spec in (0..5).map(spec_for).chain([spec_len3()]) {
            let baseline = {
                let engine = Engine::with_config(db.clone(), config(strategy, SetBackend::List, 1));
                cells_of(&engine, &spec)
            };
            assert!(
                !baseline.0.is_empty(),
                "vacuous fixture: the baseline cuboid has no cells"
            );
            for backend in ALL_BACKENDS {
                for threads in [1usize, 8] {
                    let engine =
                        Engine::with_config(db.clone(), config(strategy, backend, threads));
                    let got = cells_of(&engine, &spec);
                    assert_eq!(
                        got, baseline,
                        "{strategy:?}/{backend:?}/t{threads} diverged from List/t1"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random databases: the compressed backend stays bit-identical to the
    /// list backend on both strategies and thread counts.
    #[test]
    fn random_dbs_compressed_equals_list(
        seqs in prop::collection::vec(prop::collection::vec(0u8..5, 1..9), 1..14),
        agg in 0u8..5,
    ) {
        let mut db = EventDbBuilder::new()
            .dimension("sid", ColumnType::Int)
            .dimension("pos", ColumnType::Int)
            .dimension("symbol", ColumnType::Str)
            .dimension("tag", ColumnType::Str)
            .measure("weight", ColumnType::Float)
            .build()
            .unwrap();
        for (sid, seq) in seqs.iter().enumerate() {
            for (pos, &sym) in seq.iter().enumerate() {
                db.push_row(&[
                    Value::Int(sid as i64),
                    Value::Int(pos as i64),
                    Value::Str(format!("s{sym}")),
                    Value::from(if (sym + pos as u8).is_multiple_of(2) {
                        "a"
                    } else {
                        "b"
                    }),
                    Value::Float(sym as f64 + 0.5),
                ])
                .unwrap();
            }
        }
        db.set_base_level_name(2, "symbol");
        db.attach_str_level(2, "parity", |name| {
            let v: u32 = name[1..].parse().unwrap();
            format!("p{}", v % 2)
        })
        .unwrap();
        let spec = spec_for(agg);
        for strategy in [EngineStrategy::CounterBased, EngineStrategy::InvertedIndex] {
            let list = Engine::with_config(db.clone(), config(strategy, SetBackend::List, 1));
            let expect = cells_of(&list, &spec);
            for threads in [1usize, 8] {
                let comp = Engine::with_config(
                    db.clone(),
                    config(strategy, SetBackend::Compressed, threads),
                );
                prop_assert_eq!(
                    cells_of(&comp, &spec),
                    expect.clone(),
                    "{:?} compressed/t{}",
                    strategy,
                    threads
                );
            }
        }
    }
}

/// A governor abort mid-join on the compressed backend is a no-op: typed
/// error out, then the same engine answers bit-identically to a fresh
/// list-backend engine.
#[test]
fn governor_abort_mid_join_recovers_on_compressed() {
    let mut engine = Engine::with_config(
        build_db(),
        EngineConfig {
            budget_cells: Some(1),
            ..config(EngineStrategy::InvertedIndex, SetBackend::Compressed, 1)
        },
    );
    match engine.execute(&spec_len3()) {
        Err(Error::ResourceExhausted {
            resource: "cells", ..
        }) => {}
        other => panic!("expected a cells abort, got {other:?}"),
    }
    assert_eq!(engine.cuboid_repo().len(), 0, "no partial cuboid cached");
    engine.config_mut().budget_cells = None;
    let fresh = Engine::with_config(
        build_db(),
        config(EngineStrategy::InvertedIndex, SetBackend::List, 1),
    );
    for spec in (0..5).map(spec_for).chain([spec_len3()]) {
        assert_eq!(
            cells_of(&engine, &spec),
            cells_of(&fresh, &spec),
            "post-abort answers diverge from a fresh list engine"
        );
    }
}

/// `SOLAP_INDEX` picks the default backend (and garbage falls back to
/// Auto). Process-global, so this test owns the variable briefly; every
/// other test here passes an explicit backend.
#[test]
fn solap_index_env_sets_default_backend() {
    for (val, want) in [
        ("list", SetBackend::List),
        ("bitmap", SetBackend::Bitmap),
        ("compressed", SetBackend::Compressed),
        ("auto", SetBackend::Auto),
        ("garbage", SetBackend::Auto),
    ] {
        std::env::set_var("SOLAP_INDEX", val);
        let got = EngineConfig::default().backend;
        std::env::remove_var("SOLAP_INDEX");
        assert_eq!(got, want, "SOLAP_INDEX={val}");
    }
    assert_eq!(
        EngineConfig::default().backend,
        SetBackend::Auto,
        "unset default"
    );
}

/// Sequence fixture for direct `build_index` calls.
fn sequences(db: &EventDb) -> Vec<s_olap::eventdb::Sequence> {
    use s_olap::eventdb::{build_sequence_groups, Pred, SeqQuerySpec};
    let groups = build_sequence_groups(
        db,
        &SeqQuerySpec {
            filter: Pred::True,
            cluster_by: vec![AttrLevel::new(0, 0)],
            sequence_by: vec![SortKey {
                attr: 1,
                ascending: true,
            }],
            group_by: vec![],
        },
    )
    .unwrap();
    groups.iter_sequences().cloned().collect()
}

/// `heap_bytes` on a compressed index is the encoded size — skip table +
/// payload bytes, not the decoded `u32` width — and `IndexBytesBuilt`
/// reports exactly that, invariant across thread counts.
#[test]
fn index_bytes_accounting_is_exact_and_thread_invariant() {
    let db = build_db();
    let seqs = sequences(&db);
    let template = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y"],
        &[("X", 2, 0), ("Y", 2, 0)],
    )
    .unwrap();
    let (ix, _) = build_index(&db, seqs.iter(), &template, SetBackend::Compressed).unwrap();
    // Per-list: exactly the encoded form. Per-index: the documented sum.
    let mut expect_total = 0usize;
    for (key, set) in &ix.lists {
        let SidSet::Compressed(c) = set else {
            panic!("compressed build produced a non-compressed list");
        };
        assert!(c.is_sealed(), "built lists are sealed");
        assert_eq!(
            c.heap_bytes(),
            c.encoded_data_len() + c.skip_table_bytes(),
            "sealed compressed heap_bytes = payload + skip table"
        );
        assert!(
            c.heap_bytes() < c.len() * std::mem::size_of::<u32>() + c.skip_table_bytes() + 1,
            "encoded accounting never exceeds decoded width plus the skip table"
        );
        expect_total += key.len() * 8 + set.heap_bytes() + 48;
    }
    assert_eq!(
        ix.heap_bytes(),
        expect_total,
        "InvertedIndex::heap_bytes sum"
    );

    // Engine level: IndexBytesBuilt equals the sealed index's heap_bytes,
    // whatever the thread count (sharded builds canonicalize identically).
    let bytes_at = |backend: SetBackend, threads: usize| -> usize {
        let engine = Engine::with_config(
            db.clone(),
            config(EngineStrategy::InvertedIndex, backend, threads),
        );
        engine
            .execute(&spec_for(0))
            .unwrap()
            .stats
            .index_bytes_built
    };
    let c1 = bytes_at(SetBackend::Compressed, 1);
    assert_eq!(c1, bytes_at(SetBackend::Compressed, 8), "thread-invariant");
    assert_eq!(
        c1,
        bytes_at(SetBackend::Compressed, 1),
        "deterministic rebuild"
    );
}

/// On a sparse workload (wide sid space, thin lists) the compressed
/// backend builds a strictly smaller index than the list backend — the
/// acceptance bar for the codec actually paying for itself.
#[test]
fn compressed_index_is_smaller_on_sparse_lists() {
    // 600 sequences over 3 symbols: every pattern list is long (hundreds
    // of sids), which is where delta+varint beats 4-byte sids.
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("symbol", ColumnType::Str)
        .dimension("tag", ColumnType::Str)
        .measure("weight", ColumnType::Float)
        .build()
        .unwrap();
    let mut state = 7u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
        state >> 33
    };
    for sid in 0..600i64 {
        for pos in 0..4i64 {
            let sym = next() % 3;
            db.push_row(&[
                Value::Int(sid),
                Value::Int(pos),
                Value::Str(format!("s{sym}")),
                Value::from("a"),
                Value::Float(1.0),
            ])
            .unwrap();
        }
    }
    db.set_base_level_name(2, "symbol");
    let seqs = sequences(&db);
    let template = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y"],
        &[("X", 2, 0), ("Y", 2, 0)],
    )
    .unwrap();
    let heap = |backend: SetBackend| -> usize {
        let (ix, _): (InvertedIndex, _) =
            build_index(&db, seqs.iter(), &template, backend).unwrap();
        ix.heap_bytes()
    };
    let (list, compressed) = (heap(SetBackend::List), heap(SetBackend::Compressed));
    assert!(
        compressed < list,
        "compressed ({compressed}) must undercut list ({list}) on sparse lists"
    );
    // Auto never does worse than the best single encoding it chooses from.
    assert!(heap(SetBackend::Auto) <= compressed.max(heap(SetBackend::Bitmap)));
}
