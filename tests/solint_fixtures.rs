//! Fixture tests for `solint`, the workspace static-analysis pass: every
//! seeded violation under `crates/solint/tests/fixtures/` must be detected
//! by exactly the expected rule, the clean fixture must pass with all
//! rules armed, and the real workspace must lint clean against the
//! committed baseline (the same check CI runs via `cargo run -p solint --
//! --ci`).

use std::path::PathBuf;

use solint::{run, Config, Rule};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("crates/solint/tests/fixtures")
        .join(name)
}

/// Runs `config` and asserts every finding carries `rule`, returning the
/// findings for further shape checks.
fn expect_only(config: &Config, rule: Rule, count: usize) -> Vec<solint::Finding> {
    let analysis = run(config);
    let findings = analysis.findings;
    assert!(
        findings.iter().all(|f| f.rule == rule),
        "expected only {} findings, got: {findings:#?}",
        rule.id()
    );
    assert_eq!(
        findings.len(),
        count,
        "expected {count} {} finding(s), got: {findings:#?}",
        rule.id()
    );
    findings
}

#[test]
fn governor_tick_fires_only_on_the_ungoverned_loop() {
    let mut config = Config::bare(fixture("governor_tick"));
    config.hot_modules = vec!["hot.rs".into()];
    let findings = expect_only(&config, Rule::GovernorTick, 1);
    assert_eq!(findings[0].file, "hot.rs");
    assert_eq!(findings[0].line, 7, "the ungoverned loop header");
}

#[test]
fn panic_ratchet_reports_new_sites_against_an_empty_baseline() {
    let mut config = Config::bare(fixture("panic_ratchet"));
    config.ratchet_dirs = vec!["src/".into()];
    config.baseline = Some("solint.baseline".into());
    let findings = expect_only(&config, Rule::NoPanicRatchet, 1);
    let msg = &findings[0].message;
    assert!(
        msg.contains("3 panic-capable sites"),
        "unwrap + slice-index + panic! in non-test code only: {msg}"
    );
    assert!(
        msg.contains("(unwrap)") && msg.contains("(slice-index)") && msg.contains("(panic-macro)")
    );
}

#[test]
fn panic_ratchet_requires_banking_a_burn_down() {
    let mut config = Config::bare(fixture("panic_ratchet"));
    config.ratchet_dirs = vec!["src/".into()];
    config.baseline = Some("stale.baseline".into());
    let findings = expect_only(&config, Rule::NoPanicRatchet, 1);
    assert!(findings[0].message.contains("--update-baseline"));
}

#[test]
fn atomic_ordering_fires_only_without_an_ord_comment() {
    let mut config = Config::bare(fixture("atomic_ordering"));
    config.ordering_files = vec!["metrics.rs".into()];
    let findings = expect_only(&config, Rule::AtomicOrdering, 1);
    assert_eq!(findings[0].line, 7, "the unjustified fetch_add");
}

#[test]
fn bare_mutex_fires_per_std_sync_lock() {
    let mut config = Config::bare(fixture("bare_mutex"));
    config.mutex_dirs = vec!["src/".into()];
    let findings = expect_only(&config, Rule::NoBareMutex, 2);
    let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("Mutex")));
    assert!(msgs.iter().any(|m| m.contains("RwLock")));
}

#[test]
fn forbid_unsafe_fires_on_missing_attr_and_unsafe_use() {
    let mut config = Config::bare(fixture("forbid_unsafe"));
    config.crate_roots = vec!["src/lib.rs".into()];
    let findings = expect_only(&config, Rule::ForbidUnsafe, 2);
    assert!(findings
        .iter()
        .any(|f| f.message.contains("#![forbid(unsafe_code)]")));
    assert!(findings.iter().any(|f| f.message.contains("`unsafe`")));
}

#[test]
fn doc_failpoints_reports_drift_in_both_directions() {
    let mut config = Config::bare(fixture("doc_drift"));
    config.design_md = Some("DESIGN.md".into());
    let findings = expect_only(&config, Rule::DocFailpoints, 2);
    // Code-side: the undocumented site, at its call line.
    let code_side = findings
        .iter()
        .find(|f| f.file == "src/code.rs")
        .expect("undocumented fail_point! site");
    assert!(code_side.message.contains("ii.join"));
    // Doc-side: the cataloged-but-absent site, at its table row.
    let doc_side = findings
        .iter()
        .find(|f| f.file == "DESIGN.md")
        .expect("stale catalog row");
    assert!(doc_side.message.contains("ghost.site"));
    assert!(doc_side.line > 0, "doc findings carry the table-row line");
}

#[test]
fn doc_counters_reports_drift_in_both_directions() {
    let mut config = Config::bare(fixture("doc_drift"));
    config.design_md = Some("DESIGN.md".into());
    config.metrics_file = Some("src/code.rs".into());
    let analysis = run(&config);
    let counters: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == Rule::DocCounters)
        .collect();
    assert_eq!(counters.len(), 2, "{counters:#?}");
    assert!(counters.iter().any(|f| f.message.contains("cache_hits")));
    assert!(counters.iter().any(|f| f.message.contains("ghost_counter")));
}

#[test]
fn doc_sections_flags_only_the_missing_chapter() {
    let mut config = Config::bare(fixture("doc_drift"));
    config.design_md = Some("DESIGN.md".into());
    config.design_sections = vec!["Failpoints".into(), "Cost-based planning".into()];
    let analysis = run(&config);
    let sections: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == Rule::DocSections)
        .collect();
    assert_eq!(sections.len(), 1, "{sections:#?}");
    assert_eq!(sections[0].file, "DESIGN.md");
    assert!(
        sections[0].message.contains("Cost-based planning"),
        "`## 5. Failpoints` satisfies its requirement; only the absent chapter fires: {}",
        sections[0].message
    );
}

#[test]
fn doc_knobs_reports_drift_in_both_directions() {
    let mut config = Config::bare(fixture("doc_drift"));
    config.readme_md = Some("README.md".into());
    let findings = expect_only(&config, Rule::DocKnobs, 2);
    assert!(findings.iter().any(|f| f.message.contains("SOLAP_SECRET")));
    assert!(findings.iter().any(|f| f.message.contains("SOLAP_OTHER")));
}

/// Arms the lock rules (`lock-order` / `no-blocking-in-event-loop`) on a
/// fixture tree with its own `locks.toml`.
fn lock_config(name: &str) -> Config {
    let mut config = Config::bare(fixture(name));
    config.locks_manifest = Some("locks.toml".into());
    config.lock_dirs = vec!["src/".into()];
    config
}

#[test]
fn lock_order_flags_the_seeded_inversion() {
    let findings = expect_only(&lock_config("lock_order/inversion"), Rule::LockOrder, 1);
    assert_eq!(findings[0].file, "src/lib.rs");
    assert_eq!(findings[0].line, 21, "the inner `low.lock()` in `bad`");
    assert!(
        findings[0].message.contains("inverts the lock hierarchy"),
        "{}",
        findings[0].message
    );
}

#[test]
fn lock_order_flags_the_unranked_lock() {
    let findings = expect_only(&lock_config("lock_order/unranked"), Rule::LockOrder, 1);
    assert_eq!(findings[0].file, "src/lib.rs");
    assert_eq!(findings[0].line, 7, "the `mystery` declaration");
    assert!(
        findings[0].message.contains("no rank"),
        "{}",
        findings[0].message
    );
}

#[test]
fn lock_order_flags_the_cycle_closed_by_escaped_edges() {
    let findings = expect_only(&lock_config("lock_order/cycle"), Rule::LockOrder, 1);
    assert_eq!(findings[0].file, "src/lib.rs");
    assert_eq!(
        findings[0].line, 24,
        "the escaped `grab_low()` call in `rev`"
    );
    assert!(
        findings[0].message.contains("cycle") && findings[0].message.contains("cannot be escaped"),
        "the escape silences the inversion but never the cycle: {}",
        findings[0].message
    );
}

#[test]
fn no_blocking_flags_the_engine_park_and_the_reachable_sleep() {
    let mut config = lock_config("no_blocking");
    config.event_loop_entries = vec!["src/lib.rs::Loop::run".into()];
    config.event_loop_blocking = vec!["sleep".into(), "join".into()];
    let findings = expect_only(&config, Rule::NoBlockingInEventLoop, 2);
    let park = findings
        .iter()
        .find(|f| f.message.contains("fx.engine"))
        .expect("the event_loop = false lock acquire");
    assert_eq!((park.file.as_str(), park.line), ("src/lib.rs", 15));
    let sleep = findings
        .iter()
        .find(|f| f.message.contains("sleep"))
        .expect("the sleep reached through `backoff`");
    assert_eq!((sleep.file.as_str(), sleep.line), ("src/lib.rs", 21));
}

#[test]
fn stale_escape_flags_the_orphaned_waiver() {
    let config = Config::bare(fixture("stale_escape"));
    let findings = expect_only(&config, Rule::StaleEscape, 1);
    assert_eq!(findings[0].file, "src/lib.rs");
    assert_eq!(findings[0].line, 4, "the escape comment itself");
    assert!(
        findings[0].message.contains("stale"),
        "{}",
        findings[0].message
    );
}

/// The clean fixture arms every rule at once and must produce nothing.
#[test]
fn clean_fixture_passes_with_all_rules_armed() {
    let root = fixture("clean");
    let mut config = Config::bare(root);
    config.hot_modules = vec!["src/lib.rs".into()];
    config.ratchet_dirs = vec!["src/".into()];
    config.baseline = Some("solint.baseline".into());
    config.ordering_files = vec!["src/lib.rs".into()];
    config.mutex_dirs = vec!["src/".into()];
    config.crate_roots = vec!["src/lib.rs".into()];
    config.design_md = Some("DESIGN.md".into());
    config.design_sections = vec!["Failpoints".into(), "Counters".into()];
    config.readme_md = Some("README.md".into());
    config.metrics_file = Some("src/lib.rs".into());
    config.locks_manifest = Some("locks.toml".into());
    config.lock_rank_module = Some("src/rank.rs".into());
    config.lock_dirs = vec!["src/".into()];
    config.event_loop_entries = vec!["src/lib.rs::Gate::run".into()];
    config.event_loop_blocking = vec!["sleep".into(), "join".into()];
    let analysis = run(&config);
    assert!(
        analysis.findings.is_empty(),
        "clean fixture must lint clean: {:#?}",
        analysis.findings
    );
    assert!(analysis.files_scanned >= 1);
}

/// The real workspace lints clean against the committed baseline — the
/// in-process equivalent of the CI gate `cargo run -p solint -- --ci`.
#[test]
fn the_workspace_lints_clean() {
    let config = Config::repo(PathBuf::from(env!("CARGO_MANIFEST_DIR")));
    let analysis = run(&config);
    assert!(
        analysis.findings.is_empty(),
        "workspace findings (fix them or bank the ratchet with `cargo run -p solint -- --update-baseline`):\n{}",
        solint::render_text(&analysis.findings, analysis.files_scanned)
    );
    assert!(
        analysis.files_scanned > 50,
        "the walk saw the whole workspace, not a subtree"
    );
}
