//! Chaos suite: resource-governance aborts, cooperative cancellation,
//! panic isolation and failpoint-driven fault injection.
//!
//! The property under test throughout: **a failed query is a no-op**. After
//! a deadline/budget abort, a cancellation, an injected error, or an
//! injected panic — at every failpoint site, including the parallel worker
//! paths — the same `Engine` must keep answering queries, and the answers
//! must be cell-for-cell identical to a fresh engine, for all five
//! aggregate functions on both construction strategies.
//!
//! Failpoint state is process-global, so every test here serializes on one
//! lock (a failpoint configured by one test must not leak into an engine
//! run by another).

use std::sync::Mutex;
use std::time::Duration;

use s_olap::eventdb::failpoint::{self, Action};
use s_olap::eventdb::{CancelToken, Error, CHECK_INTERVAL};
use s_olap::prelude::*;

static FP_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    FP_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with the default panic hook silenced, so intentionally injected
/// panics do not spray backtraces over the test output.
fn quietly<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// A deterministic little event database: 24 sequences over 5 symbols,
/// an `a`/`b` tag, and a dyadic `weight` measure (so SUM/AVG results are
/// bit-exact under any fold order).
fn build_db() -> EventDb {
    let mut db = EventDbBuilder::new()
        .dimension("sid", ColumnType::Int)
        .dimension("pos", ColumnType::Int)
        .dimension("symbol", ColumnType::Str)
        .dimension("tag", ColumnType::Str)
        .measure("weight", ColumnType::Float)
        .build()
        .unwrap();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for sid in 0..24i64 {
        let len = 3 + (sid % 6);
        for pos in 0..len {
            let sym = next() % 5;
            let tag = next() % 2 == 0;
            db.push_row(&[
                Value::Int(sid),
                Value::Int(pos),
                Value::Str(format!("s{sym}")),
                Value::from(if tag { "a" } else { "b" }),
                Value::Float(sym as f64 + 0.5),
            ])
            .unwrap();
        }
    }
    db.set_base_level_name(2, "symbol");
    db.attach_str_level(2, "parity", |name| {
        let v: u32 = name[1..].parse().unwrap();
        format!("p{}", v % 2)
    })
    .unwrap();
    db
}

/// `(X, Y)` substring spec with a matching predicate (the predicate forces
/// the inverted-index path through its verification scan) and one of the
/// five aggregates.
fn spec_for(agg: u8) -> SCuboidSpec {
    let template = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y"],
        &[("X", 2, 0), ("Y", 2, 0)],
    )
    .unwrap();
    SCuboidSpec::new(
        template,
        vec![AttrLevel::new(0, 0)],
        vec![SortKey {
            attr: 1,
            ascending: true,
        }],
    )
    .with_mpred(MatchPred::cmp(0, 3, CmpOp::Eq, "a"))
    .with_agg(match agg {
        0 => AggFunc::Count,
        1 => AggFunc::Sum(4, SumMode::AllEvents),
        2 => AggFunc::Avg(4, SumMode::AllEvents),
        3 => AggFunc::Min(4),
        _ => AggFunc::Max(4),
    })
}

/// A length-3 `(X, Y, X)` substring spec: its inverted index is built by
/// joining pair indices and *verifying* the candidates (Figure 15 line 9),
/// which is the only path through the `ii.verify` site.
fn spec_len3() -> SCuboidSpec {
    let template = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y", "X"],
        &[("X", 2, 0), ("Y", 2, 0)],
    )
    .unwrap();
    SCuboidSpec::new(
        template,
        vec![AttrLevel::new(0, 0)],
        vec![SortKey {
            attr: 1,
            ascending: true,
        }],
    )
}

/// The query that reaches `site`: length-3 for the verification site,
/// the standard pair query everywhere else.
fn trigger_spec(site: &str) -> SCuboidSpec {
    if site == "ii.verify" {
        spec_len3()
    } else {
        spec_for(0)
    }
}

/// A config with governance off and everything else explicit, so ambient
/// `SOLAP_*` environment variables cannot skew a test's premise.
fn config(strategy: Strategy, threads: usize) -> EngineConfig {
    EngineConfig {
        strategy,
        threads,
        timeout: None,
        budget_cells: None,
        ..Default::default()
    }
}

/// The recovery oracle: on the *same* engine that just failed a query, all
/// five aggregates on both strategies must equal a fresh engine exactly.
fn assert_matches_fresh(engine: &mut Engine) {
    let threads = engine.config().threads;
    for strategy in [Strategy::CounterBased, Strategy::InvertedIndex] {
        engine.config_mut().strategy = strategy;
        // Clear the repo so the second strategy actually reruns
        // construction instead of answering from cache.
        engine.cuboid_repo().clear();
        for agg in 0..5u8 {
            let spec = spec_for(agg);
            let got = engine.execute(&spec).unwrap_or_else(|e| {
                panic!("post-failure query died ({strategy:?}, agg {agg}): {e}")
            });
            let fresh = Engine::with_config(build_db(), config(strategy, threads));
            let want = fresh.execute(&spec).unwrap();
            assert!(
                !want.cuboid.is_empty(),
                "oracle query must be non-trivial ({strategy:?}, agg {agg})"
            );
            assert_eq!(
                got.cuboid.cells, want.cuboid.cells,
                "cells diverge from fresh engine ({strategy:?}, agg {agg})"
            );
        }
    }
}

#[test]
fn deadline_abort_is_typed_and_recoverable() {
    let _g = locked();
    failpoint::clear_all();
    let mut engine = Engine::with_config(
        build_db(),
        EngineConfig {
            timeout: Some(Duration::ZERO),
            ..config(Strategy::CounterBased, 1)
        },
    );
    match engine.execute(&spec_for(0)) {
        Err(Error::ResourceExhausted {
            resource: "time_ms",
            ..
        }) => {}
        other => panic!("expected a time_ms abort, got {other:?}"),
    }
    assert_eq!(engine.cuboid_repo().len(), 0, "no partial cuboid cached");
    engine.config_mut().timeout = None;
    assert_matches_fresh(&mut engine);
}

#[test]
fn cell_budget_abort_is_bounded_and_recoverable() {
    let _g = locked();
    failpoint::clear_all();
    let mut engine = Engine::with_config(
        build_db(),
        EngineConfig {
            budget_cells: Some(1),
            ..config(Strategy::CounterBased, 1)
        },
    );
    match engine.execute(&spec_for(0)) {
        Err(Error::ResourceExhausted {
            resource: "cells",
            limit,
            consumed,
        }) => {
            assert_eq!(limit, 1);
            assert!(
                consumed > limit && consumed <= limit + u64::from(CHECK_INTERVAL),
                "abort within one check interval of the limit (consumed {consumed})"
            );
        }
        other => panic!("expected a cells abort, got {other:?}"),
    }
    assert_eq!(engine.cuboid_repo().len(), 0);
    engine.config_mut().budget_cells = None;
    assert_matches_fresh(&mut engine);
}

#[test]
fn cancellation_latches_until_reset() {
    let _g = locked();
    failpoint::clear_all();
    let cancel = CancelToken::new();
    let mut engine = Engine::with_config(
        build_db(),
        EngineConfig {
            cancel: cancel.clone(),
            ..config(Strategy::InvertedIndex, 1)
        },
    );
    cancel.cancel();
    assert!(matches!(
        engine.execute(&spec_for(0)),
        Err(Error::Cancelled)
    ));
    // Still latched: the next query aborts too.
    assert!(matches!(
        engine.execute(&spec_for(1)),
        Err(Error::Cancelled)
    ));
    cancel.reset();
    assert_matches_fresh(&mut engine);
}

/// Every engine-path failpoint site, with the strategy and thread count
/// that reaches it. The worker sites exercise the parallel paths.
const ENGINE_SITES: &[(&str, Strategy, usize)] = &[
    ("seqcache.build", Strategy::CounterBased, 1),
    ("cb.group", Strategy::CounterBased, 1),
    ("cb.worker", Strategy::CounterBased, 4),
    ("ii.build_base", Strategy::InvertedIndex, 1),
    ("ii.worker", Strategy::InvertedIndex, 4),
    ("ii.verify", Strategy::InvertedIndex, 1),
    ("engine.insert", Strategy::CounterBased, 1),
];

#[test]
fn injected_error_at_every_site_fails_cleanly_then_recovers() {
    let _g = locked();
    for &(site, strategy, threads) in ENGINE_SITES {
        failpoint::clear_all();
        failpoint::configure(site, Action::Error);
        let mut engine = Engine::with_config(build_db(), config(strategy, threads));
        match engine.execute(&trigger_spec(site)) {
            Err(Error::Internal(msg)) => {
                assert!(msg.contains(site), "site {site} not named in `{msg}`")
            }
            other => panic!("site {site}: expected Err(Internal), got {other:?}"),
        }
        assert_eq!(engine.cuboid_repo().len(), 0, "site {site} cached a cuboid");
        failpoint::clear_all();
        assert_matches_fresh(&mut engine);
    }
}

#[test]
fn injected_panic_at_every_site_is_isolated_then_recovers() {
    let _g = locked();
    for &(site, strategy, threads) in ENGINE_SITES {
        failpoint::clear_all();
        failpoint::configure(site, Action::Panic);
        let mut engine = Engine::with_config(build_db(), config(strategy, threads));
        match quietly(|| engine.execute(&trigger_spec(site))) {
            Err(Error::Internal(msg)) => {
                assert!(
                    msg.contains("panic"),
                    "site {site}: panic not surfaced in `{msg}`"
                )
            }
            other => panic!("site {site}: expected an isolated panic, got {other:?}"),
        }
        assert_eq!(engine.cuboid_repo().len(), 0, "site {site} cached a cuboid");
        failpoint::clear_all();
        assert_matches_fresh(&mut engine);
    }
}

#[test]
fn injected_delay_changes_nothing_but_time() {
    let _g = locked();
    for &(site, strategy, threads) in ENGINE_SITES {
        failpoint::clear_all();
        failpoint::configure(site, Action::Delay(1));
        let mut engine = Engine::with_config(build_db(), config(strategy, threads));
        engine
            .execute(&trigger_spec(site))
            .unwrap_or_else(|e| panic!("site {site}: delay must not fail: {e}"));
        failpoint::clear_all();
        assert_matches_fresh(&mut engine);
    }
}

#[test]
fn delay_plus_deadline_trips_the_governor() {
    let _g = locked();
    failpoint::clear_all();
    failpoint::configure("seqcache.build", Action::Delay(25));
    let mut engine = Engine::with_config(
        build_db(),
        EngineConfig {
            timeout: Some(Duration::from_millis(1)),
            ..config(Strategy::CounterBased, 1)
        },
    );
    match engine.execute(&spec_for(0)) {
        Err(Error::ResourceExhausted {
            resource: "time_ms",
            ..
        }) => {}
        other => panic!("expected the deadline to trip, got {other:?}"),
    }
    failpoint::clear_all();
    engine.config_mut().timeout = None;
    assert_matches_fresh(&mut engine);
}

#[test]
fn persist_failpoints_error_cleanly() {
    let _g = locked();
    failpoint::clear_all();
    let db = build_db();

    failpoint::configure("persist.save", Action::Error);
    let mut buf = Vec::new();
    assert!(matches!(
        s_olap::eventdb::persist::save(&db, &mut buf),
        Err(Error::Internal(_))
    ));
    failpoint::clear_all();

    buf.clear();
    s_olap::eventdb::persist::save(&db, &mut buf).unwrap();

    failpoint::configure("persist.load", Action::Error);
    assert!(matches!(
        s_olap::eventdb::persist::load(&mut buf.as_slice()),
        Err(Error::Internal(_))
    ));
    failpoint::clear_all();

    let loaded = s_olap::eventdb::persist::load(&mut buf.as_slice()).unwrap();
    assert_eq!(loaded.len(), db.len());
    assert_eq!(loaded.schema(), db.schema());
}

/// An error injected into one engine must not perturb a *different* engine
/// once cleared — and `list()` reflects configuration for diagnostics.
#[test]
fn failpoint_registry_round_trips() {
    let _g = locked();
    failpoint::clear_all();
    failpoint::configure("cb.group", Action::Error);
    failpoint::configure("ii.verify", Action::Delay(2));
    let sites: Vec<String> = failpoint::list().into_iter().map(|(s, _)| s).collect();
    assert_eq!(sites, vec!["cb.group".to_string(), "ii.verify".to_string()]);
    failpoint::remove("cb.group");
    failpoint::clear_all();
    let mut engine = Engine::with_config(build_db(), config(Strategy::CounterBased, 1));
    assert_matches_fresh(&mut engine);
}
