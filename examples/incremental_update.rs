//! The §6 incremental-update extension: "when a day of new transactions
//! (events) are added to the event database, we could create a new sequence
//! group and precompute the corresponding inverted indices for that day" —
//! here, the day's new sequences are appended to an existing inverted index
//! without rescanning history, and the result is verified against a full
//! rebuild.
//!
//! Run with: `cargo run --release --example incremental_update`

use s_olap::core::incremental::{extend_groups, extend_index};
use s_olap::index::{build_index, SetBackend};
use s_olap::prelude::*;

fn main() {
    // Day 1..5 of transit data.
    let mut db = s_olap::datagen::generate_transit(&s_olap::datagen::TransitConfig {
        passengers: 800,
        days: 5,
        ..Default::default()
    })
    .expect("valid config");

    let template = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y"],
        &[
            ("X", db.attr("location").unwrap(), 0),
            ("Y", db.attr("location").unwrap(), 0),
        ],
    )
    .expect("valid template");
    let seq_spec = s_olap::eventdb::SeqQuerySpec {
        filter: Pred::True,
        cluster_by: vec![
            AttrLevel::new(db.attr("card-id").unwrap(), 0),
            AttrLevel::new(db.attr("time").unwrap(), 1), // AT day
        ],
        sequence_by: vec![SortKey {
            attr: db.attr("time").unwrap(),
            ascending: true,
        }],
        group_by: vec![],
    };

    let groups = s_olap::eventdb::build_sequence_groups(&db, &seq_spec).expect("groups");
    let (index, scanned) =
        build_index(&db, groups.iter_sequences(), &template, SetBackend::List).expect("build");
    println!(
        "day 1-5: {} sequences, L2 has {} lists / {} entries ({} KiB), {} sequences scanned",
        groups.total_sequences,
        index.list_count(),
        index.entry_count(),
        index.heap_bytes() / 1024,
        scanned
    );

    // Day 6 arrives: generate it separately and append its events.
    let day6 = s_olap::datagen::generate_transit(&s_olap::datagen::TransitConfig {
        passengers: 800,
        days: 1,
        seed: 99,
        ..Default::default()
    })
    .expect("valid config");
    let from_row = db.len() as u32;
    let day_shift = 6 * s_olap::eventdb::time::SECS_PER_DAY;
    for row in 0..day6.len() as u32 {
        let mut values: Vec<Value> = (0..day6.schema().len() as u32)
            .map(|a| day6.value(row, a))
            .collect();
        if let Value::Time(t) = values[0] {
            values[0] = Value::Time(t + day_shift);
        }
        db.push_row(&values).expect("append");
    }
    println!("appended day 6: {} new events", db.len() as u32 - from_row);

    // Incrementally extend the sequence groups and the inverted index.
    let (extended_groups, new_sids) =
        extend_groups(&db, &seq_spec, &groups, from_row).expect("day 6 forms only new clusters");
    let new_seqs: Vec<_> = new_sids
        .iter()
        .map(|&sid| extended_groups.sequence(sid).expect("fresh sid").clone())
        .collect();
    let extended = extend_index(&db, &index, &new_seqs, &template).expect("extend");
    println!(
        "incremental: +{} sequences scanned (only day 6), index now {} lists / {} entries",
        new_seqs.len(),
        extended.list_count(),
        extended.entry_count()
    );

    // Verify against a full rebuild.
    let (rebuilt, rescanned) = build_index(
        &db,
        extended_groups.iter_sequences(),
        &template,
        SetBackend::List,
    )
    .expect("rebuild");
    assert_eq!(extended.list_count(), rebuilt.list_count());
    for (k, v) in &rebuilt.lists {
        assert_eq!(extended.lists[k].to_vec(), v.to_vec());
    }
    println!(
        "verified: incremental index ≡ full rebuild (which rescanned {} sequences — {}× more)",
        rescanned,
        rescanned / new_seqs.len().max(1) as u64
    );
}
