//! The §5.1 real-data exploration, reproduced on the clickstream
//! simulator: answer KDD-Cup-2000 Query 1 "in an OLAP data exploratory
//! way".
//!
//! * Qa — two-step page accesses at the page-category level; discover that
//!   (Assortment, Legwear) dominates.
//! * Qb — slice on that cell and P-DRILL-DOWN to raw pages to see *which*
//!   Legwear products are browsed.
//! * Qc — APPEND a third page to look for "comparison shopping".
//!
//! Run with: `cargo run --release --example clickstream_exploration`

use s_olap::prelude::*;

fn main() {
    let db = s_olap::datagen::generate_clickstream(&s_olap::datagen::ClickstreamConfig {
        sessions: 20_000,
        ..Default::default()
    })
    .expect("valid config");
    let engine = std::sync::Arc::new(Engine::new(db));

    // Qa: SUBSTRING (X, Y) at page-category (§5.1's first query).
    let qa = s_olap::query::parse_query(
        &engine.db(),
        r#"
        SELECT COUNT(*) FROM Event
        CLUSTER BY session-id AT raw
        SEQUENCE BY request-time ASCENDING
        CUBOID BY SUBSTRING (X, Y)
          WITH X AS page AT page-category, Y AS page AT page-category
          LEFT-MAXIMALITY (x1, y1)
        "#,
    )
    .expect("Qa parses");
    let mut session = Session::start(std::sync::Arc::clone(&engine), qa).expect("Qa runs");
    let qa_stats = session.history()[0].stats.clone();
    println!(
        "Qa — two-step category paths ({} cells, {} in {:?}, {} sequences scanned):",
        session.cuboid().expect("query ran").len(),
        qa_stats.strategy,
        qa_stats.elapsed,
        qa_stats.sequences_scanned
    );
    println!(
        "{}",
        session
            .cuboid()
            .expect("query ran")
            .tabulate(&engine.db(), 6, true)
    );

    // Slice on the hottest cell — in the paper, (Assortment, Legwear) with
    // count 2,201 — and P-DRILL-DOWN Y to raw pages (query Qb).
    let (x, y) = {
        let top = session.cuboid().expect("query ran").top_k(1);
        let (k, _) = top.first().expect("non-empty");
        (k.pattern[0], k.pattern[1])
    };
    println!(
        "hottest: {} — slicing and drilling Y down to raw pages\n",
        session.cuboid().expect("query ran").render_key(
            &engine.db(),
            session.cuboid().expect("query ran").top_k(1)[0].0
        )
    );
    session
        .apply(Op::Dice {
            global: vec![],
            pattern: vec![("X".into(), x), ("Y".into(), y)],
        })
        .expect("slice runs");
    let out = session
        .apply(Op::PDrillDown { dim: "Y".into() })
        .expect("Qb runs");
    println!(
        "Qb — which products? ({} cells, {} in {:?}, {} sequences scanned):",
        out.cuboid.len(),
        out.stats.strategy,
        out.stats.elapsed,
        out.stats.sequences_scanned
    );
    println!(
        "{}",
        session
            .cuboid()
            .expect("query ran")
            .tabulate(&engine.db(), 6, true)
    );

    // Qc: APPEND one more raw page — comparison shopping.
    let page = engine.db().attr("page").expect("schema");
    let out = session
        .apply(Op::Append {
            symbol: "Z".into(),
            attr: page,
            level: 0,
        })
        .expect("Qc runs");
    println!(
        "Qc — comparison shopping ({} cells, {} in {:?}, {} sequences scanned):",
        out.cuboid.len(),
        out.stats.strategy,
        out.stats.elapsed,
        out.stats.sequences_scanned
    );
    println!(
        "{}",
        session
            .cuboid()
            .expect("query ran")
            .tabulate(&engine.db(), 6, true)
    );

    println!(
        "cuboid repository now holds {} cuboids ({:.1} KiB) — the paper's \
         three queries inserted 0.3 MB",
        engine.cuboid_repo().len(),
        engine.cuboid_repo().total_bytes() as f64 / 1024.0
    );
}
