//! Quickstart: load data, pose an S-OLAP query in the Figure-3 language,
//! and tabulate the resulting sequence cuboid.
//!
//! Run with: `cargo run --example quickstart`

use s_olap::prelude::*;

fn main() {
    // 1. A transit event database (Figure 1's schema) from the seeded
    //    simulator: time/card-id/location/action/amount with the
    //    station→district, individual→fare-group and time→day→week
    //    concept hierarchies attached.
    let db = s_olap::datagen::generate_transit(&s_olap::datagen::TransitConfig {
        passengers: 500,
        days: 7,
        ..Default::default()
    })
    .expect("generator is infallible with valid config");
    println!("loaded {} events", db.len());

    // 2. An engine (inverted-index strategy by default, with the sequence
    //    cache, index store and cuboid repository of Figure 6).
    let engine = std::sync::Arc::new(Engine::new(db));

    // 3. The paper's Q3: "statistics of single-trip passengers" — for every
    //    origin/destination station pair, how many passenger-days contain a
    //    trip entering X and leaving Y?
    let q3 = s_olap::query::parse_query(
        &engine.db(),
        r#"
        SELECT COUNT(*) FROM Event
        CLUSTER BY card-id AT individual, time AT day
        SEQUENCE BY time ASCENDING
        CUBOID BY SUBSTRING (X, Y)
          WITH X AS location AT station, Y AS location AT station
          LEFT-MAXIMALITY (x1, y1)
          WITH x1.action = "in" AND y1.action = "out"
        "#,
    )
    .expect("well-formed query");

    let out = engine.execute(&q3).expect("query runs");
    println!(
        "\nQ3 ran via {} in {:?}, scanning {} sequences; {} non-empty cells:",
        out.stats.strategy,
        out.stats.elapsed,
        out.stats.sequences_scanned,
        out.cuboid.len()
    );
    println!("{}", out.cuboid.tabulate(&engine.db(), 10, true));

    // 4. Iterative exploration: the same query again is a cuboid-repository
    //    hit; an APPEND reuses the freshly built inverted indices.
    let again = engine.execute(&q3).expect("query runs");
    println!(
        "repeat: strategy={} cache-hit={}",
        again.stats.strategy, again.stats.cuboid_cache_hit
    );

    let mut session = Session::start(std::sync::Arc::clone(&engine), q3).expect("session starts");
    let location = session
        .engine()
        .db()
        .attr("location")
        .expect("schema has location");
    let out = session
        .apply(Op::Append {
            symbol: "Z".into(),
            attr: location,
            level: 0,
        })
        .expect("APPEND executes");
    println!(
        "\nafter APPEND Z → template {} ({} cells, {} sequences scanned)",
        session.spec().expect("query ran").template.render_head(),
        out.cuboid.len(),
        out.stats.sequences_scanned,
    );
}
