//! §6 "Data Integration and Privacy", working: a subway company and a bus
//! company evaluate their subway-then-bus transfer campaign **without
//! disclosing base data to each other** — each releases only pseudonymized
//! subjects and zone-level stops to a clearing house, which merges the
//! streams and answers S-OLAP transfer queries.
//!
//! Run with: `cargo run --release --example federated_transfers`

use s_olap::core::federation::{
    linkage_check, merge, release, release_audit, shared_subjects, ClearingHouse, VendorRelease,
};
use s_olap::prelude::*;

/// Each vendor's private database: real card ids, exact stops, fares.
fn vendor_db(name: &str, stop_prefix: &str, cards: &[i64], t0: i64) -> EventDb {
    let mut db = EventDbBuilder::new()
        .dimension("time", ColumnType::Time)
        .dimension("card-id", ColumnType::Int)
        .dimension("stop", ColumnType::Str)
        .measure("fare", ColumnType::Float)
        .build()
        .unwrap();
    for (i, &card) in cards.iter().enumerate() {
        // Two legs per rider: board and alight.
        for leg in 0..2i64 {
            db.push_row(&[
                Value::Time(t0 + i as i64 * 600 + leg * 300),
                Value::Int(card),
                Value::Str(format!("{stop_prefix}-{:02}", (i + leg as usize) % 6)),
                Value::Float(-2.5),
            ])
            .unwrap();
        }
    }
    db.set_base_level_name(2, "stop");
    db.attach_str_level(2, "zone", |s| {
        let n: usize = s[s.len() - 2..].parse().unwrap();
        format!("Zone-{}", n / 2)
    })
    .unwrap();
    println!(
        "{name}: {} private events (exact stops, card ids, fares)",
        db.len()
    );
    db
}

fn main() {
    // 600 subway riders, 500 bus riders, 250 of whom ride both — and the
    // bus trips happen after the subway trips (the transfer campaign).
    let subway_cards: Vec<i64> = (0..600).collect();
    let bus_cards: Vec<i64> = (350..850).collect();
    let subway = vendor_db("subway", "SUB", &subway_cards, 1_000_000);
    let bus = vendor_db("bus   ", "BUS", &bus_cards, 2_000_000);

    // The clearing house agrees a salt with both vendors; raw ids never
    // leave the vendors' premises.
    let house = ClearingHouse { salt: 0x5eed_cafe };
    let policy = |vendor: &str| VendorRelease {
        vendor: vendor.into(),
        time_attr: 0,
        subject_attr: 1,
        released_dims: vec![(2, 1)], // zone level only — not exact stops
    };
    let releases = vec![
        release(&subway, &policy("subway"), &house).unwrap(),
        release(&bus, &policy("bus"), &house).unwrap(),
    ];
    for (r, name) in releases.iter().zip(["subway", "bus"]) {
        let (subjects, domains) = release_audit(r);
        println!(
            "{name} release: {} events, {subjects} pseudonymous subjects, zone domain {:?}",
            r.len(),
            domains
        );
    }
    println!(
        "subjects present in both releases: {} (linkable only via the shared salt)",
        shared_subjects(&releases)
    );

    // The coordinator merges and runs ordinary S-OLAP.
    let merged = merge(&releases, &["zone"]).unwrap();
    assert!(linkage_check(&releases, &merged));
    let engine = Engine::new(merged);
    let vendor = engine.db().attr("vendor").unwrap();
    let zone = engine.db().attr("zone").unwrap();
    let template = PatternTemplate::new(
        PatternKind::Subsequence,
        &["X", "Y"],
        &[("X", zone, 0), ("Y", zone, 0)],
    )
    .unwrap();
    let spec = SCuboidSpec::new(
        template,
        vec![AttrLevel::new(engine.db().attr("subject").unwrap(), 0)],
        vec![SortKey {
            attr: engine.db().attr("time").unwrap(),
            ascending: true,
        }],
    )
    .with_mpred(
        MatchPred::cmp(0, vendor, CmpOp::Eq, "subway").and(MatchPred::cmp(
            1,
            vendor,
            CmpOp::Eq,
            "bus",
        )),
    );
    let out = engine.execute(&spec).unwrap();
    println!(
        "\nsubway→bus transfers by zone pair ({} cells, {} transfers total):",
        out.cuboid.len(),
        out.cuboid.total_count()
    );
    println!("{}", out.cuboid.tabulate(&engine.db(), 8, true));
}
