//! The §6 online-aggregation extension: report "what the system knows so
//! far" while a COUNT query is still running, refining the estimate as more
//! sequences are scanned — "rather than presenting the exact number of
//! round-trip passengers … approximate numbers like 200,000 … would be
//! informative enough".
//!
//! Run with: `cargo run --release --example online_aggregation`

use s_olap::core::online::{mean_relative_error, online_count};
use s_olap::prelude::*;

fn main() {
    let db = s_olap::datagen::generate_synthetic(&s_olap::datagen::SyntheticConfig {
        i: 100,
        l: 20.0,
        theta: 0.9,
        d: 20_000,
        seed: 7,
        hierarchy: false,
    })
    .expect("valid config");
    let engine = Engine::new(db);

    let spec = s_olap::query::parse_query(
        &engine.db(),
        r#"
        SELECT COUNT(*) FROM Event
        CLUSTER BY seq-id AT raw
        SEQUENCE BY pos ASCENDING
        CUBOID BY SUBSTRING (X, Y)
          WITH X AS symbol AT symbol, Y AS symbol AT symbol
          LEFT-MAXIMALITY (x1, y1)
        "#,
    )
    .expect("query parses");

    let groups = engine.sequence_groups(&spec).expect("groups build");
    // First compute the exact answer so each snapshot's error is reportable.
    let exact = engine.execute(&spec).expect("exact query runs");
    println!(
        "exact cuboid: {} cells, total count {}\n",
        exact.cuboid.len(),
        exact.cuboid.total_count()
    );

    println!(
        "{:>9} | {:>10} | {:>12} | top cell estimate",
        "progress", "cells", "mean rel err"
    );
    let final_cuboid = online_count(&engine.db(), &groups, &spec, 2_000, |snap| {
        let err = mean_relative_error(&snap.estimate, &exact.cuboid);
        let top = snap.estimate.top_k(1);
        let top_desc = top
            .first()
            .map(|(k, v)| format!("{} ≈ {}", snap.estimate.render_key(&engine.db(), k), v))
            .unwrap_or_default();
        println!(
            "{:>8.0}% | {:>10} | {:>12.4} | {}",
            snap.progress * 100.0,
            snap.estimate.len(),
            err,
            top_desc
        );
    })
    .expect("online aggregation runs");

    assert_eq!(final_cuboid.cells, exact.cuboid.cells);
    println!(
        "\nfinal online result is exact: {} cells",
        final_cuboid.len()
    );
}
