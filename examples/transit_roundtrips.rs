//! The paper's introduction scenario, end to end: a transport-planning
//! manager asks for "the number of round-trip passengers and their
//! distributions over all origin-destination station pairs" (query Q1,
//! Figure 3), spots a hot pair, slices on it, and APPENDs a third trip to
//! see where those passengers go next (query Q2, Figure 5) — then rolls the
//! new dimension up to districts when the distribution is too fragmented
//! (the P-ROLL-UP example of §3.3).
//!
//! Run with: `cargo run --release --example transit_roundtrips`

use s_olap::prelude::*;

fn main() {
    let db = s_olap::datagen::generate_transit(&s_olap::datagen::TransitConfig {
        passengers: 2_000,
        days: 10,
        stations: 16,
        districts: 4,
        round_trip_rate: 0.5,
        extra_trips: 1.2,
        ..Default::default()
    })
    .expect("valid config");
    let engine = std::sync::Arc::new(Engine::new(db));

    // Q1 (Figure 3): round trips (X, Y, Y, X) per day and fare group.
    let q1 = s_olap::query::parse_query(
        &engine.db(),
        r#"
        SELECT COUNT(*) FROM Event
        WHERE time >= "2007-10-01T00:00" AND time < "2007-12-31T24:00"
        CLUSTER BY card-id AT individual, time AT day
        SEQUENCE BY time ASCENDING
        SEQUENCE GROUP BY card-id AT fare-group
        CUBOID BY SUBSTRING (X, Y, Y, X)
          WITH X AS location AT station, Y AS location AT station
          LEFT-MAXIMALITY (x1, y1, y2, x2)
          WITH x1.action = "in" AND y1.action = "out"
           AND y2.action = "in" AND x2.action = "out"
        "#,
    )
    .expect("Q1 parses");

    let mut session = Session::start(std::sync::Arc::clone(&engine), q1).expect("Q1 runs");
    println!(
        "Q1 — round-trip distribution (top 8 of {} cells):",
        session.cuboid().expect("query ran").len()
    );
    println!(
        "{}",
        session
            .cuboid()
            .expect("query ran")
            .tabulate(&engine.db(), 8, true)
    );

    // The manager slices on the hottest (X, Y) pair…
    let (hot_key, hot_count) = {
        let top = session.cuboid().expect("query ran").top_k(1);
        let (k, v) = top.first().expect("non-empty cuboid");
        ((*k).clone(), v.as_f64())
    };
    let x = hot_key.pattern[0];
    let y = hot_key.pattern[1];
    println!(
        "hottest pair: {} with {} round trips — slicing and appending a follow-up trip\n",
        session
            .cuboid()
            .expect("query ran")
            .render_key(&engine.db(), &hot_key),
        hot_count
    );
    session
        .apply(Op::Dice {
            global: vec![],
            pattern: vec![("X".into(), x), ("Y".into(), y)],
        })
        .expect("slice runs");

    // …then APPENDs X and a fresh Z: (X, Y, Y, X, X, Z) — "whether those
    // passengers would take one more follow-up trip and if so where".
    let location = engine.db().attr("location").expect("schema");
    session
        .apply(Op::Append {
            symbol: "X".into(),
            attr: location,
            level: 0,
        })
        .expect("append X");
    let out = session
        .apply(Op::Append {
            symbol: "Z".into(),
            attr: location,
            level: 0,
        })
        .expect("append Z");
    println!(
        "Q2 — template {} (strategy {}, {} sequences scanned):",
        session.spec().expect("query ran").template.render_head(),
        out.stats.strategy,
        out.stats.sequences_scanned
    );
    println!(
        "{}",
        session
            .cuboid()
            .expect("query ran")
            .tabulate(&engine.db(), 8, true)
    );

    // Too fragmented? P-ROLL-UP Z from stations to districts.
    let out = session
        .apply(Op::PRollUp { dim: "Z".into() })
        .expect("p-roll-up runs");
    println!(
        "after P-ROLL-UP Z → district ({} cells, {} sequences scanned):",
        out.cuboid.len(),
        out.stats.sequences_scanned
    );
    println!(
        "{}",
        session
            .cuboid()
            .expect("query ran")
            .tabulate(&engine.db(), 8, true)
    );

    // The session kept the whole trail.
    println!("navigation history:");
    for h in session.history() {
        println!(
            "  {:<14} {} cells in {:?}",
            h.op.as_deref().unwrap_or("initial"),
            h.spec.template.render_head(),
            h.stats.elapsed
        );
    }
}
