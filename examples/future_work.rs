//! The paper's future-work items, working: regular-expression pattern
//! templates (§3.2), the index-materialization advisor (§4.2.2), and
//! warehouse persistence.
//!
//! Run with: `cargo run --release --example future_work`

use s_olap::core::plan::{apply_advice, PlanContext, Planner, WorkloadQuery};
use s_olap::core::regexq::regex_cuboid;
use s_olap::core::stats::ScanMeter;
use s_olap::pattern::{RegexElem, RegexTemplate};
use s_olap::prelude::*;

fn main() {
    let db = s_olap::datagen::generate_transit(&s_olap::datagen::TransitConfig {
        passengers: 800,
        days: 7,
        extra_trips: 1.0,
        ..Default::default()
    })
    .expect("valid config");
    let location = db.attr("location").unwrap();

    // ------------------------------------------------------------------
    // 1. Regex templates: round trips *with layovers* — (X, Y, .*, Y, X) —
    //    which neither SUBSTRING (too rigid) nor SUBSEQUENCE (too loose
    //    about the outer legs) can express.
    // ------------------------------------------------------------------
    let engine = Engine::new(db);
    let base = s_olap::query::parse_query(
        &engine.db(),
        r#"
        SELECT COUNT(*) FROM Event
        CLUSTER BY card-id AT individual, time AT day
        SEQUENCE BY time ASCENDING
        CUBOID BY SUBSTRING (X, Y)
          WITH X AS location AT station, Y AS location AT station
          LEFT-MAXIMALITY (x1, y1)
        "#,
    )
    .expect("parses");
    let groups = engine.sequence_groups(&base).expect("groups");
    let dim = |name: &str| s_olap::pattern::PatternDim {
        name: name.into(),
        attr: location,
        level: 0,
    };
    let layover_roundtrip = RegexTemplate::new(
        vec![dim("X"), dim("Y")],
        vec![
            RegexElem::One(0),
            RegexElem::One(1),
            RegexElem::Gap,
            RegexElem::One(1),
            RegexElem::One(0),
        ],
    )
    .expect("valid regex");
    let mut meter = ScanMeter::new();
    let cuboid = regex_cuboid(
        &engine.db(),
        &groups,
        &layover_roundtrip,
        CellRestriction::LeftMaximalityMatchedGo,
        &mut meter,
    )
    .expect("regex query runs");
    println!(
        "regex {} — {} cells, total {} layover round trips (top 5):",
        layover_roundtrip.render(),
        cuboid.len(),
        cuboid.total_count()
    );
    println!("{}", cuboid.tabulate(&engine.db(), 5, true));

    // ------------------------------------------------------------------
    // 2. The advisor: given a workload, pick indices within a budget.
    // ------------------------------------------------------------------
    let mut q3 = base.clone();
    q3.template = PatternTemplate::new(
        PatternKind::Substring,
        &["X", "Y", "Z"],
        &[("X", location, 0), ("Y", location, 0), ("Z", location, 0)],
    )
    .unwrap();
    let workload = vec![
        WorkloadQuery {
            spec: base.clone(),
            frequency: 20.0,
        },
        WorkloadQuery {
            spec: q3,
            frequency: 3.0,
        },
    ];
    let guard = engine.db();
    let advice = Planner::advise(&PlanContext {
        db: &guard,
        groups: &groups,
        workload: &workload,
        byte_budget: 8 << 20,
        sample: 200,
        backend: SetBackend::default(),
    })
    .expect("advice");
    drop(guard);
    println!("advisor picks (budget 8 MiB):");
    for c in &advice.chosen {
        println!(
            "  L{} over attr #{} level {} ({:?}) ≈ {:.2} MB, benefit {:.0}",
            c.m,
            c.attr,
            c.level,
            c.kind,
            c.estimated_bytes as f64 / 1e6,
            c.benefit
        );
    }
    let built = apply_advice(&engine, &workload, &advice).expect("materialize");
    println!("materialized {:.2} MB of indices", built as f64 / 1e6);
    let out = engine.execute(&base).expect("query");
    println!(
        "first workload query after advice: {} indices built, {} sequences scanned\n",
        out.stats.indices_built, out.stats.sequences_scanned
    );

    // ------------------------------------------------------------------
    // 3. Persistence: save the warehouse, load it back, same answers.
    // ------------------------------------------------------------------
    let path = std::env::temp_dir().join("solap-future-work.db");
    s_olap::eventdb::persist::save_to_path(&engine.db(), &path).expect("save");
    let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let reloaded = s_olap::eventdb::persist::load_from_path(&path).expect("load");
    std::fs::remove_file(&path).ok();
    let engine2 = Engine::new(reloaded);
    let out2 = engine2.execute(&base).expect("query on reloaded db");
    assert_eq!(out.cuboid.len(), out2.cuboid.len());
    println!(
        "persistence: {} events → {:.2} MB on disk → reloaded, {} cells (identical)",
        engine2.db().len(),
        size as f64 / 1e6,
        out2.cuboid.len()
    );
}
